//! The coverage-feedback loop: corpus retention, yield accounting and
//! schedule planning shared by every [`TestCaseSource`] that closes the
//! loop (the NNSmith pipeline retains exported graphs, Tzer retains
//! `LoweredFunc`s — both through the same seam).
//!
//! ## How the loop closes
//!
//! The campaign loop already folds every case's per-backend coverage
//! into cumulative sets; with feedback it additionally hands the source
//! a [`CaseFeedback`] carrying the *new-branch count* per backend (the
//! marginal yield). A feedback-aware source then:
//!
//! 1. **retains** the case in its [`FeedbackCorpus`] iff it covered at
//!    least one new branch (AFL's retention rule),
//! 2. **accounts** the yield to the case's operator kinds, dtypes and
//!    ranks in a [`YieldStats`], and
//! 3. at deterministic case-count checkpoints recomputes a
//!    [`FeedbackPlan`] of integer schedule weights that bias future
//!    operator/dtype/rank draws toward what has been paying off.
//!
//! ## Determinism contract
//!
//! Everything here is designed to survive the engine's
//! `workers=1 ≡ workers=N` byte-equality guarantee:
//!
//! * Novelty is judged against the **shard-local** cumulative coverage
//!   (each shard's source sees only its own campaign slice), so no
//!   cross-shard races can change what is retained.
//! * Checkpoints fire on **case counts**, never wall-clock — a slow
//!   machine retains and schedules exactly like a fast one.
//! * Weights are **integers** (no float accumulation-order hazards) and
//!   live in `BTreeMap`s, so plans serialize byte-identically.
//! * Per-shard [`FeedbackSummary`]s fold at the engine's deterministic
//!   barrier in shard-index order ([`FeedbackSummary::absorb`]),
//!   including an order-sensitive FNV digest of corpus contents that
//!   lets tests assert corpus byte-equality across worker counts.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::harness::TestCase;

/// Base schedule weight every option keeps regardless of yield — the
/// floor that stops the scheduler from starving never-yet-productive
/// operators (AFL keeps exploring, it only *biases*).
pub const BASE_WEIGHT: u64 = 8;

/// Maximum yield-proportional bonus on top of [`BASE_WEIGHT`]: the
/// highest-yield option draws at `BASE_WEIGHT + BOOST_WEIGHT`, i.e. 4×
/// the floor.
pub const BOOST_WEIGHT: u64 = 24;

const FNV_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds one string into an FNV-1a digest (`0` means "empty" and is
/// promoted to the FNV offset basis on first use).
pub fn fnv_step(mut hash: u64, s: &str) -> u64 {
    if hash == 0 {
        hash = FNV_BASIS;
    }
    for b in s.as_bytes() {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Configuration of a source's feedback loop. Default is **disabled**,
/// which preserves the exact RNG stream (and therefore the exact case
/// stream) of feedback-unaware versions of every source.
#[derive(Debug, Clone)]
pub struct FeedbackConfig {
    /// Master switch: when false the source generates blind.
    pub enabled: bool,
    /// Corpus capacity. Seeds occupy a frozen prefix shared by all
    /// shards; retained cases fill the private mutable tail
    /// (ring-replaced once full).
    pub corpus_cap: usize,
    /// Recompute the [`FeedbackPlan`] every this many observed cases —
    /// a case *count*, never wall-clock, per the determinism contract.
    pub checkpoint_every: usize,
    /// Probability of mutating a retained case instead of generating
    /// fresh, once the corpus is non-empty.
    pub mutation_prob: f64,
    /// Systematic exploitation arm: enqueue every dtype sibling of a
    /// coverage-novel finding as a targeted probe (budget-gated).
    pub probe_siblings: bool,
    /// Seed cases (typically bridged from the triage reproducer corpus
    /// via `nnsmith_triage::Corpus::seed_cases`) loaded into the corpus
    /// before the campaign starts.
    pub seeds: Vec<TestCase>,
}

impl Default for FeedbackConfig {
    fn default() -> Self {
        FeedbackConfig {
            enabled: false,
            corpus_cap: 64,
            checkpoint_every: 16,
            mutation_prob: 0.25,
            probe_siblings: true,
            seeds: Vec::new(),
        }
    }
}

impl FeedbackConfig {
    /// An enabled loop with the default knobs.
    pub fn guided() -> Self {
        FeedbackConfig {
            enabled: true,
            ..FeedbackConfig::default()
        }
    }
}

/// Per-case feedback handed to [`TestCaseSource::observe`] after the
/// case has executed on every backend.
///
/// [`TestCaseSource::observe`]: crate::TestCaseSource::observe
#[derive(Debug, Clone)]
pub struct CaseFeedback {
    /// 1-based index of the case within this campaign slice.
    pub case_index: usize,
    /// How many branches this case covered that its campaign slice had
    /// not seen before, per backend (keyed by backend name; counts are
    /// never unioned across systems).
    pub new_branches: BTreeMap<String, usize>,
    /// Whether the case produced any finding on any backend.
    pub finding: bool,
}

impl CaseFeedback {
    /// Total new branches across backends — the scalar novelty signal
    /// (per-backend ids stay incomparable, but *counts* add).
    pub fn total_new(&self) -> usize {
        self.new_branches.values().sum()
    }
}

/// A bounded corpus of retained cases: a frozen seed prefix plus a
/// private mutable tail, ring-replaced once the capacity is reached.
///
/// Generic over the retained payload so graph campaigns retain
/// [`TestCase`]s and Tzer retains `LoweredFunc`s through the same type.
///
/// Serializable (for payloads that are) so a campaign snapshot can
/// persist a shard's retention state mid-run and a resumed process
/// reconstructs the identical corpus — ring-replacement slot arithmetic
/// depends on `retained`/`frozen`, so every private field round-trips.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FeedbackCorpus<T> {
    items: Vec<T>,
    cap: usize,
    frozen: usize,
    retained: u64,
    digest: u64,
}

impl<T> FeedbackCorpus<T> {
    /// Creates an empty corpus with the given capacity.
    pub fn new(cap: usize) -> Self {
        FeedbackCorpus {
            items: Vec::new(),
            cap,
            frozen: 0,
            retained: 0,
            digest: 0,
        }
    }

    /// Adds a seed unconditionally (no novelty judgement) into the
    /// frozen prefix. Seeds beyond the capacity are dropped.
    /// `encoding` is the item's canonical serialization, folded into
    /// the corpus digest.
    pub fn seed(&mut self, item: T, encoding: &str) {
        if self.items.len() >= self.cap {
            return;
        }
        self.digest = fnv_step(self.digest, encoding);
        self.items.push(item);
        self.frozen = self.items.len();
    }

    /// Offers a case for retention: kept iff `novel` (it covered at
    /// least one new branch). Returns whether it was retained.
    pub fn offer(&mut self, item: T, encoding: &str, novel: bool) -> bool {
        if !novel || self.cap == 0 {
            return false;
        }
        self.retained += 1;
        self.digest = fnv_step(self.digest, encoding);
        if self.items.len() < self.cap {
            self.items.push(item);
        } else {
            // Ring-replace within the mutable tail; the frozen seed
            // prefix survives (when seeds fill the whole corpus, the
            // last slot becomes the tail).
            let first = self.frozen.min(self.cap - 1);
            let tail = (self.cap - first).max(1);
            let slot = first + ((self.retained - 1) as usize % tail);
            self.items[slot] = item;
        }
        true
    }

    /// Number of items currently held.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when nothing is held.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The item at `index`.
    pub fn get(&self, index: usize) -> &T {
        &self.items[index]
    }

    /// All held items, seed prefix first.
    pub fn items(&self) -> &[T] {
        &self.items
    }

    /// Total retention events (≥ `len() - seeds` once ring replacement
    /// starts evicting).
    pub fn retained(&self) -> u64 {
        self.retained
    }

    /// Order-sensitive FNV-1a digest over every seeded/retained item's
    /// canonical encoding — the corpus-content fingerprint the
    /// determinism tests byte-compare across worker counts.
    pub fn digest(&self) -> u64 {
        self.digest
    }
}

/// Integer schedule weights produced at a checkpoint: options absent
/// from a map draw at [`BASE_WEIGHT`]; present options draw at their
/// recorded weight (between `BASE_WEIGHT + 1` and
/// `BASE_WEIGHT + BOOST_WEIGHT`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FeedbackPlan {
    /// Weight per operator-template name.
    pub op_weights: BTreeMap<String, u64>,
    /// Weight per dtype name.
    pub dtype_weights: BTreeMap<String, u64>,
    /// Weight per placeholder rank.
    pub rank_weights: BTreeMap<usize, u64>,
}

impl FeedbackPlan {
    /// True when no option has yielded yet (scheduling stays uniform).
    pub fn is_empty(&self) -> bool {
        self.op_weights.is_empty() && self.dtype_weights.is_empty() && self.rank_weights.is_empty()
    }
}

/// Marginal-yield accounting: per operator kind / dtype / rank, how many
/// new branches the cases featuring it have uncovered, and how many
/// cases featured it. The schedule scales by the **rate** (yield per
/// featuring case), not the cumulative total — an option that stopped
/// producing new branches decays back toward the floor instead of
/// compounding a rich-get-richer boost, keeping exploration alive.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct YieldStats {
    op: BTreeMap<String, (u64, u64)>,
    dtype: BTreeMap<String, (u64, u64)>,
    rank: BTreeMap<usize, (u64, u64)>,
}

impl YieldStats {
    /// Credits `new_branches` (and one featuring case) to every feature
    /// the case exhibited (callers pass each distinct feature once per
    /// case).
    pub fn record(
        &mut self,
        ops: &[String],
        dtypes: &[String],
        ranks: &[usize],
        new_branches: u64,
    ) {
        for op in ops {
            let e = self.op.entry(op.clone()).or_insert((0, 0));
            e.0 += new_branches;
            e.1 += 1;
        }
        for dt in dtypes {
            let e = self.dtype.entry(dt.clone()).or_insert((0, 0));
            e.0 += new_branches;
            e.1 += 1;
        }
        for r in ranks {
            let e = self.rank.entry(*r).or_insert((0, 0));
            e.0 += new_branches;
            e.1 += 1;
        }
    }

    /// Computes the current schedule: every option with a positive
    /// marginal rate gets `BASE_WEIGHT + BOOST_WEIGHT * rate / max_rate`,
    /// where `rate = 1024 * yield / cases` (integer arithmetic —
    /// byte-deterministic); everything else stays at the implicit
    /// [`BASE_WEIGHT`] floor.
    pub fn plan(&self) -> FeedbackPlan {
        fn scale<K: Clone + Ord>(m: &BTreeMap<K, (u64, u64)>) -> BTreeMap<K, u64> {
            let rate = |&(y, n): &(u64, u64)| (1024 * y).checked_div(n).unwrap_or(0);
            let max = m.values().map(rate).max().unwrap_or(0);
            if max == 0 {
                return BTreeMap::new();
            }
            m.iter()
                .filter(|(_, e)| rate(e) > 0)
                .map(|(k, e)| (k.clone(), BASE_WEIGHT + (BOOST_WEIGHT * rate(e)) / max))
                .collect()
        }
        FeedbackPlan {
            op_weights: scale(&self.op),
            dtype_weights: scale(&self.dtype),
            rank_weights: scale(&self.rank),
        }
    }
}

/// A source's accumulated feedback state at campaign end — merged
/// across shards at the engine's deterministic barrier and serialized
/// into BENCH artifacts (integer counters only: every field survives
/// `deterministic_view`).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeedbackSummary {
    /// Coverage-novel cases retained (sum across shards).
    pub retained: u64,
    /// Final corpus size (sum across shards).
    pub corpus: u64,
    /// Order-sensitive digest of corpus contents (shard digests folded
    /// in shard-index order).
    pub corpus_digest: u64,
    /// Seeds loaded from a reproducer corpus.
    pub seeded: u64,
    /// Cases produced by mutating a retained case.
    pub mutated: u64,
    /// Targeted dtype-sibling probes of novel findings.
    pub probes: u64,
    /// Cases generated fresh.
    pub fresh: u64,
    /// Schedule checkpoints reached.
    pub checkpoints: u64,
    /// Final operator schedule weights (summed across shards; an
    /// operator absent here drew at the base weight everywhere).
    pub op_weights: BTreeMap<String, u64>,
}

impl FeedbackSummary {
    /// Folds another shard's summary into this one. Called in
    /// shard-index order by the engine merge, so the result is
    /// byte-identical across worker counts.
    pub fn absorb(&mut self, other: &FeedbackSummary) {
        self.retained += other.retained;
        self.corpus += other.corpus;
        if other.corpus_digest != 0 {
            self.corpus_digest =
                fnv_step(self.corpus_digest, &format!("{:016x}", other.corpus_digest));
        }
        self.seeded += other.seeded;
        self.mutated += other.mutated;
        self.probes += other.probes;
        self.fresh += other.fresh;
        self.checkpoints += other.checkpoints;
        for (k, v) in &other.op_weights {
            *self.op_weights.entry(k.clone()).or_insert(0) += v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_retains_only_novel() {
        let mut c: FeedbackCorpus<u32> = FeedbackCorpus::new(4);
        assert!(!c.offer(1, "1", false));
        assert!(c.is_empty());
        assert!(c.offer(2, "2", true));
        assert_eq!(c.len(), 1);
        assert_eq!(c.retained(), 1);
        assert_ne!(c.digest(), 0);
    }

    #[test]
    fn corpus_ring_replaces_tail_but_keeps_seeds() {
        let mut c: FeedbackCorpus<u32> = FeedbackCorpus::new(3);
        c.seed(100, "s");
        for i in 0..5 {
            c.offer(i, &i.to_string(), true);
        }
        assert_eq!(c.len(), 3);
        assert_eq!(*c.get(0), 100, "seed prefix is frozen");
        assert_eq!(c.retained(), 5);
    }

    #[test]
    fn digest_is_order_sensitive() {
        let mut a: FeedbackCorpus<u32> = FeedbackCorpus::new(8);
        let mut b: FeedbackCorpus<u32> = FeedbackCorpus::new(8);
        a.offer(1, "x", true);
        a.offer(2, "y", true);
        b.offer(2, "y", true);
        b.offer(1, "x", true);
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn plan_scales_to_base_plus_boost() {
        let mut y = YieldStats::default();
        y.record(&["Conv2d".into()], &["f32".into()], &[4], 10);
        y.record(&["Relu".into()], &["f32".into()], &[4], 5);
        let plan = y.plan();
        assert_eq!(plan.op_weights["Conv2d"], BASE_WEIGHT + BOOST_WEIGHT);
        assert_eq!(plan.op_weights["Relu"], BASE_WEIGHT + BOOST_WEIGHT / 2);
        assert_eq!(plan.rank_weights[&4], BASE_WEIGHT + BOOST_WEIGHT);
    }

    #[test]
    fn empty_yield_gives_empty_plan() {
        let y = YieldStats::default();
        assert!(y.plan().is_empty());
        let mut y = YieldStats::default();
        y.record(&["Relu".into()], &[], &[], 0);
        assert!(y.plan().is_empty(), "zero-yield options stay implicit");
    }

    #[test]
    fn summary_absorb_sums_and_folds_digest() {
        let mut a = FeedbackSummary {
            retained: 2,
            corpus: 3,
            corpus_digest: 7,
            ..FeedbackSummary::default()
        };
        let b = FeedbackSummary {
            retained: 1,
            corpus: 1,
            corpus_digest: 9,
            checkpoints: 2,
            ..FeedbackSummary::default()
        };
        let mut a2 = a.clone();
        a.absorb(&b);
        assert_eq!(a.retained, 3);
        assert_eq!(a.corpus, 4);
        assert_eq!(a.checkpoints, 2);
        assert_ne!(a.corpus_digest, 7);
        // Deterministic fold: same inputs, same order, same digest.
        a2.absorb(&b);
        assert_eq!(a.corpus_digest, a2.corpus_digest);
    }

    #[test]
    fn corpus_snapshot_roundtrip_preserves_ring_state() {
        // A resumed process must rebuild the exact corpus: same items,
        // same digest, and — because ring replacement derives its slot
        // from `retained` and `frozen` — the same *future* eviction
        // sequence.
        let mut c: FeedbackCorpus<u32> = FeedbackCorpus::new(3);
        c.seed(100, "s");
        for i in 0..5u32 {
            c.offer(i, &i.to_string(), true);
        }
        let js = serde::json::to_string(&c);
        let mut back: FeedbackCorpus<u32> = serde::json::from_str(&js).expect("roundtrip");
        assert_eq!(back.items(), c.items());
        assert_eq!(back.digest(), c.digest());
        assert_eq!(back.retained(), c.retained());
        // Continued retention evolves both identically.
        c.offer(9, "9", true);
        back.offer(9, "9", true);
        assert_eq!(back.items(), c.items());
        assert_eq!(back.digest(), c.digest());
    }

    #[test]
    fn yield_ledger_roundtrips_and_replans_identically() {
        let mut y = YieldStats::default();
        y.record(&["Conv2d".into()], &["f32".into()], &[4], 10);
        y.record(&["Relu".into()], &["i64".into()], &[2], 5);
        let js = serde::json::to_string(&y);
        let back: YieldStats = serde::json::from_str(&js).expect("roundtrip");
        assert_eq!(back, y);
        assert_eq!(back.plan(), y.plan());
    }

    #[test]
    fn summary_serializes_deterministically() {
        let mut s = FeedbackSummary::default();
        s.op_weights.insert("Relu".into(), 9);
        let js = serde::json::to_string(&s);
        assert_eq!(js, serde::json::to_string(&s.clone()));
        let back: FeedbackSummary = serde::json::from_str(&js).expect("roundtrip");
        assert_eq!(back, s);
    }
}
