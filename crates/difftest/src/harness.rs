//! Single-test-case differential testing: export, compile, run, compare,
//! and (on disagreement) recompile at O0 for fault localization (§4).
//!
//! The harness is split into a **reference phase** and a **per-backend
//! phase** so one generated case can be fanned out across a whole
//! [`BackendSet`]: the interpreter (the PyTorch-oracle role) and the
//! exporter run once per case ([`prepare_case`]), and each backend then
//! compiles, runs and compares against the shared reference outputs,
//! yielding one [`BackendVerdict`] per compiler ([`run_case_matrix`]).
//! Generation + reference execution — the expensive half of a
//! differential test — is thereby paid once and amortized over N
//! backends. [`run_case`] is the single-backend form of the same split.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use nnsmith_compilers::{
    codegen_coverage, export, matched_ir_bugs, perturb_outputs, BackendSet, CGraph, CompileError,
    CompileOptions, Compiler, CoverageSet, ExportResult, LoweredFunc, OptLevel, SharedImport,
    Symptom, System,
};
use nnsmith_compilers::{tir_schedule, tir_simplify};
use nnsmith_graph::{Graph, NodeId, NodeKind};
use nnsmith_ops::{Bindings, Op};
use nnsmith_tensor::Tensor;

use crate::oracle::{compare_outputs, Tolerance, Verdict};

/// One ready-to-run test case: a concrete model plus numerically-valid
/// weights and inputs — or, for IR-mutation sources (the Tzer baseline), a
/// low-level IR payload driven through the loop pipeline instead of the
/// graph frontend.
#[derive(Debug, Clone)]
pub struct TestCase {
    /// The model (empty for IR-payload cases).
    pub graph: Graph<Op>,
    /// Weight bindings (baked into the compiled model).
    pub weights: Bindings,
    /// Input bindings (fed at run time).
    pub inputs: HashMap<NodeId, Tensor>,
    /// Low-level IR payload. When set, [`run_case`] bypasses the
    /// export/compile/compare pipeline and drives the compiler's TIR
    /// passes on these kernels instead (see [`run_ir_case`]).
    pub ir: Option<Vec<LoweredFunc>>,
}

impl TestCase {
    /// Splits full bindings into weights and inputs according to node
    /// kinds.
    pub fn from_bindings(graph: Graph<Op>, bindings: Bindings) -> TestCase {
        let mut weights = Bindings::new();
        let mut inputs = HashMap::new();
        for (id, node) in graph.iter() {
            match node.kind {
                NodeKind::Weight => {
                    if let Some(t) = bindings.get(&id) {
                        weights.insert(id, t.clone());
                    }
                }
                NodeKind::Input => {
                    if let Some(t) = bindings.get(&id) {
                        inputs.insert(id, t.clone());
                    }
                }
                _ => {}
            }
        }
        TestCase {
            graph,
            weights,
            inputs,
            ir: None,
        }
    }

    /// Wraps low-level IR kernels as a test case (the Tzer seam): no
    /// graph, no bindings — the differential harness drives the TIR
    /// pipeline directly.
    pub fn from_ir(funcs: Vec<LoweredFunc>) -> TestCase {
        TestCase {
            graph: Graph::new(),
            weights: Bindings::new(),
            inputs: HashMap::new(),
            ir: Some(funcs),
        }
    }

    /// True for IR-payload cases.
    pub fn is_ir(&self) -> bool {
        self.ir.is_some()
    }

    /// All bindings merged (for the reference executor).
    pub fn all_bindings(&self) -> Bindings {
        let mut b = self.weights.clone();
        for (k, v) in &self.inputs {
            b.insert(*k, v.clone());
        }
        b
    }
}

/// Localization of a detected inconsistency, per the paper's O0
/// recompilation heuristic (§4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// O0 agrees with the reference, O2 does not: the optimizer is wrong.
    Optimization,
    /// O0 disagrees too: conversion (or exporter/reference) side.
    Conversion,
}

/// Outcome of one differential test.
#[derive(Debug, Clone)]
pub enum TestOutcome {
    /// Everything agreed.
    Pass,
    /// The exporter crashed.
    ExportCrash {
        /// Crash message (contains the seeded bug id).
        message: String,
    },
    /// The compiler crashed.
    CompileCrash {
        /// Crash message (contains the seeded bug id when seeded).
        message: String,
    },
    /// The compiler does not support this model; not a bug.
    NotImplemented,
    /// The compiled model failed at run time.
    RuntimeError {
        /// Error description.
        message: String,
    },
    /// Results disagree with the reference.
    ResultMismatch {
        /// Comparison detail.
        detail: String,
        /// O0-based localization.
        site: FaultSite,
        /// Seeded semantic bugs attributable to this mismatch.
        attributed: Vec<String>,
    },
    /// The execution produced NaN/Inf (numeric-invalid): skipped.
    NumericInvalid,
    /// The reference itself failed (invalid test case).
    InvalidCase {
        /// Error description.
        message: String,
    },
}

impl TestOutcome {
    /// The outcome's kind as a stable lowercase token — the `detail`
    /// field of `verdict` events in the structured campaign log.
    pub fn kind(&self) -> &'static str {
        match self {
            TestOutcome::Pass => "pass",
            TestOutcome::ExportCrash { .. } => "export_crash",
            TestOutcome::CompileCrash { .. } => "compile_crash",
            TestOutcome::NotImplemented => "not_implemented",
            TestOutcome::RuntimeError { .. } => "runtime_error",
            TestOutcome::ResultMismatch { .. } => "result_mismatch",
            TestOutcome::NumericInvalid => "numeric_invalid",
            TestOutcome::InvalidCase { .. } => "invalid_case",
        }
    }

    /// True if this outcome evidences a bug (crash or mismatch).
    pub fn is_finding(&self) -> bool {
        matches!(
            self,
            TestOutcome::ExportCrash { .. }
                | TestOutcome::CompileCrash { .. }
                | TestOutcome::ResultMismatch { .. }
                | TestOutcome::RuntimeError { .. }
        )
    }
}

/// The backend-independent phase of one differential test: the reference
/// execution (the PyTorch-oracle role) and the export (the PyTorch→ONNX
/// role, with its own seeded bugs), computed once per case and shared by
/// every backend of the set.
#[derive(Debug, Clone)]
pub struct PreparedCase {
    /// Reference outputs every backend is compared against.
    pub ref_outputs: Vec<Tensor>,
    /// The exported graph plus the exporter's matched semantic bugs.
    pub exported: ExportResult,
    /// Shared frontend conversion: [`CGraph::import`] is a pure function
    /// of `(graph, weights)`, so the matrix pays it once and every
    /// `(backend, options)` compilation — O2 and the O0 localization run
    /// alike — clones the slot instead of re-importing.
    import: Arc<SharedImport>,
    /// Shared O0 localization outputs, keyed on the exported graph's
    /// structural hash: a case diverging on k backends pays one O0
    /// pipeline run instead of k (see [`localize`]).
    localize: Arc<LocalizeCache>,
}

impl PreparedCase {
    /// How many O0 localization pipeline runs this case has paid so far.
    /// The once-only contract's observable: after fanning a diverging
    /// case across k backends this is exactly 1.
    pub fn o0_localize_runs(&self) -> usize {
        self.localize.runs.load(Ordering::Relaxed)
    }
}

/// Cache of shared O0 localization outputs for one prepared case. Keyed
/// on the exported graph's structural hash (weights and inputs are fixed
/// per case, so the graph identifies the O0 run); a `None` slot records
/// that the O0 pipeline itself failed, which localizes to Conversion.
#[derive(Debug, Default)]
struct LocalizeCache {
    /// O0 pipeline executions paid (cache misses).
    runs: AtomicUsize,
    slots: Mutex<HashMap<u64, Option<Arc<O0Outputs>>>>,
}

/// One shared O0 execution, in both per-backend flavours: backends whose
/// conversion-phase semantic bugs match the case see the perturbed
/// variant, everyone else the clean one — the only backend-dependent part
/// of an O0 run (O0 executes no passes).
#[derive(Debug)]
struct O0Outputs {
    clean: Vec<Tensor>,
    perturbed: Vec<Tensor>,
}

/// Structural hash of an exported graph: node ids, operators (with
/// attributes), wiring, and concrete output types. Exported graphs are
/// fully concrete, so this identifies the O0 execution for the
/// localization cache.
fn exported_graph_hash(graph: &Graph<Op>) -> u64 {
    let mut h = DefaultHasher::new();
    for (id, node) in graph.iter() {
        id.hash(&mut h);
        match &node.kind {
            NodeKind::Operator(op) => {
                1u8.hash(&mut h);
                op.hash(&mut h);
            }
            NodeKind::Input => 2u8.hash(&mut h),
            NodeKind::Weight => 3u8.hash(&mut h),
            NodeKind::Placeholder => 4u8.hash(&mut h),
        }
        node.inputs.hash(&mut h);
        for t in &node.outputs {
            t.dtype.hash(&mut h);
            t.concrete_shape().unwrap_or_default().hash(&mut h);
        }
    }
    h.finish()
}

/// Runs the reference phase of `case`: interpreter execution and export.
///
/// # Errors
///
/// Returns the case-level [`TestOutcome`] when the case never reaches a
/// backend: the reference failed ([`TestOutcome::InvalidCase`]), produced
/// NaN/Inf ([`TestOutcome::NumericInvalid`]), or the exporter crashed
/// ([`TestOutcome::ExportCrash`]).
pub fn prepare_case(
    case: &TestCase,
    options: &CompileOptions,
) -> Result<PreparedCase, TestOutcome> {
    let reference = {
        let _span = nnsmith_obs::span(nnsmith_obs::phase::REF_EXEC);
        match nnsmith_ops::execute(&case.graph, &case.all_bindings()) {
            Ok(r) => r,
            Err(e) => {
                return Err(TestOutcome::InvalidCase {
                    message: format!("{e}"),
                })
            }
        }
    };
    if reference.has_exceptional() {
        return Err(TestOutcome::NumericInvalid);
    }
    let ref_outputs: Vec<Tensor> = reference.outputs.iter().map(|(_, t)| t.clone()).collect();

    let exported = {
        let _span = nnsmith_obs::span(nnsmith_obs::phase::EXPORT);
        match export(&case.graph, &options.bugs) {
            Ok(e) => e,
            Err(CompileError::Crash { message, .. }) => {
                return Err(TestOutcome::ExportCrash { message })
            }
            Err(e) => {
                return Err(TestOutcome::InvalidCase {
                    message: format!("{e}"),
                })
            }
        }
    };
    Ok(PreparedCase {
        ref_outputs,
        exported,
        import: Arc::new(SharedImport::new()),
        localize: Arc::new(LocalizeCache::default()),
    })
}

/// The per-backend phase: compiles the prepared case on one backend, runs
/// it and compares against the shared reference outputs, accumulating the
/// backend's branch coverage into `cov`.
pub fn run_prepared_case(
    compiler: &Compiler,
    case: &TestCase,
    prepared: &PreparedCase,
    options: &CompileOptions,
    tol: Tolerance,
    cov: &mut CoverageSet,
) -> TestOutcome {
    let exported = &prepared.exported;
    let name = compiler.system().name();
    let import_was_filled = prepared.import.get().is_some();
    let compiled = {
        let _span = nnsmith_obs::span_owned(|| nnsmith_obs::phase::compile(name));
        compiler.compile_shared(
            &exported.graph,
            &case.weights,
            options,
            cov,
            &prepared.import,
        )
    };
    // Shared-frontend accounting: `init` means this compile filled the
    // case's import slot (paid the conversion); `reuse` means a
    // *successful* compile found it already filled and cloned it.
    // Early-exit outcomes (dtype gate, conversion-crash checks) never
    // reach the slot, so a pre-filled slot only counts as reuse on Ok.
    if !import_was_filled && prepared.import.get().is_some() {
        nnsmith_obs::count_owned(|| format!("import/init/{name}"), 1);
    } else if import_was_filled && compiled.is_ok() {
        nnsmith_obs::count_owned(|| format!("import/reuse/{name}"), 1);
    }
    let compiled = match compiled {
        Ok(c) => c,
        Err(CompileError::NotImplemented(_) | CompileError::UnsupportedDtype(_)) => {
            return TestOutcome::NotImplemented
        }
        Err(CompileError::Crash { message, .. }) => return TestOutcome::CompileCrash { message },
        Err(e) => {
            return TestOutcome::InvalidCase {
                message: format!("{e}"),
            }
        }
    };
    let outputs = {
        let _span = nnsmith_obs::span_owned(|| nnsmith_obs::phase::exec(name));
        compiled.run(&case.inputs)
    };
    let outputs = match outputs {
        Ok(o) => o,
        Err(e) => {
            return TestOutcome::RuntimeError {
                message: format!("{e}"),
            }
        }
    };

    match compare_outputs(&prepared.ref_outputs, &outputs, tol) {
        Verdict::Match => TestOutcome::Pass,
        Verdict::NumericInvalid => TestOutcome::NumericInvalid,
        Verdict::Structure(detail) | Verdict::Mismatch(detail) => {
            // Fault localization: recompile at O0 (§4). If O0 agrees with
            // the reference, the optimizer must be wrong.
            let site = {
                let _span = nnsmith_obs::span_owned(|| nnsmith_obs::phase::localize(name));
                match localize(compiler, case, prepared, options, tol) {
                    Some(s) => s,
                    None => FaultSite::Conversion,
                }
            };
            let mut attributed: Vec<String> = compiled
                .perturbations
                .iter()
                .map(|s| s.to_string())
                .collect();
            attributed.extend(exported.semantic_bugs.iter().map(|s| s.to_string()));
            // Honestly-implemented pass bugs: attribute via pattern match.
            for id in compiler.matched_bugs(&exported.graph) {
                if (id == "ort-t02" || id == "tvm-simpl-1")
                    && options.bugs.enabled(id)
                    && !attributed.iter().any(|a| a == id)
                {
                    attributed.push(id.to_string());
                }
            }
            TestOutcome::ResultMismatch {
                detail,
                site,
                attributed,
            }
        }
    }
}

/// Runs one differential test of `case` against `compiler`, accumulating
/// coverage into `cov`. The single-backend composition of
/// [`prepare_case`] + [`run_prepared_case`].
pub fn run_case(
    compiler: &Compiler,
    case: &TestCase,
    options: &CompileOptions,
    tol: Tolerance,
    cov: &mut CoverageSet,
) -> TestOutcome {
    if let Some(funcs) = &case.ir {
        return run_ir_case(compiler, funcs, options, cov);
    }
    let prepared = match prepare_case(case, options) {
        Ok(p) => p,
        Err(outcome) => return outcome,
    };
    run_prepared_case(compiler, case, &prepared, options, tol, cov)
}

/// One backend's view of a fanned-out test case.
#[derive(Debug, Clone)]
pub struct BackendVerdict {
    /// Which backend produced this verdict.
    pub system: System,
    /// The backend's differential outcome.
    pub outcome: TestOutcome,
    /// Branch coverage this backend accumulated on this case (each
    /// backend's branch ids live in its own manifest, so coverage is kept
    /// per backend, never unioned across systems).
    pub coverage: CoverageSet,
}

/// The outcome of fanning one case out across a [`BackendSet`]: either a
/// backend-independent early exit (`pre`), or one [`BackendVerdict`] per
/// backend in set order — the case-level record of *which* backends
/// diverged.
#[derive(Debug, Clone)]
pub struct MatrixOutcome {
    /// The reference/export-phase outcome, when the case never reached the
    /// backends (invalid case, NaN reference, exporter crash). `verdicts`
    /// is empty in that case.
    pub pre: Option<TestOutcome>,
    /// Per-backend verdicts, in backend-set order.
    pub verdicts: Vec<BackendVerdict>,
}

impl MatrixOutcome {
    /// The backends whose verdict evidences a bug.
    pub fn diverged(&self) -> Vec<System> {
        self.verdicts
            .iter()
            .filter(|v| v.outcome.is_finding())
            .map(|v| v.system)
            .collect()
    }

    /// True when any phase of the matrix evidences a bug (an exporter
    /// crash, or any backend's finding).
    pub fn is_finding(&self) -> bool {
        self.pre.as_ref().is_some_and(TestOutcome::is_finding)
            || self.verdicts.iter().any(|v| v.outcome.is_finding())
    }
}

/// Fans one case out across every backend of the set: the reference phase
/// runs once ([`prepare_case`]), then each backend compiles, runs and
/// compares against the shared reference outputs. IR-payload cases skip
/// the reference phase and drive each backend's TIR pipeline directly
/// (backends without one answer [`TestOutcome::NotImplemented`]).
pub fn run_case_matrix(
    backends: &BackendSet,
    case: &TestCase,
    options: &CompileOptions,
    tol: Tolerance,
) -> MatrixOutcome {
    if let Some(funcs) = &case.ir {
        let verdicts = backends
            .iter()
            .map(|compiler| {
                let mut coverage = CoverageSet::new();
                let outcome = run_ir_case(compiler, funcs, options, &mut coverage);
                BackendVerdict {
                    system: compiler.system(),
                    outcome,
                    coverage,
                }
            })
            .collect();
        return MatrixOutcome {
            pre: None,
            verdicts,
        };
    }
    let prepared = match prepare_case(case, options) {
        Ok(p) => p,
        Err(outcome) => {
            return MatrixOutcome {
                pre: Some(outcome),
                verdicts: Vec::new(),
            }
        }
    };
    let verdicts = backends
        .iter()
        .map(|compiler| {
            let mut coverage = CoverageSet::new();
            let outcome = run_prepared_case(compiler, case, &prepared, options, tol, &mut coverage);
            BackendVerdict {
                system: compiler.system(),
                outcome,
                coverage,
            }
        })
        .collect();
    MatrixOutcome {
        pre: None,
        verdicts,
    }
}

/// Runs one IR-payload test (the Tzer seam): the kernels go through the
/// compiler's low-level pipeline (simplify → schedule → codegen) with
/// coverage, and seeded TIR bugs fire on their IR patterns — crash bugs
/// abort the pipeline, semantic bugs surface as attributed optimization
/// mismatches. Purely a function of the IR, so IR campaigns keep the
/// engine's bit-reproducibility contract.
pub fn run_ir_case(
    compiler: &Compiler,
    funcs: &[LoweredFunc],
    options: &CompileOptions,
    cov: &mut nnsmith_compilers::CoverageSet,
) -> TestOutcome {
    if !compiler.has_lowlevel() {
        return TestOutcome::NotImplemented;
    }
    // Loading the framework covers the same baseline branches as any other
    // fuzzer driving this compiler.
    compiler.record_base_coverage(cov);
    let optimize = options.opt_level == OptLevel::O2;
    // Every seeded TIR bug lives in the optimizing pipeline, so — like the
    // graph registry's transformation bugs — none can fire at O0, keeping
    // the O0-recompile localization differential meaningful for IR cases.
    let matched = if optimize {
        matched_ir_bugs(funcs, &options.bugs)
    } else {
        Vec::new()
    };
    // Crash bugs abort before the pipeline runs, like a graph-level
    // conversion crash aborts before the passes.
    if let Some(bug) = matched.iter().find(|b| b.symptom == Symptom::Crash) {
        return TestOutcome::CompileCrash {
            message: format!(
                "crash in tir pipeline: seeded bug {}: {}",
                bug.id, bug.description
            ),
        };
    }
    let manifest = compiler.manifest();
    let mut funcs = funcs.to_vec();
    if optimize {
        tir_simplify(&mut funcs, cov, manifest);
        tir_schedule(&mut funcs, cov, manifest);
    }
    codegen_coverage(&funcs, cov, manifest);
    let semantic: Vec<String> = matched
        .iter()
        .filter(|b| b.symptom == Symptom::Semantic)
        .map(|b| b.id.to_string())
        .collect();
    if !semantic.is_empty() {
        return TestOutcome::ResultMismatch {
            detail: "tir pipeline output disagrees with the interpreter".into(),
            // TIR bugs live in the optimizing pipeline by construction.
            site: FaultSite::Optimization,
            attributed: semantic,
        };
    }
    TestOutcome::Pass
}

/// The O0 localization recompile (§4), paid once per case instead of once
/// per diverging backend.
///
/// Sharing one O0 run across backends is sound because, *in the localize
/// context*, everything about an O0 compilation is backend-independent
/// except whether the outputs are perturbed:
///
/// * the backend's O2 compilation of this exact graph already succeeded
///   (we are here because its outputs mismatched), so the dtype gate,
///   seeded conversion-crash checks and the import cannot fail at O0 —
///   they are opt-level-independent;
/// * O0 runs no passes, so the tensor-level execution is exactly
///   `CGraph::import(graph, weights).run(inputs)` — identical for every
///   backend (and the import itself comes from the case's shared slot);
/// * the only per-backend difference is the run-time perturbation from
///   conversion-phase matched semantic bugs, recovered without
///   recompiling via [`Compiler::o0_perturbations`];
/// * skipping the O0 compile also skips its coverage recording, which is
///   invisible: an O0 compile hits a strict subset (base + frontend) of
///   the branches the already-recorded O2 compile hit, and coverage is a
///   set.
fn localize(
    compiler: &Compiler,
    case: &TestCase,
    prepared: &PreparedCase,
    options: &CompileOptions,
    tol: Tolerance,
) -> Option<FaultSite> {
    let key = exported_graph_hash(&prepared.exported.graph);
    let slot = {
        let mut slots = prepared
            .localize
            .slots
            .lock()
            .expect("localize cache poisoned");
        let name = compiler.system().name();
        match slots.get(&key) {
            Some(cached) => {
                nnsmith_obs::count_owned(|| format!("localize/cache_hit/{name}"), 1);
                cached.clone()
            }
            None => {
                prepared.localize.runs.fetch_add(1, Ordering::Relaxed);
                nnsmith_obs::count_owned(|| format!("localize/o0_run/{name}"), 1);
                let outputs = run_o0_shared(prepared, case);
                slots.insert(key, outputs.clone());
                outputs
            }
        }
    };
    // A failed O0 pipeline localizes to Conversion, like the uncached
    // path's failed O0 recompile did.
    let o0 = slot?;
    let perturbed = !compiler
        .o0_perturbations(&prepared.exported.graph, options)
        .is_empty();
    let outputs = if perturbed { &o0.perturbed } else { &o0.clean };
    match compare_outputs(&prepared.ref_outputs, outputs, tol) {
        Verdict::Match => Some(FaultSite::Optimization),
        _ => Some(FaultSite::Conversion),
    }
}

/// The shared, backend-independent part of one O0 localization run:
/// convert (through the case's shared import slot — usually already
/// filled by the O2 compile that found the mismatch), execute, and
/// pre-compute the perturbed variant of the outputs.
fn run_o0_shared(prepared: &PreparedCase, case: &TestCase) -> Option<Arc<O0Outputs>> {
    let cgraph = prepared
        .import
        .get_or_init(|| CGraph::import(&prepared.exported.graph, &case.weights))
        .clone()
        .ok()?;
    let clean = cgraph.run(&case.inputs).ok()?;
    let mut perturbed = clean.clone();
    perturb_outputs(&mut perturbed);
    Some(Arc::new(O0Outputs { clean, perturbed }))
}

/// Extracts the seeded-bug id from a crash message, when present.
pub fn seeded_bug_id(message: &str) -> Option<String> {
    let marker = "seeded bug ";
    let start = message.find(marker)? + marker.len();
    let rest = &message[start..];
    let end = rest.find(':').unwrap_or(rest.len());
    Some(rest[..end].trim().to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnsmith_compilers::{ortsim, trtsim, tvmsim, BugConfig, CoverageSet};
    use nnsmith_graph::{TensorType, ValueRef};
    use nnsmith_ops::{BinaryKind, UnaryKind};
    use nnsmith_tensor::DType;

    fn clean_case() -> TestCase {
        let mut g: Graph<Op> = Graph::new();
        let x = g.add_node(
            NodeKind::Input,
            vec![],
            vec![TensorType::concrete(DType::F32, &[4])],
        );
        let w = g.add_node(
            NodeKind::Weight,
            vec![],
            vec![TensorType::concrete(DType::F32, &[4])],
        );
        let add = g.add_node(
            NodeKind::Operator(Op::Binary(BinaryKind::Add)),
            vec![ValueRef::output0(x), ValueRef::output0(w)],
            vec![TensorType::concrete(DType::F32, &[4])],
        );
        g.add_node(
            NodeKind::Operator(Op::Unary(UnaryKind::Tanh)),
            vec![ValueRef::output0(add)],
            vec![TensorType::concrete(DType::F32, &[4])],
        );
        let mut bindings = Bindings::new();
        bindings.insert(x, Tensor::from_f32(&[4], vec![0.1, 0.2, 0.3, 0.4]).unwrap());
        bindings.insert(w, Tensor::from_f32(&[4], vec![0.5, 0.5, 0.5, 0.5]).unwrap());
        TestCase::from_bindings(g, bindings)
    }

    #[test]
    fn clean_case_passes_all_compilers() {
        let case = clean_case();
        let mut cov = CoverageSet::new();
        for c in [tvmsim(), ortsim(), trtsim()] {
            let outcome = run_case(
                &c,
                &case,
                &CompileOptions::default(),
                Tolerance::default(),
                &mut cov,
            );
            assert!(matches!(outcome, TestOutcome::Pass), "{outcome:?}");
        }
    }

    #[test]
    fn seeded_crash_detected_and_identified() {
        // ArgMax to scalar crashes tvmsim's importer (tvm-conv-5).
        let mut g: Graph<Op> = Graph::new();
        let x = g.add_node(
            NodeKind::Input,
            vec![],
            vec![TensorType::concrete(DType::F32, &[4])],
        );
        g.add_node(
            NodeKind::Operator(Op::ArgExtreme {
                largest: true,
                axis: 0,
                keepdims: false,
            }),
            vec![ValueRef::output0(x)],
            vec![TensorType::concrete(DType::I64, &[])],
        );
        let mut bindings = Bindings::new();
        bindings.insert(x, Tensor::from_f32(&[4], vec![1., 5., 2., 4.]).unwrap());
        let case = TestCase::from_bindings(g, bindings);
        let mut cov = CoverageSet::new();
        let outcome = run_case(
            &tvmsim(),
            &case,
            &CompileOptions::default(),
            Tolerance::default(),
            &mut cov,
        );
        match outcome {
            TestOutcome::CompileCrash { message } => {
                assert_eq!(seeded_bug_id(&message).as_deref(), Some("tvm-conv-5"));
            }
            other => panic!("expected crash, got {other:?}"),
        }
    }

    #[test]
    fn semantic_bug_localized_to_optimizer() {
        // tvm-simpl-1: (x / c) * c for ints — honest pass bug, O0 is clean.
        let mut g: Graph<Op> = Graph::new();
        let x = g.add_node(
            NodeKind::Input,
            vec![],
            vec![TensorType::concrete(DType::I32, &[2])],
        );
        let c = g.add_node(
            NodeKind::Weight,
            vec![],
            vec![TensorType::concrete(DType::I32, &[])],
        );
        let div = g.add_node(
            NodeKind::Operator(Op::Binary(BinaryKind::Div)),
            vec![ValueRef::output0(x), ValueRef::output0(c)],
            vec![TensorType::concrete(DType::I32, &[2])],
        );
        g.add_node(
            NodeKind::Operator(Op::Binary(BinaryKind::Mul)),
            vec![ValueRef::output0(div), ValueRef::output0(c)],
            vec![TensorType::concrete(DType::I32, &[2])],
        );
        let mut bindings = Bindings::new();
        bindings.insert(x, Tensor::from_i32(&[2], vec![7, 9]).unwrap());
        bindings.insert(c, Tensor::scalar(DType::I32, 3.0));
        let case = TestCase::from_bindings(g, bindings);
        let mut cov = CoverageSet::new();
        let outcome = run_case(
            &tvmsim(),
            &case,
            &CompileOptions::default(),
            Tolerance::default(),
            &mut cov,
        );
        match outcome {
            TestOutcome::ResultMismatch {
                site, attributed, ..
            } => {
                assert_eq!(site, FaultSite::Optimization);
                assert!(attributed.contains(&"tvm-simpl-1".to_string()));
            }
            other => panic!("expected mismatch, got {other:?}"),
        }
        // With bugs off the same case passes.
        let outcome = run_case(
            &tvmsim(),
            &case,
            &CompileOptions {
                bugs: BugConfig::none(),
                ..CompileOptions::default()
            },
            Tolerance::default(),
            &mut cov,
        );
        assert!(matches!(outcome, TestOutcome::Pass), "{outcome:?}");
    }

    #[test]
    fn f64_case_not_implemented_on_trtsim() {
        let mut g: Graph<Op> = Graph::new();
        let x = g.add_node(
            NodeKind::Input,
            vec![],
            vec![TensorType::concrete(DType::F64, &[2])],
        );
        g.add_node(
            NodeKind::Operator(Op::Unary(UnaryKind::Tanh)),
            vec![ValueRef::output0(x)],
            vec![TensorType::concrete(DType::F64, &[2])],
        );
        let mut bindings = Bindings::new();
        bindings.insert(x, Tensor::from_f64(&[2], vec![0.5, -0.5]).unwrap());
        let case = TestCase::from_bindings(g, bindings);
        let mut cov = CoverageSet::new();
        let outcome = run_case(
            &trtsim(),
            &case,
            &CompileOptions::default(),
            Tolerance::default(),
            &mut cov,
        );
        assert!(matches!(outcome, TestOutcome::NotImplemented));
    }

    #[test]
    fn nan_case_skipped() {
        // Sqrt of a negative input → NaN in reference → NumericInvalid.
        let mut g: Graph<Op> = Graph::new();
        let x = g.add_node(
            NodeKind::Input,
            vec![],
            vec![TensorType::concrete(DType::F32, &[2])],
        );
        g.add_node(
            NodeKind::Operator(Op::Unary(UnaryKind::Sqrt)),
            vec![ValueRef::output0(x)],
            vec![TensorType::concrete(DType::F32, &[2])],
        );
        let mut bindings = Bindings::new();
        bindings.insert(x, Tensor::from_f32(&[2], vec![-1.0, 4.0]).unwrap());
        let case = TestCase::from_bindings(g, bindings);
        let mut cov = CoverageSet::new();
        let outcome = run_case(
            &ortsim(),
            &case,
            &CompileOptions::default(),
            Tolerance::default(),
            &mut cov,
        );
        assert!(matches!(outcome, TestOutcome::NumericInvalid));
    }

    #[test]
    fn ir_case_drives_tir_pipeline_and_fires_seeded_tir_bugs() {
        use nnsmith_compilers::{LExpr, LStmt};
        let clean = LoweredFunc {
            name: "clean".into(),
            body: vec![LStmt::For {
                var: 0,
                extent: 8,
                body: vec![LStmt::Store {
                    index: LExpr::Var(0),
                }],
                vectorized: false,
                unrolled: false,
            }],
        };
        let mut cov = CoverageSet::new();
        let case = TestCase::from_ir(vec![clean.clone()]);
        assert!(case.is_ir());
        let outcome = run_case(
            &tvmsim(),
            &case,
            &CompileOptions::default(),
            Tolerance::default(),
            &mut cov,
        );
        assert!(matches!(outcome, TestOutcome::Pass), "{outcome:?}");
        assert!(cov.len() > 400, "base + tir coverage, got {}", cov.len());

        // A variable divisor — IR graph lowering never emits — crashes.
        let crasher = LoweredFunc {
            name: "divvar".into(),
            body: vec![LStmt::Store {
                index: LExpr::Div(Box::new(LExpr::Var(0)), Box::new(LExpr::Var(1))),
            }],
        };
        let outcome = run_case(
            &tvmsim(),
            &TestCase::from_ir(vec![crasher]),
            &CompileOptions::default(),
            Tolerance::default(),
            &mut cov,
        );
        match outcome {
            TestOutcome::CompileCrash { message } => {
                assert_eq!(seeded_bug_id(&message).as_deref(), Some("tir-simpl-div"));
            }
            other => panic!("expected crash, got {other:?}"),
        }

        // A negative index constant is the seeded semantic TIR bug.
        let neg = LoweredFunc {
            name: "neg".into(),
            body: vec![LStmt::Store {
                index: LExpr::Add(Box::new(LExpr::Var(0)), Box::new(LExpr::Const(-3))),
            }],
        };
        let outcome = run_case(
            &tvmsim(),
            &TestCase::from_ir(vec![neg]),
            &CompileOptions::default(),
            Tolerance::default(),
            &mut cov,
        );
        match outcome {
            TestOutcome::ResultMismatch {
                site, attributed, ..
            } => {
                assert_eq!(site, FaultSite::Optimization);
                assert_eq!(attributed, vec!["tir-simpl-neg".to_string()]);
            }
            other => panic!("expected mismatch, got {other:?}"),
        }

        // Seeded TIR bugs live in the optimizing pipeline: at O0 the same
        // crasher runs clean, so O0-recompile localization stays
        // meaningful for IR findings too.
        let crasher_again = TestCase::from_ir(vec![LoweredFunc {
            name: "divvar".into(),
            body: vec![LStmt::Store {
                index: LExpr::Div(Box::new(LExpr::Var(0)), Box::new(LExpr::Var(1))),
            }],
        }]);
        let outcome = run_case(
            &tvmsim(),
            &crasher_again,
            &CompileOptions {
                opt_level: OptLevel::O0,
                ..CompileOptions::default()
            },
            Tolerance::default(),
            &mut cov,
        );
        assert!(matches!(outcome, TestOutcome::Pass), "{outcome:?}");

        // Compilers without a low-level pipeline skip IR cases.
        let outcome = run_case(
            &ortsim(),
            &TestCase::from_ir(vec![clean]),
            &CompileOptions::default(),
            Tolerance::default(),
            &mut cov,
        );
        assert!(matches!(outcome, TestOutcome::NotImplemented));
    }

    #[test]
    fn matrix_fans_one_case_across_the_set() {
        use nnsmith_compilers::BackendSet;
        // A clean case passes on every backend, with per-backend coverage.
        let case = clean_case();
        let backends = BackendSet::all();
        let matrix = run_case_matrix(
            &backends,
            &case,
            &CompileOptions::default(),
            Tolerance::default(),
        );
        assert!(matrix.pre.is_none());
        assert_eq!(matrix.verdicts.len(), 3);
        assert!(matrix.diverged().is_empty());
        assert!(!matrix.is_finding());
        for v in &matrix.verdicts {
            assert!(matches!(v.outcome, TestOutcome::Pass), "{:?}", v.outcome);
            assert!(
                !v.coverage.is_empty(),
                "{:?} recorded no coverage",
                v.system
            );
        }

        // A case triggering a tvm-only conversion crash diverges on
        // tvmsim alone; the other backends still run (and pass).
        let mut g: Graph<Op> = Graph::new();
        let x = g.add_node(
            NodeKind::Input,
            vec![],
            vec![TensorType::concrete(DType::F32, &[4])],
        );
        g.add_node(
            NodeKind::Operator(Op::ArgExtreme {
                largest: true,
                axis: 0,
                keepdims: false,
            }),
            vec![ValueRef::output0(x)],
            vec![TensorType::concrete(DType::I64, &[])],
        );
        let mut bindings = Bindings::new();
        bindings.insert(x, Tensor::from_f32(&[4], vec![1., 5., 2., 4.]).unwrap());
        let case = TestCase::from_bindings(g, bindings);
        let matrix = run_case_matrix(
            &backends,
            &case,
            &CompileOptions::default(),
            Tolerance::default(),
        );
        assert!(matrix.is_finding());
        assert_eq!(matrix.diverged(), vec![nnsmith_compilers::System::TvmSim]);

        // An f64 case runs on tvm/ort and is NotImplemented on trt — not
        // a divergence.
        let mut g: Graph<Op> = Graph::new();
        let x = g.add_node(
            NodeKind::Input,
            vec![],
            vec![TensorType::concrete(DType::F64, &[2])],
        );
        g.add_node(
            NodeKind::Operator(Op::Unary(UnaryKind::Tanh)),
            vec![ValueRef::output0(x)],
            vec![TensorType::concrete(DType::F64, &[2])],
        );
        let mut bindings = Bindings::new();
        bindings.insert(x, Tensor::from_f64(&[2], vec![0.5, -0.5]).unwrap());
        let case = TestCase::from_bindings(g, bindings);
        let matrix = run_case_matrix(
            &backends,
            &case,
            &CompileOptions::default(),
            Tolerance::default(),
        );
        assert!(!matrix.is_finding());
        let by_system: Vec<_> = matrix
            .verdicts
            .iter()
            .map(|v| (v.system, matches!(v.outcome, TestOutcome::NotImplemented)))
            .collect();
        assert_eq!(
            by_system,
            vec![
                (nnsmith_compilers::System::TvmSim, false),
                (nnsmith_compilers::System::OrtSim, false),
                (nnsmith_compilers::System::TrtSim, true),
            ]
        );

        // An exporter crash is a pre-phase outcome: no backend verdicts.
        let mut g: Graph<Op> = Graph::new();
        let x = g.add_node(
            NodeKind::Input,
            vec![],
            vec![TensorType::concrete(DType::F32, &[1])],
        );
        g.add_node(
            NodeKind::Operator(Op::Squeeze { axis: 0 }),
            vec![ValueRef::output0(x)],
            vec![TensorType::concrete(DType::F32, &[])],
        );
        let mut bindings = Bindings::new();
        bindings.insert(x, Tensor::from_f32(&[1], vec![0.5]).unwrap());
        let case = TestCase::from_bindings(g, bindings);
        let matrix = run_case_matrix(
            &backends,
            &case,
            &CompileOptions::default(),
            Tolerance::default(),
        );
        assert!(matches!(matrix.pre, Some(TestOutcome::ExportCrash { .. })));
        assert!(matrix.verdicts.is_empty());
        assert!(matrix.is_finding());
    }

    #[test]
    fn diverging_matrix_pays_one_o0_localization_run() {
        // exp-1: Log2 of a scalar mis-exports with a spurious Unsqueeze,
        // so every backend faithfully compiles a wrong graph and every
        // backend mismatches the reference — the k-way divergence that
        // used to pay k O0 recompiles.
        // (Rank-0 *network inputs* crash trtsim's parser — trt-c1 — so the
        // scalar comes from a reduction instead.)
        let mut g: Graph<Op> = Graph::new();
        let x = g.add_node(
            NodeKind::Input,
            vec![],
            vec![TensorType::concrete(DType::F32, &[4])],
        );
        let sum = g.add_node(
            NodeKind::Operator(Op::Reduce {
                kind: nnsmith_tensor::ReduceKind::Sum,
                axes: vec![0],
                keepdims: false,
            }),
            vec![ValueRef::output0(x)],
            vec![TensorType::concrete(DType::F32, &[])],
        );
        g.add_node(
            NodeKind::Operator(Op::Unary(UnaryKind::Log2)),
            vec![ValueRef::output0(sum)],
            vec![TensorType::concrete(DType::F32, &[])],
        );
        let mut bindings = Bindings::new();
        bindings.insert(x, Tensor::from_f32(&[4], vec![1.0, 2.0, 4.0, 8.0]).unwrap());
        let case = TestCase::from_bindings(g, bindings);

        // Reduce-to-scalar also trips seeded *crash* bugs (tvm-conv-1,
        // ort-t09); disable those so all three backends reach the compare
        // and the divergence is exp-1's mis-export alone.
        let mut bugs = BugConfig::all_on();
        bugs.disable("tvm-conv-1");
        bugs.disable("ort-t09");
        let options = CompileOptions {
            bugs,
            ..CompileOptions::default()
        };
        let prepared = prepare_case(&case, &options).expect("prepared");
        assert_eq!(prepared.o0_localize_runs(), 0);
        let backends = BackendSet::all();
        let mut diverged = 0;
        for compiler in backends.iter() {
            let mut cov = CoverageSet::new();
            let outcome = run_prepared_case(
                compiler,
                &case,
                &prepared,
                &options,
                Tolerance::default(),
                &mut cov,
            );
            match outcome {
                TestOutcome::ResultMismatch {
                    site, attributed, ..
                } => {
                    assert_eq!(site, FaultSite::Conversion);
                    assert!(attributed.contains(&"exp-1".to_string()));
                    diverged += 1;
                }
                other => panic!("expected mismatch, got {other:?}"),
            }
        }
        assert_eq!(diverged, 3);
        assert_eq!(
            prepared.o0_localize_runs(),
            1,
            "three diverging backends must share a single O0 localization run"
        );

        // run_case_matrix reports the same divergence through the same
        // prepared-case plumbing.
        let matrix = run_case_matrix(&backends, &case, &options, Tolerance::default());
        assert_eq!(matrix.diverged().len(), 3);
    }

    #[test]
    fn seeded_bug_id_parsing() {
        assert_eq!(
            seeded_bug_id("crash in frontend: seeded bug tvm-conv-5: importer crashes"),
            Some("tvm-conv-5".to_string())
        );
        assert_eq!(seeded_bug_id("segfault"), None);
    }
}
