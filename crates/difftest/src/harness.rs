//! Single-test-case differential testing: export, compile, run, compare,
//! and (on disagreement) recompile at O0 for fault localization (§4).

use std::collections::HashMap;

use nnsmith_compilers::{
    codegen_coverage, export, matched_ir_bugs, tir_schedule, tir_simplify, CompileError,
    CompileOptions, Compiler, LoweredFunc, OptLevel, Symptom,
};
use nnsmith_graph::{Graph, NodeId, NodeKind};
use nnsmith_ops::{Bindings, Op};
use nnsmith_tensor::Tensor;

use crate::oracle::{compare_outputs, Tolerance, Verdict};

/// One ready-to-run test case: a concrete model plus numerically-valid
/// weights and inputs — or, for IR-mutation sources (the Tzer baseline), a
/// low-level IR payload driven through the loop pipeline instead of the
/// graph frontend.
#[derive(Debug, Clone)]
pub struct TestCase {
    /// The model (empty for IR-payload cases).
    pub graph: Graph<Op>,
    /// Weight bindings (baked into the compiled model).
    pub weights: Bindings,
    /// Input bindings (fed at run time).
    pub inputs: HashMap<NodeId, Tensor>,
    /// Low-level IR payload. When set, [`run_case`] bypasses the
    /// export/compile/compare pipeline and drives the compiler's TIR
    /// passes on these kernels instead (see [`run_ir_case`]).
    pub ir: Option<Vec<LoweredFunc>>,
}

impl TestCase {
    /// Splits full bindings into weights and inputs according to node
    /// kinds.
    pub fn from_bindings(graph: Graph<Op>, bindings: Bindings) -> TestCase {
        let mut weights = Bindings::new();
        let mut inputs = HashMap::new();
        for (id, node) in graph.iter() {
            match node.kind {
                NodeKind::Weight => {
                    if let Some(t) = bindings.get(&id) {
                        weights.insert(id, t.clone());
                    }
                }
                NodeKind::Input => {
                    if let Some(t) = bindings.get(&id) {
                        inputs.insert(id, t.clone());
                    }
                }
                _ => {}
            }
        }
        TestCase {
            graph,
            weights,
            inputs,
            ir: None,
        }
    }

    /// Wraps low-level IR kernels as a test case (the Tzer seam): no
    /// graph, no bindings — the differential harness drives the TIR
    /// pipeline directly.
    pub fn from_ir(funcs: Vec<LoweredFunc>) -> TestCase {
        TestCase {
            graph: Graph::new(),
            weights: Bindings::new(),
            inputs: HashMap::new(),
            ir: Some(funcs),
        }
    }

    /// True for IR-payload cases.
    pub fn is_ir(&self) -> bool {
        self.ir.is_some()
    }

    /// All bindings merged (for the reference executor).
    pub fn all_bindings(&self) -> Bindings {
        let mut b = self.weights.clone();
        for (k, v) in &self.inputs {
            b.insert(*k, v.clone());
        }
        b
    }
}

/// Localization of a detected inconsistency, per the paper's O0
/// recompilation heuristic (§4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// O0 agrees with the reference, O2 does not: the optimizer is wrong.
    Optimization,
    /// O0 disagrees too: conversion (or exporter/reference) side.
    Conversion,
}

/// Outcome of one differential test.
#[derive(Debug, Clone)]
pub enum TestOutcome {
    /// Everything agreed.
    Pass,
    /// The exporter crashed.
    ExportCrash {
        /// Crash message (contains the seeded bug id).
        message: String,
    },
    /// The compiler crashed.
    CompileCrash {
        /// Crash message (contains the seeded bug id when seeded).
        message: String,
    },
    /// The compiler does not support this model; not a bug.
    NotImplemented,
    /// The compiled model failed at run time.
    RuntimeError {
        /// Error description.
        message: String,
    },
    /// Results disagree with the reference.
    ResultMismatch {
        /// Comparison detail.
        detail: String,
        /// O0-based localization.
        site: FaultSite,
        /// Seeded semantic bugs attributable to this mismatch.
        attributed: Vec<String>,
    },
    /// The execution produced NaN/Inf (numeric-invalid): skipped.
    NumericInvalid,
    /// The reference itself failed (invalid test case).
    InvalidCase {
        /// Error description.
        message: String,
    },
}

impl TestOutcome {
    /// True if this outcome evidences a bug (crash or mismatch).
    pub fn is_finding(&self) -> bool {
        matches!(
            self,
            TestOutcome::ExportCrash { .. }
                | TestOutcome::CompileCrash { .. }
                | TestOutcome::ResultMismatch { .. }
                | TestOutcome::RuntimeError { .. }
        )
    }
}

/// Runs one differential test of `case` against `compiler`, accumulating
/// coverage into `cov`.
pub fn run_case(
    compiler: &Compiler,
    case: &TestCase,
    options: &CompileOptions,
    tol: Tolerance,
    cov: &mut nnsmith_compilers::CoverageSet,
) -> TestOutcome {
    if let Some(funcs) = &case.ir {
        return run_ir_case(compiler, funcs, options, cov);
    }
    // Reference execution (the PyTorch-oracle role).
    let reference = match nnsmith_ops::execute(&case.graph, &case.all_bindings()) {
        Ok(r) => r,
        Err(e) => {
            return TestOutcome::InvalidCase {
                message: format!("{e}"),
            }
        }
    };
    if reference.has_exceptional() {
        return TestOutcome::NumericInvalid;
    }
    let ref_outputs: Vec<Tensor> = reference.outputs.iter().map(|(_, t)| t.clone()).collect();

    // Export (the PyTorch→ONNX role, with its own seeded bugs).
    let exported = match export(&case.graph, &options.bugs) {
        Ok(e) => e,
        Err(CompileError::Crash { message, .. }) => return TestOutcome::ExportCrash { message },
        Err(e) => {
            return TestOutcome::InvalidCase {
                message: format!("{e}"),
            }
        }
    };

    // Compile and run.
    let compiled = match compiler.compile(&exported.graph, &case.weights, options, cov) {
        Ok(c) => c,
        Err(CompileError::NotImplemented(_)) => return TestOutcome::NotImplemented,
        Err(CompileError::Crash { message, .. }) => return TestOutcome::CompileCrash { message },
        Err(e) => {
            return TestOutcome::InvalidCase {
                message: format!("{e}"),
            }
        }
    };
    let outputs = match compiled.run(&case.inputs) {
        Ok(o) => o,
        Err(e) => {
            return TestOutcome::RuntimeError {
                message: format!("{e}"),
            }
        }
    };

    match compare_outputs(&ref_outputs, &outputs, tol) {
        Verdict::Match => TestOutcome::Pass,
        Verdict::NumericInvalid => TestOutcome::NumericInvalid,
        Verdict::Structure(detail) | Verdict::Mismatch(detail) => {
            // Fault localization: recompile at O0 (§4). If O0 agrees with
            // the reference, the optimizer must be wrong.
            let site = match localize(compiler, case, &exported.graph, options, tol, cov) {
                Some(s) => s,
                None => FaultSite::Conversion,
            };
            let mut attributed: Vec<String> = compiled
                .perturbations
                .iter()
                .map(|s| s.to_string())
                .collect();
            attributed.extend(exported.semantic_bugs.iter().map(|s| s.to_string()));
            // Honestly-implemented pass bugs: attribute via pattern match.
            for id in compiler.matched_bugs(&exported.graph) {
                if (id == "ort-t02" || id == "tvm-simpl-1")
                    && options.bugs.enabled(id)
                    && !attributed.iter().any(|a| a == id)
                {
                    attributed.push(id.to_string());
                }
            }
            TestOutcome::ResultMismatch {
                detail,
                site,
                attributed,
            }
        }
    }
}

/// Runs one IR-payload test (the Tzer seam): the kernels go through the
/// compiler's low-level pipeline (simplify → schedule → codegen) with
/// coverage, and seeded TIR bugs fire on their IR patterns — crash bugs
/// abort the pipeline, semantic bugs surface as attributed optimization
/// mismatches. Purely a function of the IR, so IR campaigns keep the
/// engine's bit-reproducibility contract.
pub fn run_ir_case(
    compiler: &Compiler,
    funcs: &[LoweredFunc],
    options: &CompileOptions,
    cov: &mut nnsmith_compilers::CoverageSet,
) -> TestOutcome {
    if !compiler.has_lowlevel() {
        return TestOutcome::NotImplemented;
    }
    // Loading the framework covers the same baseline branches as any other
    // fuzzer driving this compiler.
    compiler.record_base_coverage(cov);
    let optimize = options.opt_level == OptLevel::O2;
    // Every seeded TIR bug lives in the optimizing pipeline, so — like the
    // graph registry's transformation bugs — none can fire at O0, keeping
    // the O0-recompile localization differential meaningful for IR cases.
    let matched = if optimize {
        matched_ir_bugs(funcs, &options.bugs)
    } else {
        Vec::new()
    };
    // Crash bugs abort before the pipeline runs, like a graph-level
    // conversion crash aborts before the passes.
    if let Some(bug) = matched.iter().find(|b| b.symptom == Symptom::Crash) {
        return TestOutcome::CompileCrash {
            message: format!(
                "crash in tir pipeline: seeded bug {}: {}",
                bug.id, bug.description
            ),
        };
    }
    let manifest = compiler.manifest();
    let mut funcs = funcs.to_vec();
    if optimize {
        tir_simplify(&mut funcs, cov, manifest);
        tir_schedule(&mut funcs, cov, manifest);
    }
    codegen_coverage(&funcs, cov, manifest);
    let semantic: Vec<String> = matched
        .iter()
        .filter(|b| b.symptom == Symptom::Semantic)
        .map(|b| b.id.to_string())
        .collect();
    if !semantic.is_empty() {
        return TestOutcome::ResultMismatch {
            detail: "tir pipeline output disagrees with the interpreter".into(),
            // TIR bugs live in the optimizing pipeline by construction.
            site: FaultSite::Optimization,
            attributed: semantic,
        };
    }
    TestOutcome::Pass
}

fn localize(
    compiler: &Compiler,
    case: &TestCase,
    exported: &Graph<Op>,
    options: &CompileOptions,
    tol: Tolerance,
    cov: &mut nnsmith_compilers::CoverageSet,
) -> Option<FaultSite> {
    let o0 = CompileOptions {
        opt_level: OptLevel::O0,
        bugs: options.bugs.clone(),
    };
    let compiled = compiler.compile(exported, &case.weights, &o0, cov).ok()?;
    let outputs = compiled.run(&case.inputs).ok()?;
    let reference = nnsmith_ops::execute(&case.graph, &case.all_bindings()).ok()?;
    let ref_outputs: Vec<Tensor> = reference.outputs.iter().map(|(_, t)| t.clone()).collect();
    match compare_outputs(&ref_outputs, &outputs, tol) {
        Verdict::Match => Some(FaultSite::Optimization),
        _ => Some(FaultSite::Conversion),
    }
}

/// Extracts the seeded-bug id from a crash message, when present.
pub fn seeded_bug_id(message: &str) -> Option<String> {
    let marker = "seeded bug ";
    let start = message.find(marker)? + marker.len();
    let rest = &message[start..];
    let end = rest.find(':').unwrap_or(rest.len());
    Some(rest[..end].trim().to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnsmith_compilers::{ortsim, trtsim, tvmsim, BugConfig, CoverageSet};
    use nnsmith_graph::{TensorType, ValueRef};
    use nnsmith_ops::{BinaryKind, UnaryKind};
    use nnsmith_tensor::DType;

    fn clean_case() -> TestCase {
        let mut g: Graph<Op> = Graph::new();
        let x = g.add_node(
            NodeKind::Input,
            vec![],
            vec![TensorType::concrete(DType::F32, &[4])],
        );
        let w = g.add_node(
            NodeKind::Weight,
            vec![],
            vec![TensorType::concrete(DType::F32, &[4])],
        );
        let add = g.add_node(
            NodeKind::Operator(Op::Binary(BinaryKind::Add)),
            vec![ValueRef::output0(x), ValueRef::output0(w)],
            vec![TensorType::concrete(DType::F32, &[4])],
        );
        g.add_node(
            NodeKind::Operator(Op::Unary(UnaryKind::Tanh)),
            vec![ValueRef::output0(add)],
            vec![TensorType::concrete(DType::F32, &[4])],
        );
        let mut bindings = Bindings::new();
        bindings.insert(x, Tensor::from_f32(&[4], vec![0.1, 0.2, 0.3, 0.4]).unwrap());
        bindings.insert(w, Tensor::from_f32(&[4], vec![0.5, 0.5, 0.5, 0.5]).unwrap());
        TestCase::from_bindings(g, bindings)
    }

    #[test]
    fn clean_case_passes_all_compilers() {
        let case = clean_case();
        let mut cov = CoverageSet::new();
        for c in [tvmsim(), ortsim(), trtsim()] {
            let outcome = run_case(
                &c,
                &case,
                &CompileOptions::default(),
                Tolerance::default(),
                &mut cov,
            );
            assert!(matches!(outcome, TestOutcome::Pass), "{outcome:?}");
        }
    }

    #[test]
    fn seeded_crash_detected_and_identified() {
        // ArgMax to scalar crashes tvmsim's importer (tvm-conv-5).
        let mut g: Graph<Op> = Graph::new();
        let x = g.add_node(
            NodeKind::Input,
            vec![],
            vec![TensorType::concrete(DType::F32, &[4])],
        );
        g.add_node(
            NodeKind::Operator(Op::ArgExtreme {
                largest: true,
                axis: 0,
                keepdims: false,
            }),
            vec![ValueRef::output0(x)],
            vec![TensorType::concrete(DType::I64, &[])],
        );
        let mut bindings = Bindings::new();
        bindings.insert(x, Tensor::from_f32(&[4], vec![1., 5., 2., 4.]).unwrap());
        let case = TestCase::from_bindings(g, bindings);
        let mut cov = CoverageSet::new();
        let outcome = run_case(
            &tvmsim(),
            &case,
            &CompileOptions::default(),
            Tolerance::default(),
            &mut cov,
        );
        match outcome {
            TestOutcome::CompileCrash { message } => {
                assert_eq!(seeded_bug_id(&message).as_deref(), Some("tvm-conv-5"));
            }
            other => panic!("expected crash, got {other:?}"),
        }
    }

    #[test]
    fn semantic_bug_localized_to_optimizer() {
        // tvm-simpl-1: (x / c) * c for ints — honest pass bug, O0 is clean.
        let mut g: Graph<Op> = Graph::new();
        let x = g.add_node(
            NodeKind::Input,
            vec![],
            vec![TensorType::concrete(DType::I32, &[2])],
        );
        let c = g.add_node(
            NodeKind::Weight,
            vec![],
            vec![TensorType::concrete(DType::I32, &[])],
        );
        let div = g.add_node(
            NodeKind::Operator(Op::Binary(BinaryKind::Div)),
            vec![ValueRef::output0(x), ValueRef::output0(c)],
            vec![TensorType::concrete(DType::I32, &[2])],
        );
        g.add_node(
            NodeKind::Operator(Op::Binary(BinaryKind::Mul)),
            vec![ValueRef::output0(div), ValueRef::output0(c)],
            vec![TensorType::concrete(DType::I32, &[2])],
        );
        let mut bindings = Bindings::new();
        bindings.insert(x, Tensor::from_i32(&[2], vec![7, 9]).unwrap());
        bindings.insert(c, Tensor::scalar(DType::I32, 3.0));
        let case = TestCase::from_bindings(g, bindings);
        let mut cov = CoverageSet::new();
        let outcome = run_case(
            &tvmsim(),
            &case,
            &CompileOptions::default(),
            Tolerance::default(),
            &mut cov,
        );
        match outcome {
            TestOutcome::ResultMismatch {
                site, attributed, ..
            } => {
                assert_eq!(site, FaultSite::Optimization);
                assert!(attributed.contains(&"tvm-simpl-1".to_string()));
            }
            other => panic!("expected mismatch, got {other:?}"),
        }
        // With bugs off the same case passes.
        let outcome = run_case(
            &tvmsim(),
            &case,
            &CompileOptions {
                bugs: BugConfig::none(),
                ..CompileOptions::default()
            },
            Tolerance::default(),
            &mut cov,
        );
        assert!(matches!(outcome, TestOutcome::Pass), "{outcome:?}");
    }

    #[test]
    fn f64_case_not_implemented_on_trtsim() {
        let mut g: Graph<Op> = Graph::new();
        let x = g.add_node(
            NodeKind::Input,
            vec![],
            vec![TensorType::concrete(DType::F64, &[2])],
        );
        g.add_node(
            NodeKind::Operator(Op::Unary(UnaryKind::Tanh)),
            vec![ValueRef::output0(x)],
            vec![TensorType::concrete(DType::F64, &[2])],
        );
        let mut bindings = Bindings::new();
        bindings.insert(x, Tensor::from_f64(&[2], vec![0.5, -0.5]).unwrap());
        let case = TestCase::from_bindings(g, bindings);
        let mut cov = CoverageSet::new();
        let outcome = run_case(
            &trtsim(),
            &case,
            &CompileOptions::default(),
            Tolerance::default(),
            &mut cov,
        );
        assert!(matches!(outcome, TestOutcome::NotImplemented));
    }

    #[test]
    fn nan_case_skipped() {
        // Sqrt of a negative input → NaN in reference → NumericInvalid.
        let mut g: Graph<Op> = Graph::new();
        let x = g.add_node(
            NodeKind::Input,
            vec![],
            vec![TensorType::concrete(DType::F32, &[2])],
        );
        g.add_node(
            NodeKind::Operator(Op::Unary(UnaryKind::Sqrt)),
            vec![ValueRef::output0(x)],
            vec![TensorType::concrete(DType::F32, &[2])],
        );
        let mut bindings = Bindings::new();
        bindings.insert(x, Tensor::from_f32(&[2], vec![-1.0, 4.0]).unwrap());
        let case = TestCase::from_bindings(g, bindings);
        let mut cov = CoverageSet::new();
        let outcome = run_case(
            &ortsim(),
            &case,
            &CompileOptions::default(),
            Tolerance::default(),
            &mut cov,
        );
        assert!(matches!(outcome, TestOutcome::NumericInvalid));
    }

    #[test]
    fn ir_case_drives_tir_pipeline_and_fires_seeded_tir_bugs() {
        use nnsmith_compilers::{LExpr, LStmt};
        let clean = LoweredFunc {
            name: "clean".into(),
            body: vec![LStmt::For {
                var: 0,
                extent: 8,
                body: vec![LStmt::Store {
                    index: LExpr::Var(0),
                }],
                vectorized: false,
                unrolled: false,
            }],
        };
        let mut cov = CoverageSet::new();
        let case = TestCase::from_ir(vec![clean.clone()]);
        assert!(case.is_ir());
        let outcome = run_case(
            &tvmsim(),
            &case,
            &CompileOptions::default(),
            Tolerance::default(),
            &mut cov,
        );
        assert!(matches!(outcome, TestOutcome::Pass), "{outcome:?}");
        assert!(cov.len() > 400, "base + tir coverage, got {}", cov.len());

        // A variable divisor — IR graph lowering never emits — crashes.
        let crasher = LoweredFunc {
            name: "divvar".into(),
            body: vec![LStmt::Store {
                index: LExpr::Div(Box::new(LExpr::Var(0)), Box::new(LExpr::Var(1))),
            }],
        };
        let outcome = run_case(
            &tvmsim(),
            &TestCase::from_ir(vec![crasher]),
            &CompileOptions::default(),
            Tolerance::default(),
            &mut cov,
        );
        match outcome {
            TestOutcome::CompileCrash { message } => {
                assert_eq!(seeded_bug_id(&message).as_deref(), Some("tir-simpl-div"));
            }
            other => panic!("expected crash, got {other:?}"),
        }

        // A negative index constant is the seeded semantic TIR bug.
        let neg = LoweredFunc {
            name: "neg".into(),
            body: vec![LStmt::Store {
                index: LExpr::Add(Box::new(LExpr::Var(0)), Box::new(LExpr::Const(-3))),
            }],
        };
        let outcome = run_case(
            &tvmsim(),
            &TestCase::from_ir(vec![neg]),
            &CompileOptions::default(),
            Tolerance::default(),
            &mut cov,
        );
        match outcome {
            TestOutcome::ResultMismatch {
                site, attributed, ..
            } => {
                assert_eq!(site, FaultSite::Optimization);
                assert_eq!(attributed, vec!["tir-simpl-neg".to_string()]);
            }
            other => panic!("expected mismatch, got {other:?}"),
        }

        // Seeded TIR bugs live in the optimizing pipeline: at O0 the same
        // crasher runs clean, so O0-recompile localization stays
        // meaningful for IR findings too.
        let crasher_again = TestCase::from_ir(vec![LoweredFunc {
            name: "divvar".into(),
            body: vec![LStmt::Store {
                index: LExpr::Div(Box::new(LExpr::Var(0)), Box::new(LExpr::Var(1))),
            }],
        }]);
        let outcome = run_case(
            &tvmsim(),
            &crasher_again,
            &CompileOptions {
                opt_level: OptLevel::O0,
                ..CompileOptions::default()
            },
            Tolerance::default(),
            &mut cov,
        );
        assert!(matches!(outcome, TestOutcome::Pass), "{outcome:?}");

        // Compilers without a low-level pipeline skip IR cases.
        let outcome = run_case(
            &ortsim(),
            &TestCase::from_ir(vec![clean]),
            &CompileOptions::default(),
            Tolerance::default(),
            &mut cov,
        );
        assert!(matches!(outcome, TestOutcome::NotImplemented));
    }

    #[test]
    fn seeded_bug_id_parsing() {
        assert_eq!(
            seeded_bug_id("crash in frontend: seeded bug tvm-conv-5: importer crashes"),
            Some("tvm-conv-5".to_string())
        );
        assert_eq!(seeded_bug_id("segfault"), None);
    }
}
