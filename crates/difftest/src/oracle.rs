//! Output comparison against the reference backend.
//!
//! Floating-point kernels legitimately reorder operations, so outputs are
//! compared with a distance *scaled by their overall magnitude* (§5.4
//! "False alarms"): elementwise `|a − b| ≤ atol + rtol · max(|a|, |b|)`.
//! Integer and boolean outputs must match exactly. NaN/Inf anywhere means
//! the comparison is skipped (numeric-invalid executions are never used
//! for differential testing, §2.3).

use nnsmith_tensor::{DType, Tensor};

/// Verdict of comparing one test case's outputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Outputs agree within tolerance.
    Match,
    /// Output counts or shapes/dtypes differ.
    Structure(String),
    /// Values differ beyond tolerance.
    Mismatch(String),
    /// Reference or candidate contains NaN/Inf: not comparable.
    NumericInvalid,
}

impl Verdict {
    /// True for [`Verdict::Match`].
    pub fn is_match(&self) -> bool {
        *self == Verdict::Match
    }
}

/// Comparison tolerances. The paper uses a "high error tolerance" to
/// suppress float false alarms; these defaults mirror that.
#[derive(Debug, Clone, Copy)]
pub struct Tolerance {
    /// Relative tolerance.
    pub rtol: f64,
    /// Absolute tolerance.
    pub atol: f64,
}

impl Default for Tolerance {
    fn default() -> Self {
        Tolerance {
            rtol: 1e-2,
            atol: 1e-3,
        }
    }
}

/// Compares candidate outputs against reference outputs.
pub fn compare_outputs(reference: &[Tensor], candidate: &[Tensor], tol: Tolerance) -> Verdict {
    if reference.len() != candidate.len() {
        return Verdict::Structure(format!(
            "output count {} vs {}",
            candidate.len(),
            reference.len()
        ));
    }
    for (i, (r, c)) in reference.iter().zip(candidate).enumerate() {
        if r.has_non_finite() || c.has_non_finite() {
            return Verdict::NumericInvalid;
        }
        if r.shape() != c.shape() || r.dtype() != c.dtype() {
            return Verdict::Structure(format!(
                "output {i}: {}[{:?}] vs {}[{:?}]",
                c.dtype(),
                c.shape(),
                r.dtype(),
                r.shape()
            ));
        }
        match r.dtype() {
            DType::F32 | DType::F64 => {
                for k in 0..r.numel() {
                    let a = r.lin_f64(k);
                    let b = c.lin_f64(k);
                    let bound = tol.atol + tol.rtol * a.abs().max(b.abs());
                    if (a - b).abs() > bound {
                        return Verdict::Mismatch(format!(
                            "output {i} element {k}: {b} vs reference {a}"
                        ));
                    }
                }
            }
            DType::I32 | DType::I64 | DType::Bool => {
                for k in 0..r.numel() {
                    if r.lin_f64(k) != c.lin_f64(k) {
                        return Verdict::Mismatch(format!(
                            "output {i} element {k}: {} vs reference {} (exact dtype)",
                            c.lin_f64(k),
                            r.lin_f64(k)
                        ));
                    }
                }
            }
        }
    }
    Verdict::Match
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: Vec<f32>) -> Tensor {
        Tensor::from_f32(&[v.len()], v).unwrap()
    }

    #[test]
    fn identical_outputs_match() {
        let a = vec![t(vec![1.0, 2.0])];
        assert!(compare_outputs(&a, &a, Tolerance::default()).is_match());
    }

    #[test]
    fn small_fp_drift_tolerated() {
        let r = vec![t(vec![100.0])];
        let c = vec![t(vec![100.5])]; // 0.5% relative
        assert!(compare_outputs(&r, &c, Tolerance::default()).is_match());
    }

    #[test]
    fn large_drift_flagged() {
        let r = vec![t(vec![100.0])];
        let c = vec![t(vec![110.0])];
        assert!(matches!(
            compare_outputs(&r, &c, Tolerance::default()),
            Verdict::Mismatch(_)
        ));
    }

    #[test]
    fn int_outputs_exact() {
        let r = vec![Tensor::from_i32(&[2], vec![1, 2]).unwrap()];
        let c = vec![Tensor::from_i32(&[2], vec![1, 3]).unwrap()];
        assert!(matches!(
            compare_outputs(&r, &c, Tolerance::default()),
            Verdict::Mismatch(_)
        ));
    }

    #[test]
    fn shape_mismatch_is_structural() {
        let r = vec![t(vec![1.0, 2.0])];
        let c = vec![Tensor::from_f32(&[1], vec![1.0]).unwrap()];
        assert!(matches!(
            compare_outputs(&r, &c, Tolerance::default()),
            Verdict::Structure(_)
        ));
    }

    #[test]
    fn nan_means_not_comparable() {
        let r = vec![t(vec![f32::NAN])];
        let c = vec![t(vec![1.0])];
        assert_eq!(
            compare_outputs(&r, &c, Tolerance::default()),
            Verdict::NumericInvalid
        );
    }

    #[test]
    fn sigmoid_floor_style_false_alarm_needs_tolerance() {
        // §5.4: optimized sigmoid≈1.0 then floor gives 1 vs 0 — with the
        // scaled-distance comparison on the *floor* output this is a real
        // difference; the paper handles it with high tolerance. Verify the
        // tolerance knob behaves monotonically.
        let r = vec![t(vec![0.0])];
        let c = vec![t(vec![1.0])];
        assert!(matches!(
            compare_outputs(&r, &c, Tolerance::default()),
            Verdict::Mismatch(_)
        ));
        let lax = Tolerance {
            rtol: 0.0,
            atol: 2.0,
        };
        assert!(compare_outputs(&r, &c, lax).is_match());
    }
}
