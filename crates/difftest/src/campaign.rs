//! Fuzzing campaigns: run a test-case source against a backend set for a
//! budget, accumulating coverage timelines, found bugs and operator
//! instances — the data behind Figures 4–10 and Tables 3–5.
//!
//! A campaign fans every case out across its [`CampaignConfig::backends`]
//! (default: `[tvmsim]`, the single-backend behaviour every older caller
//! had): the reference phase runs once per case, each backend gets its
//! own verdict, and results are kept **per backend** (coverage sets are
//! never unioned across systems — branch ids only mean something within
//! one compiler's manifest) alongside the case-level rollups.

use std::collections::{BTreeMap, BTreeSet};
use std::time::{Duration, Instant};

use nnsmith_compilers::{tvmsim, BackendSet, CompileOptions, Compiler, CoverageSet};
use nnsmith_graph::NodeKind;
use nnsmith_obs::LoggedEvent;
use serde::{Deserialize, Serialize};

use crate::feedback::{CaseFeedback, FeedbackSummary};
use crate::harness::{run_case_matrix, seeded_bug_id, TestCase, TestOutcome};
use crate::oracle::Tolerance;

/// Produces test cases for a campaign (implemented by the NNSmith pipeline
/// and each baseline).
pub trait TestCaseSource {
    /// A short name for reports.
    fn name(&self) -> &str;
    /// Produces the next test case, or `None` when the source is
    /// exhausted.
    fn next_case(&mut self) -> Option<TestCase>;
    /// Receives per-case coverage feedback after the case has executed
    /// on every backend: the shard-local new-branch count per backend
    /// plus whether the case was a finding. The campaign always calls
    /// this (the novelty counts fall out of the cumulative merge for
    /// free); the default is a no-op so blind sources pay nothing and
    /// keep their exact RNG stream.
    fn observe(&mut self, feedback: &CaseFeedback) {
        let _ = feedback;
    }
    /// The source's accumulated feedback state, collected into
    /// [`CampaignResult::feedback`] at campaign end. `None` (the
    /// default) for sources that generate blind.
    fn feedback_summary(&self) -> Option<FeedbackSummary> {
        None
    }
}

/// Campaign budget and comparison settings.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Wall-clock budget.
    pub duration: Duration,
    /// Optional hard cap on test cases.
    pub max_cases: Option<usize>,
    /// Compile options (opt level, seeded bugs).
    pub options: CompileOptions,
    /// Output tolerances.
    pub tolerance: Tolerance,
    /// Timeline sampling interval.
    pub sample_every: Duration,
    /// Treat found seeded bugs as *fixed* (disabled) for the rest of the
    /// campaign — mirroring the paper's process where reported bugs were
    /// patched by maintainers, letting the fuzzer reach bugs that a
    /// still-crashing frontend would otherwise mask.
    pub fix_found_bugs: bool,
    /// Attach the failing [`TestCase`] and its [`TestOutcome`] to the
    /// observer's [`CaseRecord`] whenever a case is a finding, so a triage
    /// pipeline downstream can reduce and deduplicate it. Off by default:
    /// cloning every failing case costs memory that pure coverage
    /// campaigns don't need.
    pub capture_failures: bool,
    /// The backends every case is fanned out to, in set order (the first
    /// is the *primary* backend the top-level summary fields refer to).
    /// Defaults to `[tvmsim]`, so existing single-backend callers keep
    /// their exact campaign behaviour — same case stream, coverage, bug
    /// sets and determinism contract. (Serialized *schemas* did grow the
    /// backend dimension: results carry a `per_backend` block and triage
    /// bin/corpus keys are backend-qualified.) The explicit-compiler
    /// entry points ([`run_campaign`], [`crate::run_engine`]) override
    /// this field with their argument.
    pub backends: Vec<Compiler>,
    /// Emit the structured campaign event log: one [`LoggedEvent`] per
    /// case start/finish, per-backend verdict and bug sighting, attached
    /// to each [`CaseRecord`] (and folded into the engine report's
    /// canonical stream). Off by default — observability costs a few
    /// allocations per case that unobserved campaigns don't need; it has
    /// no effect without an observer.
    pub log_events: bool,
}

impl CampaignConfig {
    /// The configured backends as a deduplicated [`BackendSet`].
    pub fn backend_set(&self) -> BackendSet {
        BackendSet::new(self.backends.clone())
    }
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            duration: Duration::from_secs(10),
            max_cases: None,
            options: CompileOptions::default(),
            tolerance: Tolerance::default(),
            sample_every: Duration::from_millis(250),
            fix_found_bugs: true,
            capture_failures: false,
            backends: vec![tvmsim()],
            log_events: false,
        }
    }
}

/// One coverage-timeline sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimelinePoint {
    /// Milliseconds since campaign start.
    pub elapsed_ms: u64,
    /// Test cases executed so far.
    pub cases: usize,
    /// Total branches covered so far (summed across backends — identical
    /// to the single set's size for single-backend campaigns).
    pub total_branches: usize,
    /// Pass-file branches covered so far (summed across backends).
    pub pass_branches: usize,
}

/// One backend's accumulated share of a campaign: its own coverage set
/// and the findings it exhibited. The backend dimension of every
/// campaign/engine result.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct BackendResult {
    /// Cumulative branch coverage on this backend (ids are meaningful
    /// only within this backend's manifest).
    pub coverage: CoverageSet,
    /// Seeded bugs this backend exhibited (exporter bugs land on the
    /// backend whose differential run observed them).
    pub bugs_found: BTreeSet<String>,
    /// Distinct crash messages observed on this backend.
    pub unique_crashes: BTreeSet<String>,
    /// Result mismatches observed on this backend.
    pub mismatches: usize,
    /// Cases this backend answered `NotImplemented` to.
    pub not_implemented: usize,
}

/// Result of a campaign.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignResult {
    /// Source name.
    pub source: String,
    /// Primary-backend name (the first of `backends`; the compiler for
    /// single-backend campaigns).
    pub compiler: String,
    /// All backend names, in set order.
    pub backends: Vec<String>,
    /// Per-backend coverage and findings, keyed by backend name.
    pub per_backend: BTreeMap<String, BackendResult>,
    /// Coverage growth over time (totals summed across backends).
    pub timeline: Vec<TimelinePoint>,
    /// Final cumulative coverage of the **primary** backend (kept at top
    /// level for single-backend consumers; cross-backend consumers read
    /// `per_backend` — coverage sets are never unioned across systems).
    pub coverage: CoverageSet,
    /// Seeded bugs detected (by id), across all backends.
    pub bugs_found: BTreeSet<String>,
    /// Distinct crash messages observed across all backends
    /// (unique-crash counting, §5.4).
    pub unique_crashes: BTreeSet<String>,
    /// Result mismatches observed, summed across backends.
    pub mismatches: usize,
    /// Total cases executed.
    pub cases: usize,
    /// Cases skipped as numeric-invalid.
    pub numeric_invalid: usize,
    /// Distinct operator instances tested (Fig. 9's metric: operator kind
    /// plus input types plus attributes). A `BTreeSet` so iteration and
    /// serialization are deterministic — the feedback scheduler iterates
    /// it, and hash order would leak nondeterminism into anything downstream.
    pub op_instances: BTreeSet<String>,
    /// The source's feedback-loop state (corpus/schedule counters) when
    /// it runs coverage-guided; `None` for blind sources. Shard
    /// summaries fold in shard-index order at the engine merge.
    pub feedback: Option<FeedbackSummary>,
}

impl CampaignResult {
    /// Number of distinct branches covered on the primary backend.
    pub fn total_coverage(&self) -> usize {
        self.coverage.len()
    }

    /// Number of distinct pass-file branches covered on the primary
    /// backend.
    pub fn pass_coverage(&self, compiler: &Compiler) -> usize {
        self.coverage.pass_len(compiler.manifest())
    }

    /// One backend's share of the campaign, by name.
    pub fn backend(&self, name: &str) -> Option<&BackendResult> {
        self.per_backend.get(name)
    }

    fn empty(source: &str, backends: &BackendSet) -> CampaignResult {
        CampaignResult {
            source: source.to_string(),
            compiler: backends.primary().system().name().to_string(),
            backends: backends.names(),
            per_backend: backends
                .names()
                .into_iter()
                .map(|n| (n, BackendResult::default()))
                .collect(),
            timeline: Vec::new(),
            coverage: CoverageSet::new(),
            bugs_found: BTreeSet::new(),
            unique_crashes: BTreeSet::new(),
            mismatches: 0,
            cases: 0,
            numeric_invalid: 0,
            op_instances: BTreeSet::new(),
            feedback: None,
        }
    }

    /// Sums of per-backend (total, pass) coverage sizes — the timeline
    /// totals (shared with the engine's shard merge).
    pub(crate) fn coverage_totals(&self, backends: &BackendSet) -> (usize, usize) {
        let mut total = 0;
        let mut pass = 0;
        for compiler in backends.iter() {
            if let Some(b) = self.per_backend.get(compiler.system().name()) {
                total += b.coverage.len();
                pass += b.coverage.pass_len(compiler.manifest());
            }
        }
        (total, pass)
    }
}

/// The Fig. 9 "operator instance" key: operator kind, concrete input
/// types, and attribute values.
pub fn op_instance_keys(case: &TestCase) -> Vec<String> {
    let mut keys = Vec::new();
    for (id, node) in case.graph.iter() {
        let NodeKind::Operator(op) = &node.kind else {
            continue;
        };
        let mut key = String::new();
        key.push_str(op.name());
        key.push('(');
        for (i, v) in node.inputs.iter().enumerate() {
            if i > 0 {
                key.push(',');
            }
            key.push_str(&format!("{}", case.graph.value_type(*v)));
        }
        key.push(')');
        for (name, attr) in op.attr_exprs() {
            key.push_str(&format!("|{name}={attr}"));
        }
        let _ = id;
        keys.push(key);
    }
    keys
}

/// A failing execution captured for downstream triage.
#[derive(Debug, Clone)]
pub struct CapturedFailure {
    /// The backend that exhibited the outcome (backend-independent
    /// findings — exporter crashes — are attributed to the primary
    /// backend, which reproduces them on replay since the exporter runs
    /// before any compiler). Triage reduces and replays the case against
    /// this backend, and bins carry it as their backend dimension.
    pub backend: String,
    /// The failing test case (graph, weights, inputs).
    pub case: TestCase,
    /// The finding outcome it produced.
    pub outcome: TestOutcome,
}

/// Per-case progress record handed to a campaign observer (the engine's
/// aggregation channel feeds on these).
#[derive(Debug, Clone)]
pub struct CaseRecord {
    /// 1-based index of the case within this campaign.
    pub case_index: usize,
    /// Branches this case covered that the campaign had not seen before,
    /// per backend (keyed by backend name).
    pub new_coverage: BTreeMap<String, CoverageSet>,
    /// The failures this case produced — one per backend that found
    /// something — when [`CampaignConfig::capture_failures`] is on.
    pub failures: Vec<CapturedFailure>,
    /// The case's structured events (shard 0 until the engine stamps the
    /// real shard), when [`CampaignConfig::log_events`] is on.
    pub events: Vec<LoggedEvent>,
}

/// Runs one fuzzing campaign against a single compiler (overriding
/// [`CampaignConfig::backends`] with `compiler`).
pub fn run_campaign(
    compiler: &Compiler,
    source: &mut dyn TestCaseSource,
    config: &CampaignConfig,
) -> CampaignResult {
    let backends = BackendSet::single(compiler.clone());
    run_campaign_inner(&backends, source, config, None)
}

/// Runs one fuzzing campaign against the configured backend set: every
/// case's reference phase executes once and is compared on each backend.
pub fn run_matrix_campaign(
    source: &mut dyn TestCaseSource,
    config: &CampaignConfig,
) -> CampaignResult {
    run_campaign_inner(&config.backend_set(), source, config, None)
}

/// [`run_campaign`] with a per-case observer: `observer` is called after
/// every executed case with the campaign-relative coverage delta. The
/// observer does not influence the campaign — results are identical to an
/// unobserved run.
pub fn run_campaign_observed(
    compiler: &Compiler,
    source: &mut dyn TestCaseSource,
    config: &CampaignConfig,
    observer: &mut dyn FnMut(CaseRecord),
) -> CampaignResult {
    let backends = BackendSet::single(compiler.clone());
    run_campaign_inner(&backends, source, config, Some(observer))
}

pub(crate) fn run_campaign_inner(
    backends: &BackendSet,
    source: &mut dyn TestCaseSource,
    config: &CampaignConfig,
    mut observer: Option<&mut dyn FnMut(CaseRecord)>,
) -> CampaignResult {
    let start = Instant::now();
    let primary = backends.primary().system().name();
    let mut result = CampaignResult::empty(source.name(), backends);
    let mut last_sample = Duration::ZERO;
    let mut options = config.options.clone();
    let fix = |options: &mut CompileOptions, id: &str| {
        // Canonical lookup spans the graph-level and TIR-level registries,
        // so fix-on-find works for IR campaigns too.
        if let Some(id) = nnsmith_compilers::canonical_bug_id(id) {
            options.bugs.disable(id);
        }
    };
    let sample = |result: &mut CampaignResult, backends: &BackendSet, elapsed: Duration| {
        let (total_branches, pass_branches) = result.coverage_totals(backends);
        result.timeline.push(TimelinePoint {
            elapsed_ms: elapsed.as_millis() as u64,
            cases: result.cases,
            total_branches,
            pass_branches,
        });
    };
    sample(&mut result, backends, Duration::ZERO);

    while start.elapsed() < config.duration {
        if config.max_cases.is_some_and(|m| result.cases >= m) {
            break;
        }
        let next = {
            let _span = nnsmith_obs::span(nnsmith_obs::phase::GEN);
            source.next_case()
        };
        let Some(case) = next else {
            break;
        };
        result.cases += 1;
        for key in op_instance_keys(&case) {
            result.op_instances.insert(key);
        }
        let matrix = run_case_matrix(backends, &case, &options, config.tolerance);

        // Fold each backend's coverage into its cumulative set, counting
        // the new branches as we go — the shard-local novelty signal the
        // feedback loop consumes. With an observer, the delta *sets* are
        // materialized too (the union is identical either way).
        let mut new_coverage: BTreeMap<String, CoverageSet> = BTreeMap::new();
        let mut new_counts: BTreeMap<String, usize> = BTreeMap::new();
        let mut failures: Vec<CapturedFailure> = Vec::new();
        for verdict in &matrix.verdicts {
            let name = verdict.system.name();
            let entry = result
                .per_backend
                .get_mut(name)
                .expect("verdict from a backend outside the set");
            if observer.is_some() {
                let delta = verdict.coverage.difference(&entry.coverage);
                new_counts.insert(name.to_string(), delta.len());
                new_coverage.insert(name.to_string(), delta);
                entry.coverage.merge(&verdict.coverage);
            } else {
                let novel = entry.coverage.merge_counting(&verdict.coverage);
                new_counts.insert(name.to_string(), novel);
            }
        }

        // Case-level and per-backend outcome accounting.
        if let Some(pre) = &matrix.pre {
            match pre {
                TestOutcome::NumericInvalid | TestOutcome::InvalidCase { .. } => {
                    result.numeric_invalid += 1;
                }
                TestOutcome::ExportCrash { message } => {
                    // The exporter runs before any compiler, so its
                    // crashes are part of every backend's differential
                    // surface: attribute them to every entry (which is
                    // what makes the shared core of a cross-backend bug
                    // venn the exporter surface, independent of set
                    // order). Triage still keeps one bin — the captured
                    // failure below goes to the primary backend only.
                    let id = seeded_bug_id(message);
                    if let Some(id) = &id {
                        if config.fix_found_bugs {
                            fix(&mut options, id);
                        }
                        result.bugs_found.insert(id.clone());
                    }
                    let key = normalize_crash(message);
                    result.unique_crashes.insert(key.clone());
                    for entry in result.per_backend.values_mut() {
                        if let Some(id) = &id {
                            entry.bugs_found.insert(id.clone());
                        }
                        entry.unique_crashes.insert(key.clone());
                    }
                }
                other => unreachable!("pre-phase outcome {other:?}"),
            }
            if config.capture_failures && pre.is_finding() {
                failures.push(CapturedFailure {
                    backend: primary.to_string(),
                    case: case.clone(),
                    outcome: pre.clone(),
                });
            }
        } else {
            let mut case_invalid = false;
            for verdict in &matrix.verdicts {
                let name = verdict.system.name();
                let entry = result.per_backend.get_mut(name).expect("backend entry");
                match &verdict.outcome {
                    TestOutcome::Pass | TestOutcome::ExportCrash { .. } => {}
                    TestOutcome::NotImplemented => entry.not_implemented += 1,
                    TestOutcome::NumericInvalid | TestOutcome::InvalidCase { .. } => {
                        case_invalid = true;
                    }
                    TestOutcome::CompileCrash { message }
                    | TestOutcome::RuntimeError { message } => {
                        if let Some(id) = seeded_bug_id(message) {
                            if config.fix_found_bugs {
                                fix(&mut options, &id);
                            }
                            result.bugs_found.insert(id.clone());
                            entry.bugs_found.insert(id);
                        }
                        let key = normalize_crash(message);
                        result.unique_crashes.insert(key.clone());
                        entry.unique_crashes.insert(key);
                    }
                    TestOutcome::ResultMismatch { attributed, .. } => {
                        result.mismatches += 1;
                        entry.mismatches += 1;
                        for id in attributed {
                            if config.fix_found_bugs {
                                fix(&mut options, id);
                            }
                            result.bugs_found.insert(id.clone());
                            entry.bugs_found.insert(id.clone());
                        }
                    }
                }
                if config.capture_failures && verdict.outcome.is_finding() {
                    failures.push(CapturedFailure {
                        backend: name.to_string(),
                        case: case.clone(),
                        outcome: verdict.outcome.clone(),
                    });
                }
            }
            if case_invalid {
                result.numeric_invalid += 1;
            }
        }

        // Structured event log: derived purely from the matrix outcome
        // (verdicts are in backend-set order), so the per-case stream is
        // deterministic; the engine stamps the real shard index.
        let mut events: Vec<LoggedEvent> = Vec::new();
        if config.log_events && observer.is_some() {
            let ci = result.cases as u64;
            let mut seq = 0u64;
            let mut push = |kind: &str, backend: &str, detail: String| {
                events.push(LoggedEvent::new(0, ci, seq, kind, backend, detail));
                seq += 1;
            };
            push("case_started", "", String::new());
            if let Some(pre) = &matrix.pre {
                push("verdict", "", pre.kind().to_string());
                if let TestOutcome::ExportCrash { message } = pre {
                    if let Some(id) = seeded_bug_id(message) {
                        push("bug", "", id);
                    }
                }
            }
            for verdict in &matrix.verdicts {
                let name = verdict.system.name();
                push("verdict", name, verdict.outcome.kind().to_string());
                match &verdict.outcome {
                    TestOutcome::CompileCrash { message }
                    | TestOutcome::RuntimeError { message } => {
                        if let Some(id) = seeded_bug_id(message) {
                            push("bug", name, id);
                        }
                    }
                    TestOutcome::ResultMismatch { attributed, .. } => {
                        for id in attributed {
                            push("bug", name, id.clone());
                        }
                    }
                    _ => {}
                }
            }
            let findings = usize::from(matrix.pre.as_ref().is_some_and(TestOutcome::is_finding))
                + matrix
                    .verdicts
                    .iter()
                    .filter(|v| v.outcome.is_finding())
                    .count();
            push("case_finished", "", format!("findings={findings}"));
        }

        // Close the loop: hand the source its shard-local feedback. The
        // default impl is a no-op; guided sources retain/account/schedule
        // off it. Deterministic by construction — counts derive from the
        // shard's own case stream, never from other shards or the clock.
        let finding = matrix.pre.as_ref().is_some_and(TestOutcome::is_finding)
            || matrix.verdicts.iter().any(|v| v.outcome.is_finding());
        source.observe(&CaseFeedback {
            case_index: result.cases,
            new_branches: new_counts,
            finding,
        });

        if let Some(observer) = observer.as_deref_mut() {
            observer(CaseRecord {
                case_index: result.cases,
                new_coverage,
                failures,
                events,
            });
        }
        let elapsed = start.elapsed();
        if elapsed - last_sample >= config.sample_every {
            last_sample = elapsed;
            sample(&mut result, backends, elapsed);
        }
    }
    sample(&mut result, backends, start.elapsed());
    result.coverage = result.per_backend[primary].coverage.clone();
    result.feedback = source.feedback_summary();
    result
}

/// Normalizes a crash message into a dedup key (drops per-case details).
fn normalize_crash(message: &str) -> String {
    // Seeded crashes dedup by bug id; everything else by the first line.
    if let Some(id) = seeded_bug_id(message) {
        return format!("seeded:{id}");
    }
    message.lines().next().unwrap_or(message).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnsmith_compilers::ortsim;
    use nnsmith_graph::{Graph, NodeId, TensorType, ValueRef};
    use nnsmith_ops::{Bindings, Op, UnaryKind};
    use nnsmith_tensor::{DType, Tensor};

    struct FixedSource {
        cases: Vec<TestCase>,
    }

    impl TestCaseSource for FixedSource {
        fn name(&self) -> &str {
            "fixed"
        }
        fn next_case(&mut self) -> Option<TestCase> {
            self.cases.pop()
        }
    }

    fn tanh_case(v: f32) -> TestCase {
        let mut g: Graph<Op> = Graph::new();
        let x = g.add_node(
            NodeKind::Input,
            vec![],
            vec![TensorType::concrete(DType::F32, &[2])],
        );
        g.add_node(
            NodeKind::Operator(Op::Unary(UnaryKind::Tanh)),
            vec![ValueRef::output0(x)],
            vec![TensorType::concrete(DType::F32, &[2])],
        );
        let mut b = Bindings::new();
        b.insert(NodeId(0), Tensor::from_f32(&[2], vec![v, -v]).unwrap());
        TestCase::from_bindings(g, b)
    }

    #[test]
    fn campaign_runs_and_samples() {
        let mut source = FixedSource {
            cases: vec![tanh_case(0.5), tanh_case(1.0), tanh_case(2.0)],
        };
        let compiler = ortsim();
        let result = run_campaign(
            &compiler,
            &mut source,
            &CampaignConfig {
                duration: Duration::from_secs(5),
                ..CampaignConfig::default()
            },
        );
        assert_eq!(result.cases, 3);
        assert!(result.total_coverage() > 0);
        assert!(result.timeline.len() >= 2);
        assert!(result.bugs_found.is_empty());
        // Identical op instances deduplicate.
        assert_eq!(result.op_instances.len(), 1);
    }

    #[test]
    fn max_cases_respected() {
        let mut source = FixedSource {
            cases: (0..10).map(|i| tanh_case(i as f32 * 0.1)).collect(),
        };
        let compiler = ortsim();
        let result = run_campaign(
            &compiler,
            &mut source,
            &CampaignConfig {
                duration: Duration::from_secs(30),
                max_cases: Some(4),
                ..CampaignConfig::default()
            },
        );
        assert_eq!(result.cases, 4);
    }

    #[test]
    fn instance_keys_distinguish_attrs_and_types() {
        let a = tanh_case(1.0);
        let keys_a = op_instance_keys(&a);
        // Different input type → different key.
        let mut g: Graph<Op> = Graph::new();
        let x = g.add_node(
            NodeKind::Input,
            vec![],
            vec![TensorType::concrete(DType::F32, &[3])],
        );
        g.add_node(
            NodeKind::Operator(Op::Unary(UnaryKind::Tanh)),
            vec![ValueRef::output0(x)],
            vec![TensorType::concrete(DType::F32, &[3])],
        );
        let b = TestCase::from_bindings(g, Bindings::new());
        let keys_b = op_instance_keys(&b);
        assert_ne!(keys_a, keys_b);
    }
}
