//! Fuzzing campaigns: run a test-case source against a compiler for a
//! budget, accumulating coverage timelines, found bugs and operator
//! instances — the data behind Figures 4–10 and Table 3.

use std::collections::{BTreeSet, HashSet};
use std::time::{Duration, Instant};

use nnsmith_compilers::{CompileOptions, Compiler, CoverageSet};
use nnsmith_graph::NodeKind;
use serde::Serialize;

use crate::harness::{run_case, seeded_bug_id, TestCase, TestOutcome};
use crate::oracle::Tolerance;

/// Produces test cases for a campaign (implemented by the NNSmith pipeline
/// and each baseline).
pub trait TestCaseSource {
    /// A short name for reports.
    fn name(&self) -> &str;
    /// Produces the next test case, or `None` when the source is
    /// exhausted.
    fn next_case(&mut self) -> Option<TestCase>;
}

/// Campaign budget and comparison settings.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Wall-clock budget.
    pub duration: Duration,
    /// Optional hard cap on test cases.
    pub max_cases: Option<usize>,
    /// Compile options (opt level, seeded bugs).
    pub options: CompileOptions,
    /// Output tolerances.
    pub tolerance: Tolerance,
    /// Timeline sampling interval.
    pub sample_every: Duration,
    /// Treat found seeded bugs as *fixed* (disabled) for the rest of the
    /// campaign — mirroring the paper's process where reported bugs were
    /// patched by maintainers, letting the fuzzer reach bugs that a
    /// still-crashing frontend would otherwise mask.
    pub fix_found_bugs: bool,
    /// Attach the failing [`TestCase`] and its [`TestOutcome`] to the
    /// observer's [`CaseRecord`] whenever a case is a finding, so a triage
    /// pipeline downstream can reduce and deduplicate it. Off by default:
    /// cloning every failing case costs memory that pure coverage
    /// campaigns don't need.
    pub capture_failures: bool,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            duration: Duration::from_secs(10),
            max_cases: None,
            options: CompileOptions::default(),
            tolerance: Tolerance::default(),
            sample_every: Duration::from_millis(250),
            fix_found_bugs: true,
            capture_failures: false,
        }
    }
}

/// One coverage-timeline sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct TimelinePoint {
    /// Milliseconds since campaign start.
    pub elapsed_ms: u64,
    /// Test cases executed so far.
    pub cases: usize,
    /// Total branches covered so far.
    pub total_branches: usize,
    /// Pass-file branches covered so far.
    pub pass_branches: usize,
}

/// Result of a campaign.
#[derive(Debug, Clone, Serialize)]
pub struct CampaignResult {
    /// Source name.
    pub source: String,
    /// Compiler name.
    pub compiler: String,
    /// Coverage growth over time.
    pub timeline: Vec<TimelinePoint>,
    /// Final cumulative coverage.
    pub coverage: CoverageSet,
    /// Seeded bugs detected (by id).
    pub bugs_found: BTreeSet<String>,
    /// Distinct crash messages observed (unique-crash counting, §5.4).
    pub unique_crashes: BTreeSet<String>,
    /// Result mismatches observed.
    pub mismatches: usize,
    /// Total cases executed.
    pub cases: usize,
    /// Cases skipped as numeric-invalid.
    pub numeric_invalid: usize,
    /// Distinct operator instances tested (Fig. 9's metric: operator kind
    /// plus input types plus attributes).
    pub op_instances: HashSet<String>,
}

impl CampaignResult {
    /// Number of distinct branches covered.
    pub fn total_coverage(&self) -> usize {
        self.coverage.len()
    }

    /// Number of distinct pass-file branches covered.
    pub fn pass_coverage(&self, compiler: &Compiler) -> usize {
        self.coverage.pass_len(compiler.manifest())
    }
}

/// The Fig. 9 "operator instance" key: operator kind, concrete input
/// types, and attribute values.
pub fn op_instance_keys(case: &TestCase) -> Vec<String> {
    let mut keys = Vec::new();
    for (id, node) in case.graph.iter() {
        let NodeKind::Operator(op) = &node.kind else {
            continue;
        };
        let mut key = String::new();
        key.push_str(op.name());
        key.push('(');
        for (i, v) in node.inputs.iter().enumerate() {
            if i > 0 {
                key.push(',');
            }
            key.push_str(&format!("{}", case.graph.value_type(*v)));
        }
        key.push(')');
        for (name, attr) in op.attr_exprs() {
            key.push_str(&format!("|{name}={attr}"));
        }
        let _ = id;
        keys.push(key);
    }
    keys
}

/// A failing execution captured for downstream triage.
#[derive(Debug, Clone)]
pub struct CapturedFailure {
    /// The failing test case (graph, weights, inputs).
    pub case: TestCase,
    /// The finding outcome it produced.
    pub outcome: TestOutcome,
}

/// Per-case progress record handed to a campaign observer (the engine's
/// aggregation channel feeds on these).
#[derive(Debug, Clone)]
pub struct CaseRecord {
    /// 1-based index of the case within this campaign.
    pub case_index: usize,
    /// Branches this case covered that the campaign had not seen before.
    pub new_coverage: CoverageSet,
    /// The failing case, when this case was a finding and
    /// [`CampaignConfig::capture_failures`] is on.
    pub failure: Option<Box<CapturedFailure>>,
}

/// Runs one fuzzing campaign.
pub fn run_campaign(
    compiler: &Compiler,
    source: &mut dyn TestCaseSource,
    config: &CampaignConfig,
) -> CampaignResult {
    run_campaign_inner(compiler, source, config, None)
}

/// [`run_campaign`] with a per-case observer: `observer` is called after
/// every executed case with the campaign-relative coverage delta. The
/// observer does not influence the campaign — results are identical to an
/// unobserved run.
pub fn run_campaign_observed(
    compiler: &Compiler,
    source: &mut dyn TestCaseSource,
    config: &CampaignConfig,
    observer: &mut dyn FnMut(CaseRecord),
) -> CampaignResult {
    run_campaign_inner(compiler, source, config, Some(observer))
}

fn run_campaign_inner(
    compiler: &Compiler,
    source: &mut dyn TestCaseSource,
    config: &CampaignConfig,
    mut observer: Option<&mut dyn FnMut(CaseRecord)>,
) -> CampaignResult {
    let start = Instant::now();
    let mut result = CampaignResult {
        source: source.name().to_string(),
        compiler: compiler.system().name().to_string(),
        timeline: Vec::new(),
        coverage: CoverageSet::new(),
        bugs_found: BTreeSet::new(),
        unique_crashes: BTreeSet::new(),
        mismatches: 0,
        cases: 0,
        numeric_invalid: 0,
        op_instances: HashSet::new(),
    };
    let mut last_sample = Duration::ZERO;
    let mut options = config.options.clone();
    let fix = |options: &mut CompileOptions, id: &str| {
        // Canonical lookup spans the graph-level and TIR-level registries,
        // so fix-on-find works for IR campaigns too.
        if let Some(id) = nnsmith_compilers::canonical_bug_id(id) {
            options.bugs.disable(id);
        }
    };
    let sample = |result: &mut CampaignResult, elapsed: Duration| {
        result.timeline.push(TimelinePoint {
            elapsed_ms: elapsed.as_millis() as u64,
            cases: result.cases,
            total_branches: result.coverage.len(),
            pass_branches: result.coverage.pass_len(compiler.manifest()),
        });
    };
    sample(&mut result, Duration::ZERO);

    while start.elapsed() < config.duration {
        if config.max_cases.is_some_and(|m| result.cases >= m) {
            break;
        }
        let Some(case) = source.next_case() else {
            break;
        };
        result.cases += 1;
        for key in op_instance_keys(&case) {
            result.op_instances.insert(key);
        }
        // With an observer, collect this case's hits separately so it can
        // see the campaign-relative delta (the union is identical to
        // inserting into the cumulative set directly); without one, skip
        // the per-case set and the difference entirely.
        let outcome = match observer.as_deref_mut() {
            Some(observer) => {
                let mut case_cov = CoverageSet::new();
                let outcome = run_case(compiler, &case, &options, config.tolerance, &mut case_cov);
                let new_coverage = case_cov.difference(&result.coverage);
                result.coverage.merge(&case_cov);
                let failure = (config.capture_failures && outcome.is_finding()).then(|| {
                    Box::new(CapturedFailure {
                        case: case.clone(),
                        outcome: outcome.clone(),
                    })
                });
                observer(CaseRecord {
                    case_index: result.cases,
                    new_coverage,
                    failure,
                });
                outcome
            }
            None => run_case(
                compiler,
                &case,
                &options,
                config.tolerance,
                &mut result.coverage,
            ),
        };
        match outcome {
            TestOutcome::Pass | TestOutcome::NotImplemented => {}
            TestOutcome::NumericInvalid | TestOutcome::InvalidCase { .. } => {
                result.numeric_invalid += 1;
            }
            TestOutcome::ExportCrash { message }
            | TestOutcome::CompileCrash { message }
            | TestOutcome::RuntimeError { message } => {
                if let Some(id) = seeded_bug_id(&message) {
                    if config.fix_found_bugs {
                        fix(&mut options, &id);
                    }
                    result.bugs_found.insert(id);
                }
                result.unique_crashes.insert(normalize_crash(&message));
            }
            TestOutcome::ResultMismatch { attributed, .. } => {
                result.mismatches += 1;
                for id in attributed {
                    if config.fix_found_bugs {
                        fix(&mut options, &id);
                    }
                    result.bugs_found.insert(id);
                }
            }
        }
        let elapsed = start.elapsed();
        if elapsed - last_sample >= config.sample_every {
            last_sample = elapsed;
            sample(&mut result, elapsed);
        }
    }
    sample(&mut result, start.elapsed());
    result
}

/// Normalizes a crash message into a dedup key (drops per-case details).
fn normalize_crash(message: &str) -> String {
    // Seeded crashes dedup by bug id; everything else by the first line.
    if let Some(id) = seeded_bug_id(message) {
        return format!("seeded:{id}");
    }
    message.lines().next().unwrap_or(message).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnsmith_compilers::ortsim;
    use nnsmith_graph::{Graph, NodeId, TensorType, ValueRef};
    use nnsmith_ops::{Bindings, Op, UnaryKind};
    use nnsmith_tensor::{DType, Tensor};

    struct FixedSource {
        cases: Vec<TestCase>,
    }

    impl TestCaseSource for FixedSource {
        fn name(&self) -> &str {
            "fixed"
        }
        fn next_case(&mut self) -> Option<TestCase> {
            self.cases.pop()
        }
    }

    fn tanh_case(v: f32) -> TestCase {
        let mut g: Graph<Op> = Graph::new();
        let x = g.add_node(
            NodeKind::Input,
            vec![],
            vec![TensorType::concrete(DType::F32, &[2])],
        );
        g.add_node(
            NodeKind::Operator(Op::Unary(UnaryKind::Tanh)),
            vec![ValueRef::output0(x)],
            vec![TensorType::concrete(DType::F32, &[2])],
        );
        let mut b = Bindings::new();
        b.insert(NodeId(0), Tensor::from_f32(&[2], vec![v, -v]).unwrap());
        TestCase::from_bindings(g, b)
    }

    #[test]
    fn campaign_runs_and_samples() {
        let mut source = FixedSource {
            cases: vec![tanh_case(0.5), tanh_case(1.0), tanh_case(2.0)],
        };
        let compiler = ortsim();
        let result = run_campaign(
            &compiler,
            &mut source,
            &CampaignConfig {
                duration: Duration::from_secs(5),
                ..CampaignConfig::default()
            },
        );
        assert_eq!(result.cases, 3);
        assert!(result.total_coverage() > 0);
        assert!(result.timeline.len() >= 2);
        assert!(result.bugs_found.is_empty());
        // Identical op instances deduplicate.
        assert_eq!(result.op_instances.len(), 1);
    }

    #[test]
    fn max_cases_respected() {
        let mut source = FixedSource {
            cases: (0..10).map(|i| tanh_case(i as f32 * 0.1)).collect(),
        };
        let compiler = ortsim();
        let result = run_campaign(
            &compiler,
            &mut source,
            &CampaignConfig {
                duration: Duration::from_secs(30),
                max_cases: Some(4),
                ..CampaignConfig::default()
            },
        );
        assert_eq!(result.cases, 4);
    }

    #[test]
    fn instance_keys_distinguish_attrs_and_types() {
        let a = tanh_case(1.0);
        let keys_a = op_instance_keys(&a);
        // Different input type → different key.
        let mut g: Graph<Op> = Graph::new();
        let x = g.add_node(
            NodeKind::Input,
            vec![],
            vec![TensorType::concrete(DType::F32, &[3])],
        );
        g.add_node(
            NodeKind::Operator(Op::Unary(UnaryKind::Tanh)),
            vec![ValueRef::output0(x)],
            vec![TensorType::concrete(DType::F32, &[3])],
        );
        let b = TestCase::from_bindings(g, Bindings::new());
        let keys_b = op_instance_keys(&b);
        assert_ne!(keys_a, keys_b);
    }
}
