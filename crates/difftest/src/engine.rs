//! The parallel fuzzing engine: shard a campaign across worker threads.
//!
//! [`run_campaign`](crate::run_campaign) is single-threaded, so coverage
//! per wall-clock second is bounded by one core. This module splits a
//! campaign into a fixed number of **shards** — each an independent
//! campaign with its own [`TestCaseSource`] built by a [`SourceFactory`]
//! from a per-shard RNG stream — and runs them on N worker threads that
//! pull shards from a shared queue. Per-shard results stream through an
//! mpsc aggregator (which maintains the real-time union-coverage
//! timeline) and are merged into one [`CampaignResult`].
//!
//! ## Determinism
//!
//! The shard count — not the worker count — defines the work. Shard `i`'s
//! source is seeded by `shard_seed(seed, i)` and its case budget is a
//! fixed slice of the campaign budget, so every shard produces the same
//! cases whether the engine runs on 1 thread or 16. The merge folds
//! shards in index order. Consequently, for a case-budgeted engine run
//! (`max_cases` set, generous `duration`, and a source whose own budgets
//! are deterministic — e.g. `SearchConfig::max_iters` instead of a
//! wall-clock search budget), the merged [`CampaignResult`] is
//! **bit-reproducible across runs and across worker counts**. Under a
//! wall-clock budget the cutoff is inherently timing-dependent, and only
//! same-configuration statistical behaviour is preserved.
//!
//! The merged result's timeline is a *logical* timeline (one point per
//! shard, folded in index order, with `elapsed_ms` carrying the logical
//! case clock); the real-time coverage curve lives in
//! [`EngineReport::wall_timeline`], built by the aggregator from event
//! arrival order, which is *not* deterministic.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use nnsmith_compilers::{BackendSet, Compiler, CoverageSet};
use nnsmith_obs::{DeterministicView, LoggedEvent, Profile, ShardedProfile};
use nnsmith_solver::{InternPool, PoolStats};
use serde::Serialize;

use crate::campaign::{
    run_campaign_inner, BackendResult, CampaignConfig, CampaignResult, CaseRecord, TestCaseSource,
    TimelinePoint,
};

/// Identity of one shard of an engine run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardCtx {
    /// Shard index, `0..count`.
    pub index: usize,
    /// Total shard count of this engine run.
    pub count: usize,
    /// The shard's RNG seed, derived deterministically from the campaign
    /// seed and the shard index (see [`shard_seed`]).
    pub seed: u64,
}

/// Builds a fresh [`TestCaseSource`] per shard. Implemented by the
/// NNSmith pipeline and the baseline fuzzers so the same engine drives
/// every comparison.
pub trait SourceFactory: Sync {
    /// A short name for reports (becomes [`CampaignResult::source`]).
    fn name(&self) -> &str;

    /// Creates the source for one shard. Implementations must derive all
    /// randomness from `shard.seed` so that shard streams are independent
    /// of worker scheduling.
    fn make_source(&self, shard: ShardCtx) -> Box<dyn TestCaseSource + Send>;

    /// Creates the source for one shard of a campaign whose interned
    /// expressions should live in `pool` — the engine's per-campaign
    /// arena, dropped (and its memory reclaimed) when the run ends.
    ///
    /// The default ignores the pool and delegates to
    /// [`SourceFactory::make_source`]; sources that intern (the NNSmith
    /// pipeline's solver and tensor types) override this so all shards
    /// share the campaign arena. Sharing the pool must never change the
    /// case stream — ids are order-insensitive, so workers=1 ≡ workers=N
    /// still holds.
    fn make_source_in(&self, pool: &InternPool, shard: ShardCtx) -> Box<dyn TestCaseSource + Send> {
        let _ = pool;
        self.make_source(shard)
    }
}

/// A [`SourceFactory`] built from a name and a closure.
pub struct FnSourceFactory<F> {
    name: String,
    make: F,
}

impl<F> FnSourceFactory<F>
where
    F: Fn(ShardCtx) -> Box<dyn TestCaseSource + Send> + Sync,
{
    /// Wraps `make` as a factory named `name`.
    pub fn new(name: impl Into<String>, make: F) -> Self {
        FnSourceFactory {
            name: name.into(),
            make,
        }
    }
}

impl<F> SourceFactory for FnSourceFactory<F>
where
    F: Fn(ShardCtx) -> Box<dyn TestCaseSource + Send> + Sync,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn make_source(&self, shard: ShardCtx) -> Box<dyn TestCaseSource + Send> {
        (self.make)(shard)
    }
}

/// Derives the RNG seed for shard `index` of a campaign seeded with
/// `campaign_seed` (SplitMix64 over the pair, so shard streams are
/// decorrelated even for adjacent seeds).
pub fn shard_seed(campaign_seed: u64, index: usize) -> u64 {
    let mut z = campaign_seed.wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(index as u64 + 1));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The case budget of shard `index` out of `shards`: an even split of
/// the total, remainder to the lowest-indexed shards. The same slice the
/// in-process engine hands each shard worker — exported so external
/// orchestrators (the `nnsmith-service` work-unit planner) carve
/// byte-identical slices.
pub fn shard_case_budget(total: Option<usize>, shards: usize, index: usize) -> Option<usize> {
    let shards = shards.max(1);
    total.map(|total| total / shards + usize::from(index < total % shards))
}

/// Engine configuration: a campaign budget plus the sharding layout.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads executing shards. Affects wall-clock time only,
    /// never the merged result of a case-budgeted run.
    pub workers: usize,
    /// Number of shards the campaign is split into. Part of the
    /// reproducibility key: same seed x same shard count => same merged
    /// result.
    pub shards: usize,
    /// Campaign seed; shard `i` runs from [`shard_seed`]`(seed, i)`.
    pub seed: u64,
    /// The campaign budget. `max_cases` is the *total* across shards
    /// (split evenly, remainder to the lowest-indexed shards);
    /// `duration` is the global wall-clock deadline.
    pub campaign: CampaignConfig,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get().min(8))
                .unwrap_or(1),
            shards: 8,
            seed: 0,
            campaign: CampaignConfig::default(),
        }
    }
}

/// Solver hot-path counters for one engine run, folded across shards —
/// the `"solver"` stats block of `BENCH_*.json` artifacts.
///
/// Every field is derived from the merged phase profile's deterministic
/// slice (`solve` span count plus `solve/*` counters), so for a
/// case-budgeted run the block serializes byte-identically across worker
/// counts. `constraints_skipped` is the direct measure of the watch
/// index: constraints the dirty-queue propagator never had to re-check
/// because the narrowed variable was not among their watched slots.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct SolveStats {
    /// `Solver::check` calls (the `solve` phase span count).
    pub checks: u64,
    /// Constraints compiled onto the tape (`solve/tape_compiles`).
    pub tape_compiles: u64,
    /// Bytecode evaluation passes (`solve/tape_evals`).
    pub tape_evals: u64,
    /// Constraints skipped by watch-indexed propagation
    /// (`solve/constraints_skipped`).
    pub constraints_skipped: u64,
}

impl SolveStats {
    /// Extracts the solver block from a (merged) phase profile.
    pub fn from_profile(profile: &Profile) -> Self {
        let counter = |key: &str| profile.counters.get(key).copied().unwrap_or(0);
        SolveStats {
            checks: profile
                .phases
                .get(nnsmith_obs::phase::SOLVE)
                .map(|s| s.count)
                .unwrap_or(0),
            tape_compiles: counter("solve/tape_compiles"),
            tape_evals: counter("solve/tape_evals"),
            constraints_skipped: counter("solve/constraints_skipped"),
        }
    }
}

/// Everything an engine run produced.
#[derive(Debug, Clone)]
pub struct EngineReport {
    /// The deterministic merge of all shard results (see module docs for
    /// the exact reproducibility guarantee).
    pub result: CampaignResult,
    /// Per-shard results, in shard-index order.
    pub shard_results: Vec<CampaignResult>,
    /// Real-time union-coverage growth, sampled by the aggregator as
    /// case events arrive across all workers. Wall-clock truth, not
    /// reproducible.
    pub wall_timeline: Vec<TimelinePoint>,
    /// Total wall-clock time of the engine run.
    pub wall: Duration,
    /// Worker threads used.
    pub workers: usize,
    /// Shard count used.
    pub shards: usize,
    /// Final node/byte counters of the campaign's intern pool, sampled
    /// just before the pool is dropped. What a paper-scale campaign would
    /// have leaked under the old process-global arena.
    pub arena: PoolStats,
    /// Per-shard and merged phase profiles (every span/counter the shard
    /// workers recorded). Phase *counts* and counters are deterministic
    /// for a case-budgeted run; `wall_ns` fields are wall-clock truth —
    /// serialize [`EngineReport::deterministic_view`] (or
    /// [`ShardedProfile::strip_wall`]) for reproducible artifacts. The
    /// merged profile additionally carries the campaign pool's `pool/*`
    /// counters, which have no per-shard attribution.
    pub phases: ShardedProfile,
    /// Solver hot-path counters folded across shards (check count, tape
    /// compiles/evals, constraints skipped by the watch index). Fully
    /// deterministic for a case-budgeted run — serialized as the
    /// `"solver"` block of `BENCH_*.json` artifacts.
    pub solver: SolveStats,
    /// The structured campaign event log in canonical order, when
    /// [`CampaignConfig::log_events`] is on (empty otherwise). Every
    /// field but each event's `t_ms` is deterministic for a
    /// case-budgeted run.
    pub events: Vec<LoggedEvent>,
}

impl EngineReport {
    /// Executed cases per wall-clock second — the throughput metric the
    /// worker count buys.
    pub fn cases_per_sec(&self) -> f64 {
        self.result.cases as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    /// The deterministic slice of the merged phase profile (phase counts
    /// plus counters, no wall-clock): byte-identical across worker
    /// counts and repeated runs for a case-budgeted engine run.
    pub fn deterministic_view(&self) -> DeterministicView {
        self.phases.deterministic_view()
    }
}

enum Event {
    Case {
        record: CaseRecord,
    },
    ShardDone {
        index: usize,
        result: Box<CampaignResult>,
        profile: Box<Profile>,
    },
}

/// Runs a sharded campaign on `config.workers` threads and merges the
/// shard results. See the module docs for the determinism contract.
/// The explicit `compiler` overrides [`CampaignConfig::backends`].
pub fn run_engine(
    compiler: &Compiler,
    factory: &dyn SourceFactory,
    config: &EngineConfig,
) -> EngineReport {
    run_engine_observed(compiler, factory, config, &|_, _| {})
}

/// Runs a sharded campaign against the configured backend set
/// ([`CampaignConfig::backends`]): every shard fans each case out across
/// all backends, and the merged result carries per-backend coverage and
/// bug sets. Same determinism contract as [`run_engine`].
pub fn run_matrix_engine(factory: &dyn SourceFactory, config: &EngineConfig) -> EngineReport {
    run_matrix_engine_observed(factory, config, &|_, _| {})
}

/// [`run_matrix_engine`] with the per-case hook of
/// [`run_engine_observed`].
pub fn run_matrix_engine_observed(
    factory: &dyn SourceFactory,
    config: &EngineConfig,
    on_case: &(dyn Fn(ShardCtx, &CaseRecord) + Sync),
) -> EngineReport {
    let backends = config.campaign.backend_set();
    run_engine_inner(&backends, factory, config, on_case)
}

/// [`run_engine`] with a per-case hook: `on_case` is invoked **on the
/// worker thread** for every executed case, with the shard identity and
/// the case record (including the captured failures when
/// [`CampaignConfig::capture_failures`](crate::CampaignConfig) is set).
/// This is the streaming feed of the triage pipeline: failing cases flow
/// to a consumer while the campaign is still running. The hook must not
/// influence the campaign — merged results are identical to an unobserved
/// run.
pub fn run_engine_observed(
    compiler: &Compiler,
    factory: &dyn SourceFactory,
    config: &EngineConfig,
    on_case: &(dyn Fn(ShardCtx, &CaseRecord) + Sync),
) -> EngineReport {
    let backends = BackendSet::single(compiler.clone());
    run_engine_inner(&backends, factory, config, on_case)
}

fn run_engine_inner(
    backends: &BackendSet,
    factory: &dyn SourceFactory,
    config: &EngineConfig,
    on_case: &(dyn Fn(ShardCtx, &CaseRecord) + Sync),
) -> EngineReport {
    let shards = config.shards.max(1);
    let workers = config.workers.clamp(1, shards);
    // The campaign arena: shared by every shard worker, dropped when this
    // run returns (anything captured from the run — a failing case's
    // tensor types, say — holds its own handle and keeps exactly the
    // nodes it needs alive).
    let pool = InternPool::default();
    let start = Instant::now();
    let deadline = start + config.campaign.duration;

    let (tx, rx) = mpsc::channel::<Event>();
    let next_shard = AtomicUsize::new(0);
    let mut shard_slots: Vec<Option<CampaignResult>> = vec![None; shards];
    let mut profile_slots: Vec<Option<Profile>> = vec![None; shards];

    let (wall_timeline, mut events) = std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next_shard = &next_shard;
            let pool = &pool;
            scope.spawn(move || loop {
                let index = next_shard.fetch_add(1, Ordering::Relaxed);
                if index >= shards {
                    break;
                }
                let ctx = ShardCtx {
                    index,
                    count: shards,
                    seed: shard_seed(config.seed, index),
                };
                let mut source = factory.make_source_in(pool, ctx);
                let mut shard_cfg = config.campaign.clone();
                shard_cfg.max_cases = shard_case_budget(config.campaign.max_cases, shards, index);
                // Proportional time slice: this worker will run about
                // ceil(pending / workers) of the still-queued shards
                // (including this one) before the deadline, so each gets
                // an equal share of the remaining budget. Handing every
                // shard the *whole* remaining deadline would let early
                // shards starve late ones whenever workers < shards; and
                // dividing by `pending` alone would double-count the
                // shards the other workers are starting concurrently.
                let remaining = deadline.saturating_duration_since(Instant::now());
                let pending = shards - index;
                let rounds = pending.div_ceil(workers);
                shard_cfg.duration = if rounds > 1 {
                    remaining / rounds as u32
                } else {
                    remaining
                };
                let case_tx = tx.clone();
                // Each shard records into a fresh thread-local profile
                // (one worker runs shards sequentially, so enable/take
                // pairs cleanly delimit them).
                nnsmith_obs::enable();
                let result = run_campaign_inner(
                    backends,
                    source.as_mut(),
                    &shard_cfg,
                    Some(&mut |mut record: CaseRecord| {
                        for e in &mut record.events {
                            e.shard = index as u64;
                        }
                        on_case(ctx, &record);
                        // The aggregator may have hung up after a recv
                        // error; a lost progress event is harmless.
                        let _ = case_tx.send(Event::Case { record });
                    }),
                );
                let profile = nnsmith_obs::take();
                let _ = tx.send(Event::ShardDone {
                    index,
                    result: Box::new(result),
                    profile: Box::new(profile),
                });
            });
        }
        drop(tx);

        // Aggregator: owns the real-time union-coverage timeline (one
        // union set per backend; totals are summed across backends) and
        // collects shard results as they finish.
        let mut union_cov: BTreeMap<String, CoverageSet> = backends
            .names()
            .into_iter()
            .map(|n| (n, CoverageSet::new()))
            .collect();
        let totals = |union_cov: &BTreeMap<String, CoverageSet>| {
            let mut total = 0;
            let mut pass = 0;
            for compiler in backends.iter() {
                let cov = &union_cov[compiler.system().name()];
                total += cov.len();
                pass += cov.pass_len(compiler.manifest());
            }
            (total, pass)
        };
        let mut cases = 0usize;
        let mut wall_timeline = vec![TimelinePoint {
            elapsed_ms: 0,
            cases: 0,
            total_branches: 0,
            pass_branches: 0,
        }];
        let mut last_sample = Duration::ZERO;
        let mut events: Vec<LoggedEvent> = Vec::new();
        while let Ok(event) = rx.recv() {
            match event {
                Event::Case { record } => {
                    cases += 1;
                    for (name, delta) in &record.new_coverage {
                        if let Some(cov) = union_cov.get_mut(name) {
                            cov.merge(delta);
                        }
                    }
                    let elapsed = start.elapsed();
                    if !record.events.is_empty() {
                        let t_ms = elapsed.as_millis() as u64;
                        events.extend(record.events.into_iter().map(|mut e| {
                            e.t_ms = t_ms;
                            e
                        }));
                    }
                    if elapsed - last_sample >= config.campaign.sample_every {
                        last_sample = elapsed;
                        let (total_branches, pass_branches) = totals(&union_cov);
                        wall_timeline.push(TimelinePoint {
                            elapsed_ms: elapsed.as_millis() as u64,
                            cases,
                            total_branches,
                            pass_branches,
                        });
                    }
                }
                Event::ShardDone {
                    index,
                    result,
                    profile,
                } => {
                    shard_slots[index] = Some(*result);
                    profile_slots[index] = Some(*profile);
                }
            }
        }
        let elapsed = start.elapsed();
        let (total_branches, pass_branches) = totals(&union_cov);
        wall_timeline.push(TimelinePoint {
            elapsed_ms: elapsed.as_millis() as u64,
            cases,
            total_branches,
            pass_branches,
        });
        (wall_timeline, events)
    });
    let wall = start.elapsed();

    let shard_results: Vec<CampaignResult> = shard_slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| slot.unwrap_or_else(|| panic!("shard {i} produced no result")))
        .collect();
    let result = merge_shard_results(backends, factory.name(), &shard_results);

    // Arrival order at the aggregator is scheduling-dependent; canonical
    // order is not.
    nnsmith_obs::sort_events(&mut events);

    let arena = pool.stats();
    let shard_profiles: Vec<Profile> = profile_slots
        .into_iter()
        .map(Option::unwrap_or_default)
        .collect();
    let mut phases = ShardedProfile::from_shards(shard_profiles);
    // The campaign pool is shared by all shards, so its counters land on
    // the merged profile only (deterministic: interning work is fixed by
    // the shard layout, not by scheduling).
    phases.merged.add("pool/base_hits", arena.base_hits as u64);
    phases
        .merged
        .add("pool/base_misses", arena.base_misses as u64);
    phases.merged.add("pool/memo_hits", arena.memo_hits as u64);
    let solver = SolveStats::from_profile(&phases.merged);

    EngineReport {
        result,
        shard_results,
        wall_timeline,
        wall,
        workers,
        shards,
        arena,
        phases,
        solver,
        events,
    }
}

/// What one shard of an engine run produced: exactly the data the
/// in-process worker loop hands the aggregator, in one ownable (and,
/// field by field, serializable) bundle. The extraction seam for
/// process-level work-units: `nnsmith-service` runs each shard via
/// [`run_engine_shard`] in a child process and folds the bundles with
/// [`merge_shard_results`] / [`ShardedProfile::from_shards`] in
/// shard-index order, exactly like [`run_engine`]'s own merge.
#[derive(Debug, Clone)]
pub struct ShardRun {
    /// The shard's campaign result (its slice of the case budget).
    pub result: CampaignResult,
    /// The shard's phase profile (spans + counters recorded while it
    /// ran).
    pub profile: Profile,
    /// The shard's structured events in canonical order, stamped with
    /// `shard_index`; `t_ms` stays 0 (there is no aggregator wall clock
    /// here, which is exactly what makes the stream deterministic).
    pub events: Vec<LoggedEvent>,
}

/// Runs one shard of an engine run to completion on the calling thread:
/// the per-shard work of [`run_engine`]'s worker loop (profile
/// enable/take bracketing, shard stamping of events) without the
/// cross-shard plumbing (case channel, wall timeline, proportional
/// deadline slicing — callers budget by **cases**, so `config.duration`
/// should be the generous anti-hang deadline, not a real budget).
///
/// `config.max_cases` must already be this shard's slice (see
/// [`shard_case_budget`]); `config.backends` supplies the backend set.
pub fn run_engine_shard(
    backends: &BackendSet,
    source: &mut dyn TestCaseSource,
    config: &CampaignConfig,
    shard_index: usize,
) -> ShardRun {
    let mut events: Vec<LoggedEvent> = Vec::new();
    nnsmith_obs::enable();
    let result = run_campaign_inner(
        backends,
        source,
        config,
        Some(&mut |mut record: CaseRecord| {
            for e in &mut record.events {
                e.shard = shard_index as u64;
            }
            events.append(&mut record.events);
        }),
    );
    let profile = nnsmith_obs::take();
    nnsmith_obs::sort_events(&mut events);
    ShardRun {
        result,
        profile,
        events,
    }
}

/// Folds shard results (in shard-index order) into one campaign result.
/// Pure data merge — deterministic for deterministic inputs. Public as
/// the shared fold of the in-process engine and the multi-process
/// orchestrator: both must produce byte-identical merges from identical
/// shard results.
pub fn merge_shard_results(
    backends: &BackendSet,
    source_name: &str,
    shards: &[CampaignResult],
) -> CampaignResult {
    let mut merged = CampaignResult {
        source: source_name.to_string(),
        compiler: backends.primary().system().name().to_string(),
        backends: backends.names(),
        per_backend: backends
            .names()
            .into_iter()
            .map(|n| (n, BackendResult::default()))
            .collect(),
        timeline: vec![TimelinePoint {
            elapsed_ms: 0,
            cases: 0,
            total_branches: 0,
            pass_branches: 0,
        }],
        coverage: CoverageSet::new(),
        bugs_found: Default::default(),
        unique_crashes: Default::default(),
        mismatches: 0,
        cases: 0,
        numeric_invalid: 0,
        op_instances: Default::default(),
        feedback: None,
    };
    for shard in shards {
        merged.coverage.merge(&shard.coverage);
        if let Some(fb) = &shard.feedback {
            merged
                .feedback
                .get_or_insert_with(Default::default)
                .absorb(fb);
        }
        merged.bugs_found.extend(shard.bugs_found.iter().cloned());
        merged
            .unique_crashes
            .extend(shard.unique_crashes.iter().cloned());
        merged
            .op_instances
            .extend(shard.op_instances.iter().cloned());
        merged.mismatches += shard.mismatches;
        merged.cases += shard.cases;
        merged.numeric_invalid += shard.numeric_invalid;
        for (name, backend) in &shard.per_backend {
            let entry = merged
                .per_backend
                .get_mut(name)
                .expect("shard backend outside the engine set");
            entry.coverage.merge(&backend.coverage);
            entry.bugs_found.extend(backend.bugs_found.iter().cloned());
            entry
                .unique_crashes
                .extend(backend.unique_crashes.iter().cloned());
            entry.mismatches += backend.mismatches;
            entry.not_implemented += backend.not_implemented;
        }
        // Logical timeline: one point per folded shard, `elapsed_ms`
        // carrying the cumulative case count as a logical clock (the
        // wall-clock curve is EngineReport::wall_timeline). Totals sum
        // the per-backend cumulative sets, like the campaign timeline.
        let (total_branches, pass_branches) = merged.coverage_totals(backends);
        merged.timeline.push(TimelinePoint {
            elapsed_ms: merged.cases as u64,
            cases: merged.cases,
            total_branches,
            pass_branches,
        });
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::TestCase;
    use nnsmith_compilers::ortsim;
    use nnsmith_graph::{Graph, NodeId, NodeKind, TensorType, ValueRef};
    use nnsmith_ops::{Bindings, Op, UnaryKind};
    use nnsmith_tensor::{DType, Tensor};

    /// A deterministic synthetic source: `n` tanh cases whose input values
    /// are derived from the shard seed.
    struct SeededSource {
        seed: u64,
        remaining: usize,
    }

    impl TestCaseSource for SeededSource {
        fn name(&self) -> &str {
            "seeded"
        }
        fn next_case(&mut self) -> Option<TestCase> {
            if self.remaining == 0 {
                return None;
            }
            self.remaining -= 1;
            self.seed = self.seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            let v = (self.seed >> 40) as f32 / 1000.0;
            let mut g: Graph<Op> = Graph::new();
            let x = g.add_node(
                NodeKind::Input,
                vec![],
                vec![TensorType::concrete(DType::F32, &[2])],
            );
            g.add_node(
                NodeKind::Operator(Op::Unary(UnaryKind::Tanh)),
                vec![ValueRef::output0(x)],
                vec![TensorType::concrete(DType::F32, &[2])],
            );
            let mut b = Bindings::new();
            b.insert(NodeId(0), Tensor::from_f32(&[2], vec![v, -v]).unwrap());
            Some(TestCase::from_bindings(g, b))
        }
    }

    fn factory() -> FnSourceFactory<impl Fn(ShardCtx) -> Box<dyn TestCaseSource + Send> + Sync> {
        FnSourceFactory::new("seeded", |shard: ShardCtx| {
            Box::new(SeededSource {
                seed: shard.seed,
                remaining: usize::MAX,
            }) as Box<dyn TestCaseSource + Send>
        })
    }

    fn engine_config(workers: usize) -> EngineConfig {
        EngineConfig {
            workers,
            shards: 4,
            seed: 7,
            campaign: CampaignConfig {
                duration: Duration::from_secs(60),
                max_cases: Some(18),
                ..CampaignConfig::default()
            },
        }
    }

    #[test]
    fn engine_runs_all_shards_and_merges() {
        let compiler = ortsim();
        let report = run_engine(&compiler, &factory(), &engine_config(2));
        assert_eq!(report.shards, 4);
        assert_eq!(report.shard_results.len(), 4);
        assert_eq!(report.result.cases, 18);
        // 18 cases over 4 shards: shards 0,1 get 5, shards 2,3 get 4.
        assert_eq!(
            report
                .shard_results
                .iter()
                .map(|r| r.cases)
                .collect::<Vec<_>>(),
            vec![5, 5, 4, 4]
        );
        assert!(report.result.total_coverage() > 0);
        // Logical timeline: one start point plus one per shard.
        assert_eq!(report.result.timeline.len(), 5);
        assert!(report.wall_timeline.len() >= 2);
    }

    #[test]
    fn merged_result_independent_of_worker_count() {
        let compiler = ortsim();
        let one = run_engine(&compiler, &factory(), &engine_config(1));
        let four = run_engine(&compiler, &factory(), &engine_config(4));
        assert_eq!(one.result.cases, four.result.cases);
        assert_eq!(one.result.coverage, four.result.coverage);
        assert_eq!(one.result.bugs_found, four.result.bugs_found);
        assert_eq!(one.result.unique_crashes, four.result.unique_crashes);
        assert_eq!(one.result.op_instances, four.result.op_instances);
        assert_eq!(one.result.timeline, four.result.timeline);
        assert_eq!(one.shard_results.len(), four.shard_results.len());
        for (a, b) in one.shard_results.iter().zip(&four.shard_results) {
            assert_eq!(a.cases, b.cases);
            assert_eq!(a.coverage, b.coverage);
        }
    }

    #[test]
    fn time_budget_slices_are_fair() {
        // Under a pure wall-clock budget every shard must get a
        // proportional slice — previously shard 0 ran to the global
        // deadline and late shards started with nothing left. Cover both
        // the sequential case and a first wave of concurrent claims
        // (workers=2: shards 0 and 1 are taken simultaneously and must
        // not each consume the whole deadline).
        let compiler = ortsim();
        for workers in [1usize, 2] {
            let report = run_engine(
                &compiler,
                &factory(),
                &EngineConfig {
                    workers,
                    shards: 4,
                    seed: 3,
                    campaign: CampaignConfig {
                        duration: Duration::from_millis(800),
                        max_cases: None,
                        ..CampaignConfig::default()
                    },
                },
            );
            for (i, shard) in report.shard_results.iter().enumerate() {
                assert!(
                    shard.cases > 0,
                    "shard {i} was starved of wall-clock at {workers} workers"
                );
            }
        }
    }

    #[test]
    fn shard_seeds_are_decorrelated() {
        let a = shard_seed(0, 0);
        let b = shard_seed(0, 1);
        let c = shard_seed(1, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        // And stable across calls.
        assert_eq!(shard_seed(0, 0), a);
    }
}
