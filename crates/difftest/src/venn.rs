//! Venn-diagram region computation over coverage sets (Figures 7, 8, 10)
//! and over bug-id sets (Table 5's cross-backend matrix: which bugs are
//! shared across backends — the exporter's — and which are unique to
//! one).

use std::collections::BTreeSet;

use nnsmith_compilers::CoverageSet;
use serde::Serialize;

/// Regions of a two-set Venn diagram.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct Venn2 {
    /// Branches only in A.
    pub only_a: usize,
    /// Branches only in B.
    pub only_b: usize,
    /// Branches in both.
    pub both: usize,
}

impl Venn2 {
    /// Computes the regions.
    pub fn of(a: &CoverageSet, b: &CoverageSet) -> Venn2 {
        let both = a.intersection(b).len();
        Venn2 {
            only_a: a.len() - both,
            only_b: b.len() - both,
            both,
        }
    }

    /// Computes the regions over id sets (bug ids, crash keys).
    pub fn of_ids(a: &BTreeSet<String>, b: &BTreeSet<String>) -> Venn2 {
        let both = a.intersection(b).count();
        Venn2 {
            only_a: a.len() - both,
            only_b: b.len() - both,
            both,
        }
    }

    /// Total of set A.
    pub fn total_a(&self) -> usize {
        self.only_a + self.both
    }

    /// Total of set B.
    pub fn total_b(&self) -> usize {
        self.only_b + self.both
    }
}

/// Regions of a three-set Venn diagram (A, B, C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct Venn3 {
    /// Only A.
    pub a: usize,
    /// Only B.
    pub b: usize,
    /// Only C.
    pub c: usize,
    /// A∩B only.
    pub ab: usize,
    /// A∩C only.
    pub ac: usize,
    /// B∩C only.
    pub bc: usize,
    /// A∩B∩C.
    pub abc: usize,
}

impl Venn3 {
    /// Computes the seven regions.
    pub fn of(a: &CoverageSet, b: &CoverageSet, c: &CoverageSet) -> Venn3 {
        let ab = a.intersection(b);
        let ac = a.intersection(c);
        let bc = b.intersection(c);
        let abc = ab.intersection(c).len();
        Venn3 {
            a: (a.len() + abc) - ab.len() - ac.len(),
            b: (b.len() + abc) - ab.len() - bc.len(),
            c: (c.len() + abc) - ac.len() - bc.len(),
            ab: ab.len() - abc,
            ac: ac.len() - abc,
            bc: bc.len() - abc,
            abc,
        }
    }

    /// Computes the seven regions over id sets (per-backend bug sets in
    /// Table 5: the `abc` core is the shared-frontend exporter bugs,
    /// the exclusive regions each backend's own seeded surface).
    pub fn of_ids(a: &BTreeSet<String>, b: &BTreeSet<String>, c: &BTreeSet<String>) -> Venn3 {
        let ab = a.intersection(b).count();
        let ac = a.intersection(c).count();
        let bc = b.intersection(c).count();
        let abc = a.intersection(b).filter(|id| c.contains(*id)).count();
        Venn3 {
            a: (a.len() + abc) - ab - ac,
            b: (b.len() + abc) - ab - bc,
            c: (c.len() + abc) - ac - bc,
            ab: ab - abc,
            ac: ac - abc,
            bc: bc - abc,
            abc,
        }
    }

    /// Total size of set A.
    pub fn total_a(&self) -> usize {
        self.a + self.ab + self.ac + self.abc
    }

    /// Total size of set B.
    pub fn total_b(&self) -> usize {
        self.b + self.ab + self.bc + self.abc
    }

    /// Total size of set C.
    pub fn total_c(&self) -> usize {
        self.c + self.ac + self.bc + self.abc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnsmith_compilers::{Branch, FileId};

    fn set(branches: &[u32]) -> CoverageSet {
        let mut s = CoverageSet::new();
        for &b in branches {
            s.insert(Branch {
                file: FileId(0),
                site: b,
            });
        }
        s
    }

    #[test]
    fn venn2_regions() {
        let a = set(&[1, 2, 3]);
        let b = set(&[3, 4]);
        let v = Venn2::of(&a, &b);
        assert_eq!(
            v,
            Venn2 {
                only_a: 2,
                only_b: 1,
                both: 1
            }
        );
        assert_eq!(v.total_a(), 3);
        assert_eq!(v.total_b(), 2);
    }

    #[test]
    fn venn3_regions() {
        let a = set(&[1, 2, 3, 7]);
        let b = set(&[2, 3, 4, 7]);
        let c = set(&[3, 5, 7]);
        let v = Venn3::of(&a, &b, &c);
        assert_eq!(v.abc, 2); // {3, 7}
        assert_eq!(v.ab, 1); // {2}
        assert_eq!(v.a, 1); // {1}
        assert_eq!(v.b, 1); // {4}
        assert_eq!(v.c, 1); // {5}
        assert_eq!(v.ac, 0);
        assert_eq!(v.bc, 0);
        assert_eq!(v.total_a(), 4);
        assert_eq!(v.total_b(), 4);
        assert_eq!(v.total_c(), 3);
    }

    #[test]
    fn venn3_disjoint() {
        let a = set(&[1]);
        let b = set(&[2]);
        let c = set(&[3]);
        let v = Venn3::of(&a, &b, &c);
        assert_eq!((v.a, v.b, v.c), (1, 1, 1));
        assert_eq!(v.ab + v.ac + v.bc + v.abc, 0);
    }
}
