//! Integration tests: Algorithm 3 repairs each Table-1 vulnerable
//! operator class.

use nnsmith_graph::{Graph, NodeKind, TensorType, ValueRef};
use nnsmith_ops::{execute, BinaryKind, Op, UnaryKind};
use nnsmith_search::{search_values, SearchConfig, SearchMethod};
use nnsmith_tensor::DType;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn unary_graph(kind: UnaryKind) -> Graph<Op> {
    let mut g: Graph<Op> = Graph::new();
    let x = g.add_node(
        NodeKind::Input,
        vec![],
        vec![TensorType::concrete(DType::F32, &[6])],
    );
    g.add_node(
        NodeKind::Operator(Op::Unary(kind)),
        vec![ValueRef::output0(x)],
        vec![TensorType::concrete(DType::F32, &[6])],
    );
    g
}

fn binary_graph(kind: BinaryKind) -> Graph<Op> {
    let mut g: Graph<Op> = Graph::new();
    let x = g.add_node(
        NodeKind::Input,
        vec![],
        vec![TensorType::concrete(DType::F32, &[6])],
    );
    let w = g.add_node(
        NodeKind::Weight,
        vec![],
        vec![TensorType::concrete(DType::F32, &[6])],
    );
    g.add_node(
        NodeKind::Operator(Op::Binary(kind)),
        vec![ValueRef::output0(x), ValueRef::output0(w)],
        vec![TensorType::concrete(DType::F32, &[6])],
    );
    g
}

fn assert_search_fixes(graph: &Graph<Op>, seed: u64, what: &str) {
    let mut rng = StdRng::seed_from_u64(seed);
    let out = search_values(
        graph,
        &SearchConfig {
            method: SearchMethod::GradientProxy,
            // Deterministic and generous: these tests assert the search
            // *succeeds*, so give it far more than the 256-iteration
            // default instead of a timing-dependent wall-clock budget.
            max_iters: Some(4096),
            init_lo: -6.0,
            init_hi: 6.0,
            ..SearchConfig::default()
        },
        &mut rng,
    );
    let bindings = out
        .bindings
        .unwrap_or_else(|| panic!("{what}: search failed after {} iters", out.iterations));
    let exec = execute(graph, &bindings).expect("runs");
    assert!(!exec.has_exceptional(), "{what}: still exceptional");
}

#[test]
fn fixes_asin_domain() {
    assert_search_fixes(&unary_graph(UnaryKind::Asin), 1, "Asin");
}

#[test]
fn fixes_acos_domain() {
    assert_search_fixes(&unary_graph(UnaryKind::Acos), 2, "Acos");
}

#[test]
fn fixes_sqrt_domain() {
    assert_search_fixes(&unary_graph(UnaryKind::Sqrt), 3, "Sqrt");
}

#[test]
fn fixes_log_domain() {
    assert_search_fixes(&unary_graph(UnaryKind::Log), 4, "Log");
    assert_search_fixes(&unary_graph(UnaryKind::Log2), 5, "Log2");
}

#[test]
fn fixes_div_by_near_zero() {
    assert_search_fixes(&binary_graph(BinaryKind::Div), 6, "Div");
}

#[test]
fn fixes_pow_domain() {
    assert_search_fixes(&binary_graph(BinaryKind::Pow), 7, "Pow");
}

#[test]
fn fixes_batchnorm_negative_variance() {
    let mut g: Graph<Op> = Graph::new();
    let x = g.add_node(
        NodeKind::Input,
        vec![],
        vec![TensorType::concrete(DType::F32, &[1, 2, 3, 3])],
    );
    let mut stats = Vec::new();
    for _ in 0..4 {
        stats.push(g.add_node(
            NodeKind::Weight,
            vec![],
            vec![TensorType::concrete(DType::F32, &[2])],
        ));
    }
    let mut inputs = vec![ValueRef::output0(x)];
    inputs.extend(stats.iter().map(|&s| ValueRef::output0(s)));
    g.add_node(
        NodeKind::Operator(Op::BatchNorm),
        inputs,
        vec![TensorType::concrete(DType::F32, &[1, 2, 3, 3])],
    );
    assert_search_fixes(&g, 8, "BatchNorm");
}

/// The proxy-derivative ablation of Fig. 11: on a graph whose failing
/// operator sits behind a ReLU dead zone, the proxy variant must succeed
/// at least as often as the exact-gradient variant.
#[test]
fn proxy_derivatives_help_through_dead_zones() {
    // Sqrt(Relu(x) - 1): Relu kills gradients for x<0, proxy leaks them.
    let mut g: Graph<Op> = Graph::new();
    let x = g.add_node(
        NodeKind::Input,
        vec![],
        vec![TensorType::concrete(DType::F32, &[8])],
    );
    let relu = g.add_node(
        NodeKind::Operator(Op::Unary(UnaryKind::Relu)),
        vec![ValueRef::output0(x)],
        vec![TensorType::concrete(DType::F32, &[8])],
    );
    let one = g.add_node(
        NodeKind::Weight,
        vec![],
        vec![TensorType::concrete(DType::F32, &[8])],
    );
    let sub = g.add_node(
        NodeKind::Operator(Op::Binary(BinaryKind::Sub)),
        vec![ValueRef::output0(relu), ValueRef::output0(one)],
        vec![TensorType::concrete(DType::F32, &[8])],
    );
    g.add_node(
        NodeKind::Operator(Op::Unary(UnaryKind::Sqrt)),
        vec![ValueRef::output0(sub)],
        vec![TensorType::concrete(DType::F32, &[8])],
    );

    let run = |method: SearchMethod| -> usize {
        let mut success = 0;
        for seed in 0..12u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let out = search_values(
                &g,
                &SearchConfig {
                    method,
                    // A *tight* deterministic budget: the proxy-vs-exact
                    // comparison needs a bound both can exhaust.
                    max_iters: Some(64),
                    init_lo: -6.0,
                    init_hi: 6.0,
                    ..SearchConfig::default()
                },
                &mut rng,
            );
            if out.succeeded() {
                success += 1;
            }
        }
        success
    };
    let proxy = run(SearchMethod::GradientProxy);
    let exact = run(SearchMethod::Gradient);
    assert!(
        proxy >= exact,
        "proxy {proxy}/12 must be >= exact {exact}/12"
    );
    assert!(proxy >= 8, "proxy succeeded only {proxy}/12");
}

/// Gradient search needs far fewer iterations than sampling on a
/// constrained domain — the Fig. 11 efficiency claim in miniature.
#[test]
fn gradient_beats_sampling_in_iterations() {
    // Asin(x * 4): valid only for |x| <= 0.25 — random sampling in
    // (-6, 6) has ~ (1/24)^6 odds per draw.
    let mut g: Graph<Op> = Graph::new();
    let x = g.add_node(
        NodeKind::Input,
        vec![],
        vec![TensorType::concrete(DType::F32, &[6])],
    );
    let four = g.add_node(
        NodeKind::Weight,
        vec![],
        vec![TensorType::concrete(DType::F32, &[])],
    );
    let mul = g.add_node(
        NodeKind::Operator(Op::Binary(BinaryKind::Mul)),
        vec![ValueRef::output0(x), ValueRef::output0(four)],
        vec![TensorType::concrete(DType::F32, &[6])],
    );
    g.add_node(
        NodeKind::Operator(Op::Unary(UnaryKind::Asin)),
        vec![ValueRef::output0(mul)],
        vec![TensorType::concrete(DType::F32, &[6])],
    );
    let mut rng = StdRng::seed_from_u64(0);
    let grad = search_values(
        &g,
        &SearchConfig {
            method: SearchMethod::GradientProxy,
            max_iters: Some(4096),
            init_lo: -6.0,
            init_hi: 6.0,
            ..SearchConfig::default()
        },
        &mut rng,
    );
    assert!(grad.succeeded());
    assert!(
        grad.iterations < 200,
        "gradient took {} iterations",
        grad.iterations
    );
}
