//! # nnsmith-search
//!
//! Gradient-guided input/weight search — Algorithm 3 of the NNSmith paper.
//!
//! Differential testing is only meaningful when model execution produces no
//! floating-point exceptional values (§2.3 challenge 3). This crate finds
//! numerically-valid inputs and weights by repeatedly executing the model,
//! locating the first operator whose output contains NaN/Inf, and descending
//! that operator's violation loss (Table 1) with Adam, backpropagating
//! through the model prefix with proxy derivatives.
//!
//! Three methods are provided, matching the series of Figure 11:
//! [`SearchMethod::Sampling`], [`SearchMethod::Gradient`] (no proxy
//! derivatives), and [`SearchMethod::GradientProxy`] (the full approach).

#![warn(missing_docs)]

mod adam;
mod search;

pub use adam::Adam;
pub use search::{nan_rate, search_values, SearchConfig, SearchMethod, SearchOutcome};
