//! Gradient-guided value search — Algorithm 3 of the paper.
//!
//! Given a concrete model, find inputs and weights `⟨X, W⟩` such that **no
//! operator** in the graph produces a NaN/Inf during execution (numeric
//! validity, §2.3 challenge 3). The search repeatedly executes the model,
//! finds the first operator (topological order) with an exceptional output,
//! asks it for its first positive violation loss (Table 1), and
//! backpropagates that loss to the leaves through the model prefix using
//! the operators' VJPs (with proxy derivatives).

use std::collections::HashMap;
use std::time::{Duration, Instant};

use rand::Rng;

use nnsmith_graph::{Graph, NodeId, NodeKind, ValueRef};
use nnsmith_ops::{execute, random_bindings, Bindings, Op};
use nnsmith_tensor::Tensor;

use crate::adam::Adam;

/// Which input/weight search method to use (the three series of Fig. 11).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchMethod {
    /// Re-sample random values until the execution is clean.
    Sampling,
    /// Gradient search without proxy derivatives.
    Gradient,
    /// Full gradient search with proxy derivatives (the default).
    GradientProxy,
}

/// Search configuration (§5.1 defaults: learning rate 0.5; the per-model
/// budget is varied by the Fig. 11 experiment).
#[derive(Debug, Clone)]
pub struct SearchConfig {
    /// Search method.
    pub method: SearchMethod,
    /// Wall-clock budget per model.
    pub budget: Duration,
    /// Deterministic iteration budget. When set, the search runs exactly
    /// up to this many iterations and **ignores the wall clock**, so the
    /// outcome depends only on the graph and the RNG — required for the
    /// engine's workers=1 ≡ workers=N bit-reproducibility (a wall-clock
    /// budget exhausts at load-dependent points). **The default is
    /// `Some(256)`**: every pipeline is engine-deterministic out of the
    /// box; set `None` for the paper's time-budgeted behaviour (Fig. 11
    /// pins its wall-clock budget explicitly in its own bench config).
    pub max_iters: Option<u32>,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Random-init range for float leaves (the Sampling baseline's
    /// empirically-best `[1, 9]` is used when sampling).
    pub init_lo: f64,
    /// Upper end of the init range.
    pub init_hi: f64,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            method: SearchMethod::GradientProxy,
            budget: Duration::from_millis(64),
            max_iters: Some(256),
            learning_rate: 0.5,
            init_lo: 1.0,
            init_hi: 9.0,
        }
    }
}

impl SearchConfig {
    fn budget_left(&self, start: Instant, iterations: u32) -> bool {
        match self.max_iters {
            Some(n) => iterations < n,
            None => start.elapsed() < self.budget,
        }
    }
}

/// Result of a value search.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// Numerically-valid bindings, if found within budget.
    pub bindings: Option<Bindings>,
    /// Number of execute-and-update iterations performed.
    pub iterations: u32,
    /// Wall-clock time spent.
    pub elapsed: Duration,
}

impl SearchOutcome {
    /// True if valid values were found.
    pub fn succeeded(&self) -> bool {
        self.bindings.is_some()
    }
}

/// Runs the configured search on a concrete graph.
///
/// Returns `bindings: None` when the budget is exhausted (the
/// "failed to find viable ⟨X, W⟩" exception of Algorithm 3 line 16).
pub fn search_values<R: Rng + ?Sized>(
    graph: &Graph<Op>,
    config: &SearchConfig,
    rng: &mut R,
) -> SearchOutcome {
    match config.method {
        SearchMethod::Sampling => sampling_search(graph, config, rng),
        SearchMethod::Gradient => gradient_search(graph, config, false, rng),
        SearchMethod::GradientProxy => gradient_search(graph, config, true, rng),
    }
}

fn is_clean(graph: &Graph<Op>, bindings: &Bindings) -> Option<bool> {
    match execute(graph, bindings) {
        Ok(exec) => Some(!exec.has_exceptional()),
        Err(_) => None, // kernel fault (e.g. int division by zero)
    }
}

fn sampling_search<R: Rng + ?Sized>(
    graph: &Graph<Op>,
    config: &SearchConfig,
    rng: &mut R,
) -> SearchOutcome {
    let start = Instant::now();
    let mut iterations = 0u32;
    while config.budget_left(start, iterations) {
        iterations += 1;
        let Ok(bindings) = random_bindings(graph, config.init_lo, config.init_hi, rng) else {
            break;
        };
        if is_clean(graph, &bindings) == Some(true) {
            return SearchOutcome {
                bindings: Some(bindings),
                iterations,
                elapsed: start.elapsed(),
            };
        }
    }
    SearchOutcome {
        bindings: None,
        iterations,
        elapsed: start.elapsed(),
    }
}

fn gradient_search<R: Rng + ?Sized>(
    graph: &Graph<Op>,
    config: &SearchConfig,
    proxy: bool,
    rng: &mut R,
) -> SearchOutcome {
    let start = Instant::now();
    let mut iterations = 0u32;
    let Ok(mut bindings) = random_bindings(graph, config.init_lo, config.init_hi, rng) else {
        return SearchOutcome {
            bindings: None,
            iterations: 0,
            elapsed: start.elapsed(),
        };
    };
    let mut adam = Adam::new(config.learning_rate);
    let mut current_target: Option<NodeId> = None;

    // OUTER loop of Algorithm 3.
    while config.budget_left(start, iterations) {
        iterations += 1;
        let exec = match execute(graph, &bindings) {
            Ok(e) => e,
            Err(_) => {
                // Kernel fault (integer division by zero, …): gradients
                // cannot help; restart with fresh values.
                match random_bindings(graph, config.init_lo, config.init_hi, rng) {
                    Ok(b) => {
                        bindings = b;
                        adam.reset();
                        current_target = None;
                        continue;
                    }
                    Err(_) => break,
                }
            }
        };
        let Some(failing) = exec.first_exceptional else {
            return SearchOutcome {
                bindings: Some(bindings),
                iterations,
                elapsed: start.elapsed(),
            };
        };

        // Reset the adaptive learning rate when the targeted operator
        // changes (§3.3 "reset the learning rate whenever we switch the
        // loss functions").
        if current_target != Some(failing) {
            adam.reset();
            current_target = Some(failing);
        }

        let node = graph.node(failing);
        let input_tensors: Vec<&Tensor> = node
            .inputs
            .iter()
            .map(|v| exec.values.get(v).expect("executed"))
            .collect();
        let violation = match &node.kind {
            NodeKind::Operator(op) => op.violation_loss(&input_tensors),
            _ => None,
        };

        let mut updated = false;
        if let Some(violation) = violation {
            // Seed gradients at the failing operator's inputs and
            // backpropagate to the leaves.
            let mut seeds: HashMap<ValueRef, Tensor> = HashMap::new();
            for (vref, grad) in node.inputs.iter().zip(&violation.grads) {
                if let Some(g) = grad {
                    accumulate(&mut seeds, *vref, g.clone());
                }
            }
            let leaf_grads = backprop(graph, &exec.values, seeds, failing, proxy);
            if !leaf_grads.is_empty() {
                let delta = adam.step(&mut bindings, &leaf_grads);
                updated = delta > 0.0;
            }
        }

        if !updated {
            // Zero gradients (Algorithm 3 line 10-11): restart randomly.
            match random_bindings(graph, config.init_lo, config.init_hi, rng) {
                Ok(b) => bindings = b,
                Err(_) => break,
            }
            adam.reset();
            current_target = None;
            continue;
        }

        // Replace NaN/Inf that crept into ⟨X, W⟩ (line 12-13). Iterate in
        // sorted key order: HashMap order is per-map random, and consuming
        // RNG draws in map order would make same-seed searches diverge.
        let mut leaf_ids: Vec<NodeId> = bindings.keys().copied().collect();
        leaf_ids.sort();
        for id in leaf_ids {
            let t = bindings.get_mut(&id).expect("key just listed");
            if t.has_non_finite() {
                for i in 0..t.numel() {
                    if !t.lin_f64(i).is_finite() {
                        t.set_lin_f64(i, rng.gen_range(config.init_lo..config.init_hi));
                    }
                }
            }
        }
    }
    SearchOutcome {
        bindings: None,
        iterations,
        elapsed: start.elapsed(),
    }
}

fn accumulate(map: &mut HashMap<ValueRef, Tensor>, key: ValueRef, grad: Tensor) {
    match map.remove(&key) {
        Some(existing) => {
            let sum = existing.add(&grad).unwrap_or(existing);
            map.insert(key, sum);
        }
        None => {
            map.insert(key, grad);
        }
    }
}

/// Backpropagates seeded value-gradients through the prefix of the graph
/// strictly before `stop` (the failing operator itself is not traversed —
/// its loss gradients are the seeds). Returns gradients per leaf node.
fn backprop(
    graph: &Graph<Op>,
    values: &HashMap<ValueRef, Tensor>,
    mut grads: HashMap<ValueRef, Tensor>,
    stop: NodeId,
    proxy: bool,
) -> HashMap<NodeId, Tensor> {
    let order = match graph.topo_order() {
        Ok(o) => o,
        Err(_) => return HashMap::new(),
    };
    let mut leaf_grads: HashMap<NodeId, Tensor> = HashMap::new();
    for &id in order.iter().rev() {
        if id == stop {
            continue;
        }
        let node = graph.node(id);
        match &node.kind {
            NodeKind::Input | NodeKind::Weight => {
                if let Some(g) = grads.get(&ValueRef::output0(id)) {
                    leaf_grads.insert(id, g.clone());
                }
            }
            NodeKind::Operator(op) => {
                let out_ref = ValueRef::output0(id);
                let Some(grad_out) = grads.get(&out_ref).cloned() else {
                    continue;
                };
                let inputs: Vec<&Tensor> = node
                    .inputs
                    .iter()
                    .map(|v| values.get(v).expect("executed"))
                    .collect();
                let outputs: Vec<&Tensor> = (0..node.outputs.len())
                    .map(|index| values.get(&ValueRef { node: id, index }).expect("executed"))
                    .collect();
                let Ok(input_grads) = op.vjp(&inputs, &outputs, &grad_out, proxy) else {
                    continue;
                };
                for (vref, g) in node.inputs.iter().zip(input_grads) {
                    if let Some(g) = g {
                        accumulate(&mut grads, *vref, g);
                    }
                }
            }
            NodeKind::Placeholder => {}
        }
    }
    leaf_grads
}

/// Fraction of `n` random initializations of `graph` that produce at least
/// one NaN/Inf — the §3.3 statistic ("56.8% of 20-node models with random
/// weights").
pub fn nan_rate<R: Rng + ?Sized>(
    graph: &Graph<Op>,
    n: usize,
    lo: f64,
    hi: f64,
    rng: &mut R,
) -> f64 {
    let mut bad = 0usize;
    let mut total = 0usize;
    for _ in 0..n {
        let Ok(b) = random_bindings(graph, lo, hi, rng) else {
            continue;
        };
        match is_clean(graph, &b) {
            Some(true) => total += 1,
            Some(false) => {
                total += 1;
                bad += 1;
            }
            None => {
                // Kernel faults count as invalid executions too.
                total += 1;
                bad += 1;
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        bad as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnsmith_graph::TensorType;
    use nnsmith_ops::UnaryKind;
    use nnsmith_tensor::DType;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// out = Sqrt(x): needs x >= 0 everywhere.
    fn sqrt_graph() -> Graph<Op> {
        let mut g: Graph<Op> = Graph::new();
        let x = g.add_node(
            NodeKind::Input,
            vec![],
            vec![TensorType::concrete(DType::F32, &[8])],
        );
        g.add_node(
            NodeKind::Operator(Op::Unary(UnaryKind::Sqrt)),
            vec![ValueRef::output0(x)],
            vec![TensorType::concrete(DType::F32, &[8])],
        );
        g
    }

    /// out = Sqrt(Sub(x, w)): gradient must push x - w >= 0.
    fn sqrt_sub_graph() -> Graph<Op> {
        let mut g: Graph<Op> = Graph::new();
        let x = g.add_node(
            NodeKind::Input,
            vec![],
            vec![TensorType::concrete(DType::F32, &[8])],
        );
        let w = g.add_node(
            NodeKind::Weight,
            vec![],
            vec![TensorType::concrete(DType::F32, &[8])],
        );
        let sub = g.add_node(
            NodeKind::Operator(Op::Binary(nnsmith_ops::BinaryKind::Sub)),
            vec![ValueRef::output0(x), ValueRef::output0(w)],
            vec![TensorType::concrete(DType::F32, &[8])],
        );
        g.add_node(
            NodeKind::Operator(Op::Unary(UnaryKind::Sqrt)),
            vec![ValueRef::output0(sub)],
            vec![TensorType::concrete(DType::F32, &[8])],
        );
        g
    }

    fn cfg(method: SearchMethod, ms: u64) -> SearchConfig {
        SearchConfig {
            method,
            budget: Duration::from_millis(ms),
            // These tests exercise the wall-clock budget path.
            max_iters: None,
            // Init straddling zero so sqrt sees negatives.
            init_lo: -5.0,
            init_hi: 5.0,
            ..SearchConfig::default()
        }
    }

    #[test]
    fn default_budget_is_deterministic_iterations() {
        // The engine's workers=1 ≡ workers=N contract requires sources to
        // be deterministic by default; a wall-clock search budget exhausts
        // at load-dependent points. Pinned here so a regression to
        // time-budgeted defaults fails loudly (fig11 opts back into
        // wall-clock explicitly).
        assert_eq!(SearchConfig::default().max_iters, Some(256));
        // And the iteration budget really does ignore the wall clock.
        let g = sqrt_graph();
        let out_a = search_values(
            &g,
            &SearchConfig {
                budget: Duration::ZERO,
                init_lo: -5.0,
                init_hi: 5.0,
                ..SearchConfig::default()
            },
            &mut StdRng::seed_from_u64(11),
        );
        let out_b = search_values(
            &g,
            &SearchConfig {
                budget: Duration::from_secs(3600),
                init_lo: -5.0,
                init_hi: 5.0,
                ..SearchConfig::default()
            },
            &mut StdRng::seed_from_u64(11),
        );
        assert_eq!(out_a.succeeded(), out_b.succeeded());
        assert_eq!(out_a.iterations, out_b.iterations);
    }

    #[test]
    fn gradient_fixes_sqrt_domain() {
        let g = sqrt_graph();
        let mut rng = StdRng::seed_from_u64(0);
        let out = search_values(&g, &cfg(SearchMethod::GradientProxy, 2000), &mut rng);
        assert!(out.succeeded(), "iterations: {}", out.iterations);
        let exec = execute(&g, out.bindings.as_ref().unwrap()).unwrap();
        assert!(!exec.has_exceptional());
    }

    #[test]
    fn gradient_fixes_composed_graph() {
        let g = sqrt_sub_graph();
        let mut rng = StdRng::seed_from_u64(1);
        let out = search_values(&g, &cfg(SearchMethod::GradientProxy, 4000), &mut rng);
        assert!(out.succeeded(), "iterations: {}", out.iterations);
    }

    #[test]
    fn sampling_eventually_succeeds_on_easy_graph() {
        // Relu-only graph: any values are clean.
        let mut g: Graph<Op> = Graph::new();
        let x = g.add_node(
            NodeKind::Input,
            vec![],
            vec![TensorType::concrete(DType::F32, &[4])],
        );
        g.add_node(
            NodeKind::Operator(Op::Unary(UnaryKind::Relu)),
            vec![ValueRef::output0(x)],
            vec![TensorType::concrete(DType::F32, &[4])],
        );
        let mut rng = StdRng::seed_from_u64(2);
        let out = search_values(&g, &cfg(SearchMethod::Sampling, 500), &mut rng);
        assert!(out.succeeded());
        assert_eq!(out.iterations, 1);
    }

    #[test]
    fn nan_rate_of_sqrt_graph_with_symmetric_init() {
        // With init range (-5, 5), a single 8-element sqrt has a NaN with
        // probability 1 - 2^-8 ≈ 0.996.
        let g = sqrt_graph();
        let mut rng = StdRng::seed_from_u64(3);
        let rate = nan_rate(&g, 200, -5.0, 5.0, &mut rng);
        assert!(rate > 0.9, "rate = {rate}");
    }

    #[test]
    fn nan_rate_zero_for_safe_graph() {
        let mut g: Graph<Op> = Graph::new();
        let x = g.add_node(
            NodeKind::Input,
            vec![],
            vec![TensorType::concrete(DType::F32, &[4])],
        );
        g.add_node(
            NodeKind::Operator(Op::Unary(UnaryKind::Tanh)),
            vec![ValueRef::output0(x)],
            vec![TensorType::concrete(DType::F32, &[4])],
        );
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(nan_rate(&g, 50, -5.0, 5.0, &mut rng), 0.0);
    }

    #[test]
    fn budget_exhaustion_reports_failure() {
        let g = sqrt_graph();
        let mut rng = StdRng::seed_from_u64(5);
        // Zero-ish budget: cannot succeed.
        let out = search_values(&g, &cfg(SearchMethod::GradientProxy, 0), &mut rng);
        assert!(!out.succeeded());
    }

    #[test]
    fn generated_models_search_end_to_end() {
        use nnsmith_gen::{GenConfig, Generator};
        let mut success = 0;
        let mut with_vulnerable = 0;
        for seed in 0..6u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let model = Generator::new(GenConfig {
                target_ops: 8,
                ..GenConfig::default()
            })
            .generate(&mut rng)
            .expect("gen");
            let vulnerable = model.graph.operators().iter().any(|&id| {
                model
                    .graph
                    .node(id)
                    .kind
                    .as_operator()
                    .is_some_and(Op::is_vulnerable)
            });
            if vulnerable {
                with_vulnerable += 1;
            }
            let mut srng = StdRng::seed_from_u64(seed + 100);
            let out = search_values(
                &model.graph,
                &SearchConfig {
                    budget: Duration::from_millis(2000),
                    init_lo: -5.0,
                    init_hi: 5.0,
                    ..SearchConfig::default()
                },
                &mut srng,
            );
            if out.succeeded() {
                success += 1;
            }
        }
        assert!(
            success >= 4,
            "only {success}/6 searches succeeded ({with_vulnerable} vulnerable)"
        );
    }
}
