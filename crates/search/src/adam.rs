//! Adam optimizer over a set of named tensors.
//!
//! Algorithm 3 tunes model inputs and weights with an adaptive learning
//! rate because loss magnitudes vary by orders of magnitude across
//! operators (§3.3). Moments are keyed per leaf node and reset whenever the
//! search switches to a different failing operator's loss.

use std::collections::HashMap;

use nnsmith_graph::NodeId;
use nnsmith_tensor::Tensor;

/// Adam state for the search's `⟨X, W⟩` update.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    step: u64,
    m: HashMap<NodeId, Vec<f64>>,
    v: HashMap<NodeId, Vec<f64>>,
}

impl Adam {
    /// Creates an optimizer with the given learning rate (the paper uses
    /// an initial rate of 0.5, §5.1) and standard β/ε defaults.
    pub fn new(lr: f64) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            step: 0,
            m: HashMap::new(),
            v: HashMap::new(),
        }
    }

    /// Clears moments and the step counter (used when the optimized loss
    /// function changes).
    pub fn reset(&mut self) {
        self.step = 0;
        self.m.clear();
        self.v.clear();
    }

    /// Applies one Adam update: `tensors[id] -= lr · m̂/(√v̂ + ε)` for every
    /// gradient entry. Returns the largest absolute parameter change.
    pub fn step(
        &mut self,
        tensors: &mut HashMap<NodeId, Tensor>,
        grads: &HashMap<NodeId, Tensor>,
    ) -> f64 {
        self.step += 1;
        let t = self.step as i32;
        let bc1 = 1.0 - self.beta1.powi(t);
        let bc2 = 1.0 - self.beta2.powi(t);
        let mut max_delta = 0.0f64;
        for (id, grad) in grads {
            let Some(param) = tensors.get_mut(id) else {
                continue;
            };
            if !param.dtype().is_float() {
                continue;
            }
            let n = param.numel();
            let m = self.m.entry(*id).or_insert_with(|| vec![0.0; n]);
            let v = self.v.entry(*id).or_insert_with(|| vec![0.0; n]);
            if m.len() != n {
                *m = vec![0.0; n];
                *v = vec![0.0; n];
            }
            for i in 0..n {
                let g = grad.lin_f64(i);
                if !g.is_finite() {
                    continue;
                }
                m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * g;
                v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * g * g;
                let mhat = m[i] / bc1;
                let vhat = v[i] / bc2;
                let delta = self.lr * mhat / (vhat.sqrt() + self.eps);
                if delta.is_finite() && delta != 0.0 {
                    param.set_lin_f64(i, param.lin_f64(i) - delta);
                    max_delta = max_delta.max(delta.abs());
                }
            }
        }
        max_delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnsmith_tensor::DType;

    #[test]
    fn descends_a_quadratic() {
        // Minimize (x - 3)^2 by gradient 2(x - 3).
        let id = NodeId(0);
        let mut tensors = HashMap::new();
        tensors.insert(id, Tensor::from_f64(&[1], vec![10.0]).unwrap());
        let mut adam = Adam::new(0.5);
        for _ in 0..200 {
            let x = tensors[&id].lin_f64(0);
            let mut g = Tensor::zeros(&[1], DType::F64);
            g.set_lin_f64(0, 2.0 * (x - 3.0));
            let grads = HashMap::from([(id, g)]);
            adam.step(&mut tensors, &grads);
        }
        let x = tensors[&id].lin_f64(0);
        assert!((x - 3.0).abs() < 0.1, "converged to {x}");
    }

    #[test]
    fn zero_gradient_changes_nothing() {
        let id = NodeId(0);
        let mut tensors = HashMap::new();
        tensors.insert(id, Tensor::from_f64(&[2], vec![1.0, 2.0]).unwrap());
        let mut adam = Adam::new(0.5);
        let grads = HashMap::from([(id, Tensor::zeros(&[2], DType::F64))]);
        let delta = adam.step(&mut tensors, &grads);
        assert_eq!(delta, 0.0);
        assert_eq!(tensors[&id].to_f64_vec(), vec![1.0, 2.0]);
    }

    #[test]
    fn integer_params_skipped() {
        let id = NodeId(0);
        let mut tensors = HashMap::new();
        tensors.insert(id, Tensor::from_i32(&[1], vec![5]).unwrap());
        let mut adam = Adam::new(0.5);
        let grads = HashMap::from([(id, Tensor::ones(&[1], DType::F64))]);
        adam.step(&mut tensors, &grads);
        assert_eq!(tensors[&id].as_i32().unwrap(), &[5]);
    }

    #[test]
    fn nan_gradients_ignored() {
        let id = NodeId(0);
        let mut tensors = HashMap::new();
        tensors.insert(id, Tensor::from_f64(&[1], vec![1.0]).unwrap());
        let mut adam = Adam::new(0.5);
        let grads = HashMap::from([(id, Tensor::from_f64(&[1], vec![f64::NAN]).unwrap())]);
        adam.step(&mut tensors, &grads);
        assert_eq!(tensors[&id].lin_f64(0), 1.0);
    }

    #[test]
    fn reset_clears_state() {
        let id = NodeId(0);
        let mut tensors = HashMap::new();
        tensors.insert(id, Tensor::from_f64(&[1], vec![1.0]).unwrap());
        let mut adam = Adam::new(0.5);
        let grads = HashMap::from([(id, Tensor::ones(&[1], DType::F64))]);
        adam.step(&mut tensors, &grads);
        adam.reset();
        assert_eq!(adam.step, 0);
        assert!(adam.m.is_empty());
    }
}
