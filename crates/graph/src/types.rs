//! Tensor types: dtype plus (possibly symbolic) shape.

use std::fmt;
use std::hash::{Hash, Hasher};

use serde::{json, Deserialize, Serialize};

use nnsmith_solver::{ExprId, IntExpr, InternPool, Model};
use nnsmith_tensor::DType;

/// The type of a tensor flowing along a graph edge: an element dtype and a
/// shape whose dimensions may be symbolic solver expressions.
///
/// During generation shapes are symbolic; after the solver produces a model
/// the graph is concretized and every dimension becomes a constant.
///
/// Dimensions are stored as interned [`ExprId`] handles, and the type
/// carries a handle to the [`InternPool`] they live in — so cloning a type
/// (and therefore cloning a whole graph during concretization, shard setup
/// or triage reduction) copies machine words, and the arena a campaign
/// interned into is reclaimed when the campaign (and everything that
/// borrowed from it) drops its handles. The tree-form API
/// ([`TensorType::dim`], [`TensorType::dims`]) reconstructs owned
/// [`IntExpr`]s for constraint building.
///
/// Equality and hashing are **structural** and pool-independent: two types
/// interned into different pools compare equal iff their dtypes match and
/// their dimensions are the same normalized expressions. Within one pool
/// the comparison degenerates to a handle comparison (hash-consing).
///
/// # Examples
///
/// ```
/// use nnsmith_graph::TensorType;
/// use nnsmith_tensor::DType;
///
/// let t = TensorType::concrete(DType::F32, &[1, 3, 64, 64]);
/// assert_eq!(t.rank(), 4);
/// assert_eq!(t.concrete_shape(), Some(vec![1, 3, 64, 64]));
/// ```
#[derive(Clone)]
pub struct TensorType {
    /// Element type.
    pub dtype: DType,
    /// The arena `shape`'s handles resolve in.
    pool: InternPool,
    /// Shape; each dimension is a handle to an interned integer expression.
    shape: Vec<ExprId>,
}

impl TensorType {
    /// Builds a type with (possibly symbolic) dimensions, interning each
    /// into `pool`.
    pub fn new_in(pool: &InternPool, dtype: DType, shape: Vec<IntExpr>) -> Self {
        TensorType {
            dtype,
            shape: pool.intern_int_many(&shape),
            pool: pool.clone(),
        }
    }

    /// Builds a type with (possibly symbolic) dimensions in a fresh
    /// private pool. Convenience for small standalone call sites; inside a
    /// campaign prefer [`TensorType::new_in`] with the campaign pool so
    /// structurally equal shapes share storage.
    pub fn new(dtype: DType, shape: Vec<IntExpr>) -> Self {
        TensorType::new_in(&InternPool::small(), dtype, shape)
    }

    /// Builds a type directly from interned dimension handles of `pool`.
    pub fn from_dim_ids(pool: &InternPool, dtype: DType, shape: Vec<ExprId>) -> Self {
        TensorType {
            dtype,
            pool: pool.clone(),
            shape,
        }
    }

    /// Builds a fully-concrete type interned into `pool`.
    pub fn concrete_in(pool: &InternPool, dtype: DType, dims: &[i64]) -> Self {
        TensorType {
            dtype,
            shape: dims.iter().map(|&d| pool.constant(d)).collect(),
            pool: pool.clone(),
        }
    }

    /// Builds a fully-concrete type in a fresh private pool (see
    /// [`TensorType::new`] for when to prefer the `_in` form).
    pub fn concrete(dtype: DType, dims: &[i64]) -> Self {
        TensorType::concrete_in(&InternPool::small(), dtype, dims)
    }

    /// The pool this type's dimension handles live in.
    pub fn pool(&self) -> &InternPool {
        &self.pool
    }

    /// The same type re-interned into `pool` (cheap identity when the
    /// type already lives there). Used to move decoded or foreign types
    /// into a campaign's pool.
    pub fn rehomed(&self, pool: &InternPool) -> TensorType {
        if self.pool.same_pool(pool) {
            return self.clone();
        }
        TensorType {
            dtype: self.dtype,
            shape: self
                .shape
                .iter()
                .map(|&id| pool.rehome_int(&self.pool, id))
                .collect(),
            pool: pool.clone(),
        }
    }

    /// The same shape with a different element type (cheap: handles are
    /// copied, no trees are rebuilt).
    pub fn with_dtype(&self, dtype: DType) -> Self {
        TensorType {
            dtype,
            pool: self.pool.clone(),
            shape: self.shape.clone(),
        }
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// The interned dimension handles.
    pub fn dim_ids(&self) -> &[ExprId] {
        &self.shape
    }

    /// Dimension `i` as an owned expression tree.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn dim(&self, i: usize) -> IntExpr {
        self.pool.to_int_expr(self.shape[i])
    }

    /// Every dimension as an owned expression tree.
    pub fn dims(&self) -> Vec<IntExpr> {
        self.shape
            .iter()
            .map(|&id| self.pool.to_int_expr(id))
            .collect()
    }

    /// The concrete shape if every dimension is a constant.
    pub fn concrete_shape(&self) -> Option<Vec<i64>> {
        self.shape
            .iter()
            .map(|&id| self.pool.as_const(id))
            .collect()
    }

    /// The concrete shape as `usize` dims (for tensor allocation), if the
    /// type is concrete and every dim is non-negative.
    pub fn concrete_dims(&self) -> Option<Vec<usize>> {
        self.concrete_shape()?
            .into_iter()
            .map(|d| usize::try_from(d).ok())
            .collect()
    }

    /// True if every dimension is a constant.
    pub fn is_concrete(&self) -> bool {
        self.shape
            .iter()
            .all(|&id| self.pool.as_const(id).is_some())
    }

    /// Symbolic element count (the product of all dimensions).
    pub fn numel_expr(&self) -> IntExpr {
        self.dims()
            .into_iter()
            .fold(IntExpr::Const(1), |acc, d| acc * d)
    }

    /// Substitutes solver-model values into every dimension.
    ///
    /// Dimensions whose variables are missing from the model are left
    /// symbolic. The result stays in this type's pool.
    pub fn concretize(&self, model: &Model) -> TensorType {
        let shape = self
            .shape
            .iter()
            .map(|&id| match self.pool.eval_int(id, &|v| model.get(v)) {
                Some(v) => self.pool.constant(v),
                None => id,
            })
            .collect();
        TensorType {
            dtype: self.dtype,
            pool: self.pool.clone(),
            shape,
        }
    }
}

impl PartialEq for TensorType {
    fn eq(&self, other: &Self) -> bool {
        if self.dtype != other.dtype || self.shape.len() != other.shape.len() {
            return false;
        }
        if self.pool.same_pool(&other.pool) {
            // Hash-consing: same pool ⇒ equality is a handle comparison.
            return self.shape == other.shape;
        }
        self.shape
            .iter()
            .zip(&other.shape)
            .all(|(&a, &b)| self.pool.structural_eq_int(a, &other.pool, b))
    }
}

impl Eq for TensorType {}

impl Hash for TensorType {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.dtype.hash(state);
        self.shape.len().hash(state);
        for &id in &self.shape {
            self.pool.structural_hash_int(id, state);
        }
    }
}

impl fmt::Debug for TensorType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TensorType")
            .field("dtype", &self.dtype)
            .field("shape", &self.dims())
            .finish()
    }
}

impl fmt::Display for TensorType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[", self.dtype)?;
        for (i, d) in self.dims().iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

// Interned handles are process-local, so the wire form is the expression
// tree: serialization reconstructs `IntExpr`s and deserialization re-interns
// them (into a private pool; `TensorType::rehomed` moves decoded types into
// a campaign pool), keeping the JSON shape identical to the old owned-tree
// derive.
impl Serialize for TensorType {
    fn serialize_value(&self, out: &mut String) {
        out.push_str("{\"dtype\":");
        self.dtype.serialize_value(out);
        out.push_str(",\"shape\":");
        self.dims().serialize_value(out);
        out.push('}');
    }
}

impl Deserialize for TensorType {
    fn deserialize(v: &json::Value) -> Result<Self, json::Error> {
        let dtype = DType::deserialize(json::obj_get(v, "dtype")?)?;
        let shape: Vec<IntExpr> = Vec::deserialize(json::obj_get(v, "shape")?)?;
        Ok(TensorType::new(dtype, shape))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnsmith_solver::VarId;

    #[test]
    fn concrete_roundtrip() {
        let t = TensorType::concrete(DType::I64, &[2, 3]);
        assert!(t.is_concrete());
        assert_eq!(t.concrete_shape(), Some(vec![2, 3]));
        assert_eq!(t.concrete_dims(), Some(vec![2usize, 3usize]));
    }

    #[test]
    fn symbolic_is_not_concrete() {
        let t = TensorType::new(DType::F32, vec![IntExpr::Var(VarId(0)), IntExpr::Const(3)]);
        assert!(!t.is_concrete());
        assert_eq!(t.concrete_shape(), None);
        assert_eq!(t.dim(0), IntExpr::Var(VarId(0)));
        assert_eq!(t.dim(1), IntExpr::Const(3));
    }

    #[test]
    fn numel_expr_folds_constants() {
        let t = TensorType::concrete(DType::F32, &[62, 62, 2]);
        assert_eq!(t.numel_expr().as_const(), Some(7688));
    }

    #[test]
    fn concretize_with_model() {
        use nnsmith_solver::Solver;
        let mut s = Solver::default();
        let v = s.new_var("d", 1, 10);
        s.assert(IntExpr::var(v).ge(4.into()));
        let model = s.check().model().cloned().unwrap();
        let t = TensorType::new_in(s.pool(), DType::F32, vec![IntExpr::Var(v)]);
        let c = t.concretize(&model);
        assert!(c.is_concrete());
        assert!(c.pool().same_pool(s.pool()), "concretize stays in-pool");
        assert_eq!(c.concrete_shape().unwrap()[0], model.get(v).unwrap());
    }

    #[test]
    fn display_format() {
        let t = TensorType::concrete(DType::F32, &[1, 2]);
        assert_eq!(format!("{t}"), "f32[1,2]");
    }

    #[test]
    fn equal_types_share_handles_within_a_pool() {
        // Hash-consing: structurally equal shapes interned into the same
        // pool get the same ids, so equality is a handle comparison.
        let pool = InternPool::default();
        let a = TensorType::concrete_in(&pool, DType::F32, &[7, 9]);
        let b = TensorType::concrete_in(&pool, DType::F32, &[7, 9]);
        assert_eq!(a.dim_ids(), b.dim_ids());
        assert_eq!(a, b);
    }

    #[test]
    fn cross_pool_equality_is_structural() {
        let a = TensorType::concrete(DType::F32, &[7, 9]);
        let b = TensorType::concrete(DType::F32, &[7, 9]);
        assert!(!a.pool().same_pool(b.pool()));
        assert_eq!(a, b);
        let c = TensorType::concrete(DType::F32, &[7, 10]);
        assert_ne!(a, c);
        let d = TensorType::concrete(DType::F64, &[7, 9]);
        assert_ne!(a, d);
    }

    #[test]
    fn hash_is_pool_independent() {
        use std::collections::hash_map::DefaultHasher;
        let hash = |t: &TensorType| {
            let mut h = DefaultHasher::new();
            t.hash(&mut h);
            h.finish()
        };
        let a = TensorType::new(
            DType::F32,
            vec![IntExpr::Var(VarId(1)) * 2.into(), IntExpr::Const(3)],
        );
        let pool = InternPool::default();
        let b = TensorType::new_in(
            &pool,
            DType::F32,
            vec![IntExpr::Var(VarId(1)) * 2.into(), IntExpr::Const(3)],
        );
        assert_eq!(a, b);
        assert_eq!(hash(&a), hash(&b));
    }

    #[test]
    fn rehomed_moves_between_pools() {
        let campaign = InternPool::default();
        let t = TensorType::new(
            DType::F32,
            vec![IntExpr::Var(VarId(0)) + 1.into(), IntExpr::Const(8)],
        );
        let moved = t.rehomed(&campaign);
        assert!(moved.pool().same_pool(&campaign));
        assert_eq!(moved, t);
        // Identity when already home.
        let again = moved.rehomed(&campaign);
        assert_eq!(again.dim_ids(), moved.dim_ids());
    }

    #[test]
    fn with_dtype_keeps_shape() {
        let a = TensorType::concrete(DType::F32, &[4, 4]);
        let b = a.with_dtype(DType::I64);
        assert_eq!(b.dtype, DType::I64);
        assert_eq!(b.dim_ids(), a.dim_ids());
    }

    #[test]
    fn serde_roundtrip() {
        let t = TensorType::new(
            DType::F32,
            vec![
                IntExpr::Var(VarId(3)) + IntExpr::Const(1),
                IntExpr::Const(8),
            ],
        );
        let js = serde::json::to_string(&t);
        let back: TensorType = serde::json::from_str(&js).expect("decodes");
        assert_eq!(back, t);
        assert_eq!(serde::json::to_string(&back), js);
    }
}
