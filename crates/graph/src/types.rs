//! Tensor types: dtype plus (possibly symbolic) shape.

use std::fmt;

use serde::{json, Deserialize, Serialize};

use nnsmith_solver::{intern, ExprId, IntExpr, Model};
use nnsmith_tensor::DType;

/// The type of a tensor flowing along a graph edge: an element dtype and a
/// shape whose dimensions may be symbolic solver expressions.
///
/// During generation shapes are symbolic; after the solver produces a model
/// the graph is concretized and every dimension becomes a constant.
///
/// Dimensions are stored as interned [`ExprId`] handles into the
/// process-wide hash-consing arena (`nnsmith_solver::intern`), so cloning a
/// type — and therefore cloning a whole graph during concretization, shard
/// setup or triage reduction — copies machine words instead of expression
/// trees. The tree-form API ([`TensorType::dim`], [`TensorType::dims`])
/// reconstructs owned [`IntExpr`]s for constraint building.
///
/// # Examples
///
/// ```
/// use nnsmith_graph::TensorType;
/// use nnsmith_tensor::DType;
///
/// let t = TensorType::concrete(DType::F32, &[1, 3, 64, 64]);
/// assert_eq!(t.rank(), 4);
/// assert_eq!(t.concrete_shape(), Some(vec![1, 3, 64, 64]));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TensorType {
    /// Element type.
    pub dtype: DType,
    /// Shape; each dimension is a handle to an interned integer expression.
    shape: Vec<ExprId>,
}

impl TensorType {
    /// Builds a type with (possibly symbolic) dimensions, interning each.
    pub fn new(dtype: DType, shape: Vec<IntExpr>) -> Self {
        TensorType {
            dtype,
            shape: intern::intern_int_many(&shape),
        }
    }

    /// Builds a type directly from interned dimension handles.
    pub fn from_dim_ids(dtype: DType, shape: Vec<ExprId>) -> Self {
        TensorType { dtype, shape }
    }

    /// Builds a fully-concrete type.
    pub fn concrete(dtype: DType, dims: &[i64]) -> Self {
        TensorType {
            dtype,
            shape: intern::with_pool(|p| dims.iter().map(|&d| p.constant(d)).collect()),
        }
    }

    /// The same shape with a different element type (cheap: handles are
    /// copied, no trees are rebuilt).
    pub fn with_dtype(&self, dtype: DType) -> Self {
        TensorType {
            dtype,
            shape: self.shape.clone(),
        }
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// The interned dimension handles.
    pub fn dim_ids(&self) -> &[ExprId] {
        &self.shape
    }

    /// Dimension `i` as an owned expression tree.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn dim(&self, i: usize) -> IntExpr {
        intern::int_expr_of(self.shape[i])
    }

    /// Every dimension as an owned expression tree (one arena guard).
    pub fn dims(&self) -> Vec<IntExpr> {
        let pool = intern::read_pool();
        self.shape.iter().map(|&id| pool.to_int_expr(id)).collect()
    }

    /// The concrete shape if every dimension is a constant.
    pub fn concrete_shape(&self) -> Option<Vec<i64>> {
        let pool = intern::read_pool();
        self.shape.iter().map(|&id| pool.as_const(id)).collect()
    }

    /// The concrete shape as `usize` dims (for tensor allocation), if the
    /// type is concrete and every dim is non-negative.
    pub fn concrete_dims(&self) -> Option<Vec<usize>> {
        self.concrete_shape()?
            .into_iter()
            .map(|d| usize::try_from(d).ok())
            .collect()
    }

    /// True if every dimension is a constant.
    pub fn is_concrete(&self) -> bool {
        let pool = intern::read_pool();
        self.shape.iter().all(|&id| pool.as_const(id).is_some())
    }

    /// Symbolic element count (the product of all dimensions).
    pub fn numel_expr(&self) -> IntExpr {
        self.dims()
            .into_iter()
            .fold(IntExpr::Const(1), |acc, d| acc * d)
    }

    /// Substitutes solver-model values into every dimension.
    ///
    /// Dimensions whose variables are missing from the model are left
    /// symbolic.
    pub fn concretize(&self, model: &Model) -> TensorType {
        let shape = intern::with_pool(|p| {
            self.shape
                .iter()
                .map(|&id| match p.eval_int(id, &|v| model.get(v)) {
                    Some(v) => p.constant(v),
                    None => id,
                })
                .collect()
        });
        TensorType {
            dtype: self.dtype,
            shape,
        }
    }
}

impl fmt::Display for TensorType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[", self.dtype)?;
        for (i, d) in self.dims().iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

// Interned handles are process-local, so the wire form is the expression
// tree: serialization reconstructs `IntExpr`s and deserialization re-interns
// them, keeping the JSON shape identical to the old owned-tree derive.
impl Serialize for TensorType {
    fn serialize_value(&self, out: &mut String) {
        out.push_str("{\"dtype\":");
        self.dtype.serialize_value(out);
        out.push_str(",\"shape\":");
        self.dims().serialize_value(out);
        out.push('}');
    }
}

impl Deserialize for TensorType {
    fn deserialize(v: &json::Value) -> Result<Self, json::Error> {
        let dtype = DType::deserialize(json::obj_get(v, "dtype")?)?;
        let shape: Vec<IntExpr> = Vec::deserialize(json::obj_get(v, "shape")?)?;
        Ok(TensorType::new(dtype, shape))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnsmith_solver::VarId;

    #[test]
    fn concrete_roundtrip() {
        let t = TensorType::concrete(DType::I64, &[2, 3]);
        assert!(t.is_concrete());
        assert_eq!(t.concrete_shape(), Some(vec![2, 3]));
        assert_eq!(t.concrete_dims(), Some(vec![2usize, 3usize]));
    }

    #[test]
    fn symbolic_is_not_concrete() {
        let t = TensorType::new(DType::F32, vec![IntExpr::Var(VarId(0)), IntExpr::Const(3)]);
        assert!(!t.is_concrete());
        assert_eq!(t.concrete_shape(), None);
        assert_eq!(t.dim(0), IntExpr::Var(VarId(0)));
        assert_eq!(t.dim(1), IntExpr::Const(3));
    }

    #[test]
    fn numel_expr_folds_constants() {
        let t = TensorType::concrete(DType::F32, &[62, 62, 2]);
        assert_eq!(t.numel_expr().as_const(), Some(7688));
    }

    #[test]
    fn concretize_with_model() {
        use nnsmith_solver::Solver;
        let mut s = Solver::default();
        let v = s.new_var("d", 1, 10);
        s.assert(IntExpr::var(v).ge(4.into()));
        let model = s.check().model().cloned().unwrap();
        let t = TensorType::new(DType::F32, vec![IntExpr::Var(v)]);
        let c = t.concretize(&model);
        assert!(c.is_concrete());
        assert_eq!(c.concrete_shape().unwrap()[0], model.get(v).unwrap());
    }

    #[test]
    fn display_format() {
        let t = TensorType::concrete(DType::F32, &[1, 2]);
        assert_eq!(format!("{t}"), "f32[1,2]");
    }

    #[test]
    fn equal_types_share_handles() {
        // Hash-consing: structurally equal shapes intern to the same ids,
        // so equality is a handle comparison.
        let a = TensorType::concrete(DType::F32, &[7, 9]);
        let b = TensorType::concrete(DType::F32, &[7, 9]);
        assert_eq!(a.dim_ids(), b.dim_ids());
        assert_eq!(a, b);
    }

    #[test]
    fn with_dtype_keeps_shape() {
        let a = TensorType::concrete(DType::F32, &[4, 4]);
        let b = a.with_dtype(DType::I64);
        assert_eq!(b.dtype, DType::I64);
        assert_eq!(b.dim_ids(), a.dim_ids());
    }

    #[test]
    fn serde_roundtrip() {
        let t = TensorType::new(
            DType::F32,
            vec![
                IntExpr::Var(VarId(3)) + IntExpr::Const(1),
                IntExpr::Const(8),
            ],
        );
        let js = serde::json::to_string(&t);
        let back: TensorType = serde::json::from_str(&js).expect("decodes");
        assert_eq!(back, t);
        assert_eq!(serde::json::to_string(&back), js);
    }
}
