//! Tensor types: dtype plus (possibly symbolic) shape.

use std::fmt;

use serde::{Deserialize, Serialize};

use nnsmith_solver::{IntExpr, Model};
use nnsmith_tensor::DType;

/// The type of a tensor flowing along a graph edge: an element dtype and a
/// shape whose dimensions may be symbolic solver expressions.
///
/// During generation shapes are symbolic; after the solver produces a model
/// the graph is concretized and every dimension becomes a constant.
///
/// # Examples
///
/// ```
/// use nnsmith_graph::TensorType;
/// use nnsmith_tensor::DType;
///
/// let t = TensorType::concrete(DType::F32, &[1, 3, 64, 64]);
/// assert_eq!(t.rank(), 4);
/// assert_eq!(t.concrete_shape(), Some(vec![1, 3, 64, 64]));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TensorType {
    /// Element type.
    pub dtype: DType,
    /// Shape; each dimension is an integer expression.
    pub shape: Vec<IntExpr>,
}

impl TensorType {
    /// Builds a type with symbolic dimensions.
    pub fn new(dtype: DType, shape: Vec<IntExpr>) -> Self {
        TensorType { dtype, shape }
    }

    /// Builds a fully-concrete type.
    pub fn concrete(dtype: DType, dims: &[i64]) -> Self {
        TensorType {
            dtype,
            shape: dims.iter().map(|&d| IntExpr::Const(d)).collect(),
        }
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// The concrete shape if every dimension is a constant.
    pub fn concrete_shape(&self) -> Option<Vec<i64>> {
        self.shape.iter().map(IntExpr::as_const).collect()
    }

    /// The concrete shape as `usize` dims (for tensor allocation), if the
    /// type is concrete and every dim is non-negative.
    pub fn concrete_dims(&self) -> Option<Vec<usize>> {
        self.concrete_shape()?
            .into_iter()
            .map(|d| usize::try_from(d).ok())
            .collect()
    }

    /// True if every dimension is a constant.
    pub fn is_concrete(&self) -> bool {
        self.concrete_shape().is_some()
    }

    /// Symbolic element count (the product of all dimensions).
    pub fn numel_expr(&self) -> IntExpr {
        self.shape
            .iter()
            .fold(IntExpr::Const(1), |acc, d| acc * d.clone())
    }

    /// Substitutes solver-model values into every dimension.
    ///
    /// Dimensions whose variables are missing from the model are left
    /// symbolic.
    pub fn concretize(&self, model: &Model) -> TensorType {
        TensorType {
            dtype: self.dtype,
            shape: self
                .shape
                .iter()
                .map(|d| match model.eval_int(d) {
                    Some(v) => IntExpr::Const(v),
                    None => d.clone(),
                })
                .collect(),
        }
    }
}

impl fmt::Display for TensorType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[", self.dtype)?;
        for (i, d) in self.shape.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnsmith_solver::VarId;

    #[test]
    fn concrete_roundtrip() {
        let t = TensorType::concrete(DType::I64, &[2, 3]);
        assert!(t.is_concrete());
        assert_eq!(t.concrete_shape(), Some(vec![2, 3]));
        assert_eq!(t.concrete_dims(), Some(vec![2usize, 3usize]));
    }

    #[test]
    fn symbolic_is_not_concrete() {
        let t = TensorType::new(DType::F32, vec![IntExpr::Var(VarId(0)), IntExpr::Const(3)]);
        assert!(!t.is_concrete());
        assert_eq!(t.concrete_shape(), None);
    }

    #[test]
    fn numel_expr_folds_constants() {
        let t = TensorType::concrete(DType::F32, &[62, 62, 2]);
        assert_eq!(t.numel_expr().as_const(), Some(7688));
    }

    #[test]
    fn concretize_with_model() {
        use nnsmith_solver::Solver;
        let mut s = Solver::default();
        let v = s.new_var("d", 1, 10);
        s.assert(IntExpr::var(v).ge(4.into()));
        let model = s.check().model().cloned().unwrap();
        let t = TensorType::new(DType::F32, vec![IntExpr::Var(v)]);
        let c = t.concretize(&model);
        assert!(c.is_concrete());
        assert_eq!(c.concrete_shape().unwrap()[0], model.get(v).unwrap());
    }

    #[test]
    fn display_format() {
        let t = TensorType::concrete(DType::F32, &[1, 2]);
        assert_eq!(format!("{t}"), "f32[1,2]");
    }
}
