//! The computation-graph IR.
//!
//! A [`Graph`] is a DAG of nodes. Each node is either a *placeholder* (a
//! value that will become a model input or a weight), an *input*, a
//! *weight*, or an *operator* whose payload type is the generic parameter
//! `Op`. Values are referenced as `(node, output index)` pairs.
//!
//! The generator (crate `nnsmith-gen`) grows symbolic graphs; the pipeline
//! then concretizes shapes with a solver model, finalizes placeholders into
//! inputs/weights, and hands the concrete graph to executors and compilers.

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::types::TensorType;

/// Identifier of a node within a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Reference to one output value of a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ValueRef {
    /// Producing node.
    pub node: NodeId,
    /// Output slot of the producing node.
    pub index: usize,
}

impl ValueRef {
    /// The first output of `node`.
    pub fn output0(node: NodeId) -> ValueRef {
        ValueRef { node, index: 0 }
    }
}

impl fmt::Display for ValueRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.node, self.index)
    }
}

/// What a node is.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum NodeKind<Op> {
    /// A value to be decided later: becomes an input or a weight when the
    /// graph is finalized (§3.2 of the paper).
    Placeholder,
    /// A model input (fed at inference time).
    Input,
    /// A model weight (a constant baked into the model).
    Weight,
    /// An operator with payload `Op`.
    Operator(Op),
}

impl<Op> NodeKind<Op> {
    /// True for [`NodeKind::Placeholder`].
    pub fn is_placeholder(&self) -> bool {
        matches!(self, NodeKind::Placeholder)
    }

    /// The operator payload, if this is an operator node.
    pub fn as_operator(&self) -> Option<&Op> {
        match self {
            NodeKind::Operator(op) => Some(op),
            _ => None,
        }
    }
}

/// A node: kind, input value references and output types.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node<Op> {
    /// What the node is.
    pub kind: NodeKind<Op>,
    /// Values consumed by this node (empty for non-operators).
    pub inputs: Vec<ValueRef>,
    /// Types of the values this node produces.
    pub outputs: Vec<TensorType>,
}

/// Structural errors detected by [`Graph::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A node references a value that does not exist.
    DanglingRef {
        /// The offending node.
        node: NodeId,
        /// The reference that does not resolve.
        target: String,
    },
    /// A cycle was detected.
    Cycle,
    /// A non-operator node has inputs.
    LeafWithInputs(NodeId),
    /// The graph has no output values.
    NoOutputs,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::DanglingRef { node, target } => {
                write!(f, "node {node} references missing value {target}")
            }
            GraphError::Cycle => write!(f, "graph contains a cycle"),
            GraphError::LeafWithInputs(n) => write!(f, "non-operator node {n} has inputs"),
            GraphError::NoOutputs => write!(f, "graph has no output values"),
        }
    }
}

impl std::error::Error for GraphError {}

/// A DNN computation graph with operator payload `Op`.
///
/// # Examples
///
/// ```
/// use nnsmith_graph::{Graph, NodeKind, TensorType, ValueRef};
/// use nnsmith_tensor::DType;
///
/// // A one-op graph: out = Op(input).
/// let mut g: Graph<&'static str> = Graph::new();
/// let x = g.add_node(NodeKind::Input, vec![], vec![TensorType::concrete(DType::F32, &[4])]);
/// let y = g.add_node(
///     NodeKind::Operator("Relu"),
///     vec![ValueRef::output0(x)],
///     vec![TensorType::concrete(DType::F32, &[4])],
/// );
/// assert_eq!(g.topo_order().unwrap(), vec![x, y]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Graph<Op> {
    nodes: Vec<Node<Op>>,
}

impl<Op> Default for Graph<Op> {
    fn default() -> Self {
        Graph { nodes: Vec::new() }
    }
}

impl<Op> Graph<Op> {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Adds a node and returns its id.
    pub fn add_node(
        &mut self,
        kind: NodeKind<Op>,
        inputs: Vec<ValueRef>,
        outputs: Vec<TensorType>,
    ) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            kind,
            inputs,
            outputs,
        });
        id
    }

    /// Convenience: adds a placeholder with a single output type.
    pub fn add_placeholder(&mut self, ttype: TensorType) -> NodeId {
        self.add_node(NodeKind::Placeholder, vec![], vec![ttype])
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Borrow a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: NodeId) -> &Node<Op> {
        &self.nodes[id.0 as usize]
    }

    /// Mutably borrow a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node_mut(&mut self, id: NodeId) -> &mut Node<Op> {
        &mut self.nodes[id.0 as usize]
    }

    /// Iterates over `(id, node)` pairs in creation order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &Node<Op>)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId(i as u32), n))
    }

    /// The type of a value.
    ///
    /// # Panics
    ///
    /// Panics if the reference is out of range.
    pub fn value_type(&self, v: ValueRef) -> &TensorType {
        &self.node(v.node).outputs[v.index]
    }

    /// Ids of all placeholder nodes.
    pub fn placeholders(&self) -> Vec<NodeId> {
        self.iter()
            .filter(|(_, n)| n.kind.is_placeholder())
            .map(|(id, _)| id)
            .collect()
    }

    /// Ids of all operator nodes.
    pub fn operators(&self) -> Vec<NodeId> {
        self.iter()
            .filter(|(_, n)| matches!(n.kind, NodeKind::Operator(_)))
            .map(|(id, _)| id)
            .collect()
    }

    /// Every value in the graph (all outputs of all nodes).
    pub fn all_values(&self) -> Vec<ValueRef> {
        let mut out = Vec::new();
        for (id, n) in self.iter() {
            for index in 0..n.outputs.len() {
                out.push(ValueRef { node: id, index });
            }
        }
        out
    }

    /// Number of consumers of each value.
    pub fn consumer_counts(&self) -> HashMap<ValueRef, usize> {
        let mut counts: HashMap<ValueRef, usize> = HashMap::new();
        for (_, n) in self.iter() {
            for &v in &n.inputs {
                *counts.entry(v).or_insert(0) += 1;
            }
        }
        counts
    }

    /// Values with no consumer — the model outputs.
    pub fn output_values(&self) -> Vec<ValueRef> {
        let counts = self.consumer_counts();
        self.all_values()
            .into_iter()
            .filter(|v| !counts.contains_key(v))
            .collect()
    }

    /// Topological order of node ids.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Cycle`] if the graph is cyclic and
    /// [`GraphError::DanglingRef`] for unresolvable references.
    pub fn topo_order(&self) -> Result<Vec<NodeId>, GraphError> {
        let n = self.nodes.len();
        let mut indegree = vec![0usize; n];
        let mut consumers: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, node) in self.nodes.iter().enumerate() {
            for v in &node.inputs {
                let p = v.node.0 as usize;
                if p >= n || v.index >= self.nodes[p].outputs.len() {
                    return Err(GraphError::DanglingRef {
                        node: NodeId(i as u32),
                        target: format!("{v}"),
                    });
                }
                indegree[i] += 1;
                consumers[p].push(i);
            }
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        let mut head = 0;
        while head < queue.len() {
            let cur = queue[head];
            head += 1;
            order.push(NodeId(cur as u32));
            for &c in &consumers[cur] {
                indegree[c] -= 1;
                if indegree[c] == 0 {
                    queue.push(c);
                }
            }
        }
        if order.len() != n {
            return Err(GraphError::Cycle);
        }
        Ok(order)
    }

    /// Structural validation: references resolve, no cycles, leaves have no
    /// inputs, and at least one output exists.
    ///
    /// # Errors
    ///
    /// Returns the first [`GraphError`] found.
    pub fn validate(&self) -> Result<(), GraphError> {
        for (id, node) in self.iter() {
            if !matches!(node.kind, NodeKind::Operator(_)) && !node.inputs.is_empty() {
                return Err(GraphError::LeafWithInputs(id));
            }
        }
        self.topo_order()?;
        if !self.is_empty() && self.output_values().is_empty() {
            return Err(GraphError::NoOutputs);
        }
        Ok(())
    }

    /// True if every edge type in the graph is concrete.
    pub fn is_concrete(&self) -> bool {
        self.nodes
            .iter()
            .all(|n| n.outputs.iter().all(TensorType::is_concrete))
    }

    /// Replaces every remaining placeholder with `Input` or `Weight`
    /// according to `decide` (the finalization step of §3.2: "placeholder
    /// nodes are replaced by input nodes or by weights").
    pub fn finalize_placeholders(&mut self, mut decide: impl FnMut(NodeId) -> NodeKind<Op>) {
        for i in 0..self.nodes.len() {
            if self.nodes[i].kind.is_placeholder() {
                let kind = decide(NodeId(i as u32));
                debug_assert!(!kind.is_placeholder());
                self.nodes[i].kind = kind;
            }
        }
    }

    /// The same graph with every tensor type re-interned into `pool`
    /// (identity handles for types already there). Replay and decode paths
    /// use this to reconstruct a case inside one fresh campaign pool
    /// instead of the per-type private pools deserialization creates.
    pub fn rehomed(&self, pool: &nnsmith_solver::InternPool) -> Graph<Op>
    where
        Op: Clone,
    {
        Graph {
            nodes: self
                .nodes
                .iter()
                .map(|n| Node {
                    kind: n.kind.clone(),
                    inputs: n.inputs.clone(),
                    outputs: n.outputs.iter().map(|t| t.rehomed(pool)).collect(),
                })
                .collect(),
        }
    }

    /// Maps operator payloads, preserving structure.
    pub fn map_ops<Op2>(&self, mut f: impl FnMut(&Op) -> Op2) -> Graph<Op2>
    where
        Op: Clone,
    {
        Graph {
            nodes: self
                .nodes
                .iter()
                .map(|n| Node {
                    kind: match &n.kind {
                        NodeKind::Placeholder => NodeKind::Placeholder,
                        NodeKind::Input => NodeKind::Input,
                        NodeKind::Weight => NodeKind::Weight,
                        NodeKind::Operator(op) => NodeKind::Operator(f(op)),
                    },
                    inputs: n.inputs.clone(),
                    outputs: n.outputs.clone(),
                })
                .collect(),
        }
    }
}

impl<Op: fmt::Display> Graph<Op> {
    /// Pretty-prints the graph in the paper's Figure-1 style.
    pub fn to_text(&self) -> String {
        use fmt::Write as _;
        let mut s = String::new();
        let inputs: Vec<String> = self
            .iter()
            .filter(|(_, n)| matches!(n.kind, NodeKind::Input | NodeKind::Placeholder))
            .map(|(id, _)| format!("%{id}"))
            .collect();
        let _ = writeln!(s, "def main({}) {{", inputs.join(", "));
        let order = self
            .topo_order()
            .unwrap_or_else(|_| (0..self.nodes.len() as u32).map(NodeId).collect::<Vec<_>>());
        for id in order {
            let n = self.node(id);
            match &n.kind {
                NodeKind::Placeholder => {
                    let _ = writeln!(s, "  %{id} = placeholder() : {}", n.outputs[0]);
                }
                NodeKind::Input => {
                    let _ = writeln!(s, "  %{id} = input() : {}", n.outputs[0]);
                }
                NodeKind::Weight => {
                    let _ = writeln!(s, "  %{id} = weight() : {}", n.outputs[0]);
                }
                NodeKind::Operator(op) => {
                    let args: Vec<String> =
                        n.inputs.iter().map(|v| format!("%{}", v.node)).collect();
                    let outs: Vec<String> = n.outputs.iter().map(|t| format!("{t}")).collect();
                    let _ = writeln!(
                        s,
                        "  %{id} = {op}({}) : {}",
                        args.join(", "),
                        outs.join(", ")
                    );
                }
            }
        }
        let outs: Vec<String> = self
            .output_values()
            .iter()
            .map(|v| format!("%{}", v.node))
            .collect();
        let _ = writeln!(s, "  return {}", outs.join(", "));
        s.push('}');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnsmith_tensor::DType;

    fn ttype(dims: &[i64]) -> TensorType {
        TensorType::concrete(DType::F32, dims)
    }

    fn chain3() -> (Graph<&'static str>, NodeId, NodeId, NodeId) {
        let mut g: Graph<&'static str> = Graph::new();
        let a = g.add_node(NodeKind::Input, vec![], vec![ttype(&[4])]);
        let b = g.add_node(
            NodeKind::Operator("Relu"),
            vec![ValueRef::output0(a)],
            vec![ttype(&[4])],
        );
        let c = g.add_node(
            NodeKind::Operator("Sigmoid"),
            vec![ValueRef::output0(b)],
            vec![ttype(&[4])],
        );
        (g, a, b, c)
    }

    #[test]
    fn topo_order_simple_chain() {
        let (g, a, b, c) = chain3();
        assert_eq!(g.topo_order().unwrap(), vec![a, b, c]);
    }

    #[test]
    fn topo_order_out_of_creation_order() {
        // Backward insertion creates producers after consumers.
        let mut g: Graph<&'static str> = Graph::new();
        let ph = g.add_placeholder(ttype(&[4]));
        let op = g.add_node(
            NodeKind::Operator("Relu"),
            vec![ValueRef::output0(ph)],
            vec![ttype(&[4])],
        );
        // Replace placeholder with an operator whose input is a NEW node.
        let newer = g.add_placeholder(ttype(&[4]));
        g.node_mut(ph).kind = NodeKind::Operator("Neg");
        g.node_mut(ph).inputs = vec![ValueRef::output0(newer)];
        let order = g.topo_order().unwrap();
        let pos = |id: NodeId| order.iter().position(|&x| x == id).expect("node in order");
        assert!(pos(newer) < pos(ph));
        assert!(pos(ph) < pos(op));
    }

    #[test]
    fn cycle_detected() {
        let mut g: Graph<&'static str> = Graph::new();
        let a = g.add_node(NodeKind::Operator("A"), vec![], vec![ttype(&[1])]);
        let b = g.add_node(
            NodeKind::Operator("B"),
            vec![ValueRef::output0(a)],
            vec![ttype(&[1])],
        );
        g.node_mut(a).inputs = vec![ValueRef::output0(b)];
        assert_eq!(g.topo_order(), Err(GraphError::Cycle));
    }

    #[test]
    fn dangling_ref_detected() {
        let mut g: Graph<&'static str> = Graph::new();
        let _ = g.add_node(
            NodeKind::Operator("A"),
            vec![ValueRef {
                node: NodeId(99),
                index: 0,
            }],
            vec![ttype(&[1])],
        );
        assert!(matches!(
            g.topo_order(),
            Err(GraphError::DanglingRef { .. })
        ));
    }

    #[test]
    fn outputs_are_unconsumed_values() {
        let (g, _, _, c) = chain3();
        let outs = g.output_values();
        assert_eq!(outs, vec![ValueRef::output0(c)]);
    }

    #[test]
    fn multi_output_counted() {
        let mut g: Graph<&'static str> = Graph::new();
        let a = g.add_node(NodeKind::Input, vec![], vec![ttype(&[4])]);
        let split = g.add_node(
            NodeKind::Operator("Split"),
            vec![ValueRef::output0(a)],
            vec![ttype(&[2]), ttype(&[2])],
        );
        let outs = g.output_values();
        assert_eq!(outs.len(), 2);
        assert!(outs.contains(&ValueRef {
            node: split,
            index: 1
        }));
    }

    #[test]
    fn validate_ok_and_leaf_with_inputs() {
        let (g, a, ..) = chain3();
        assert!(g.validate().is_ok());
        let mut g2 = g.clone();
        g2.node_mut(a).inputs = vec![ValueRef::output0(a)];
        assert!(matches!(g2.validate(), Err(GraphError::LeafWithInputs(_))));
    }

    #[test]
    fn finalize_placeholders_replaces_all() {
        let mut g: Graph<&'static str> = Graph::new();
        let p1 = g.add_placeholder(ttype(&[4]));
        let _p2 = g.add_placeholder(ttype(&[4]));
        g.finalize_placeholders(|id| {
            if id == p1 {
                NodeKind::Input
            } else {
                NodeKind::Weight
            }
        });
        assert!(g.placeholders().is_empty());
        assert!(matches!(g.node(p1).kind, NodeKind::Input));
    }

    #[test]
    fn text_dump_mentions_ops() {
        let (g, ..) = chain3();
        let txt = g.to_text();
        assert!(txt.contains("Relu"));
        assert!(txt.contains("return"));
    }

    #[test]
    fn serde_roundtrip() {
        let (g, ..) = chain3();
        let js = serde::json::to_string(&g);
        assert_eq!(js, serde::json::to_string(&g.clone()), "stable encoding");
        assert!(js.contains("\"Relu\""), "operator payload present: {js}");
        let nodes = js.matches("\"kind\"").count();
        assert_eq!(nodes, g.len(), "one kind field per node");
        // Full round-trip: decode and compare structurally and byte-wise.
        let back: Graph<String> = serde::json::from_str(&js).expect("decodes");
        assert_eq!(back.len(), g.len());
        assert_eq!(back.topo_order().unwrap(), g.topo_order().unwrap());
        assert_eq!(
            serde::json::to_string(&back),
            js,
            "byte-identical re-encode"
        );
    }

    #[test]
    fn map_ops_preserves_structure() {
        let (g, ..) = chain3();
        let g2 = g.map_ops(|op| op.len());
        assert_eq!(g2.len(), g.len());
        assert_eq!(g2.topo_order().unwrap(), g.topo_order().unwrap());
    }
}
