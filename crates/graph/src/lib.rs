//! # nnsmith-graph
//!
//! The DNN computation-graph IR of the NNSmith reproduction.
//!
//! A model is a DAG of tensor operators ([`Graph`]) whose edges carry
//! [`TensorType`]s — dtype plus a shape whose dimensions may still be
//! symbolic solver expressions during generation. The crate provides the
//! structural machinery the rest of the pipeline builds on: node/value
//! references, topological sorting, placeholder finalization (placeholders
//! become model inputs or weights, §3.2 of the paper), structural
//! validation, serde-JSON serialization (the ONNX-interchange role), and a
//! Figure-1-style textual dump.
//!
//! ## Example
//!
//! ```
//! use nnsmith_graph::{Graph, NodeKind, TensorType, ValueRef};
//! use nnsmith_tensor::DType;
//!
//! let mut g: Graph<String> = Graph::new();
//! let x = g.add_node(NodeKind::Input, vec![], vec![TensorType::concrete(DType::F32, &[1, 4])]);
//! g.add_node(
//!     NodeKind::Operator("Relu".to_string()),
//!     vec![ValueRef::output0(x)],
//!     vec![TensorType::concrete(DType::F32, &[1, 4])],
//! );
//! assert!(g.validate().is_ok());
//! println!("{}", g.to_text());
//! ```

#![warn(missing_docs)]

mod graph;
mod types;

pub use graph::{Graph, GraphError, Node, NodeId, NodeKind, ValueRef};
pub use types::TensorType;
