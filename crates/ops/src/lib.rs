//! # nnsmith-ops
//!
//! Operator specifications for the NNSmith reproduction — the Rust
//! counterpart of the paper's `AbsOpBase` framework (Listing 2).
//!
//! Every operator provides five facets:
//!
//! * **`requires`** — validity constraints over symbolic input shapes and
//!   attributes, handed to the solver during graph generation;
//! * **`type_transfer`** — output tensor types as expressions of the
//!   inputs (shape inference);
//! * **`eval`** — concrete reference execution on `nnsmith-tensor`;
//! * **`vjp`** — reverse-mode gradients (with the paper's proxy
//!   derivatives) powering the gradient-guided value search;
//! * **`violation_loss`** — Table-1 loss functions for avoiding NaN/Inf.
//!
//! Templates ([`OpTemplate`], [`all_templates`]) are what the generator
//! samples: instantiating one fixes structural attributes and allocates
//! solver variables for numeric attributes.
//!
//! ## Example
//!
//! ```
//! use nnsmith_ops::Op;
//! use nnsmith_graph::TensorType;
//! use nnsmith_solver::IntExpr;
//! use nnsmith_tensor::DType;
//!
//! // Pool2d spec in three lines (cf. Listing 2 of the paper):
//! let pool = Op::MaxPool2d {
//!     kh: IntExpr::Const(3), kw: IntExpr::Const(3),
//!     stride: IntExpr::Const(2), padding: IntExpr::Const(1),
//! };
//! let x = TensorType::concrete(DType::F32, &[1, 2, 8, 8]);
//! let out = pool.type_transfer(std::slice::from_ref(&x))?;
//! assert_eq!(out[0].concrete_shape().unwrap(), vec![1, 2, 4, 4]);
//! # Ok::<(), nnsmith_ops::SpecError>(())
//! ```

#![warn(missing_docs)]
#![allow(clippy::cloned_ref_to_slice_refs)] // spec/vjp code favours explicit slices and index loops
#![allow(clippy::needless_range_loop)] // spec/vjp code favours explicit slices and index loops

mod eval;
mod exec;
mod grad;
mod memo;
mod op;
mod spec;
mod template;
mod vuln;

pub use exec::{execute, random_bindings, Bindings, ExecError, Execution};
pub use grad::PROXY_ALPHA;
pub use memo::OpMemo;
pub use op::{BinaryKind, CompareKind, LogicalKind, Op, PadKind, UnaryKind};
pub use spec::{broadcast_sym, SpecError};
pub use template::{all_templates, BuiltOp, OpTemplate, Slot, MAX_DIM, MAX_RANK};
pub use vuln::{ViolationLoss, EXP_BOUND, GENERIC_BOUND, LOSS_EPSILON};
