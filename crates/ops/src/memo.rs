//! LUT-style memoization of operator shape inference over interned ids.
//!
//! `Op::requires` and `Op::type_transfer` are pure functions of the
//! operator (including its symbolic attributes) and the input types'
//! structure. Generation instantiates the same op templates against
//! recurring shape subterms constantly, and triage's delta-debugging
//! re-type-checks near-identical graphs hundreds of times per reduction —
//! so re-deriving the symbolic outputs each time is wasted work. With
//! per-campaign [`InternPool`]s (PR 3) the inputs' dimension handles are
//! already hash-consed ids, which makes `(op, input dtype+dim-id vectors)`
//! a cheap, exact memo key: a table lookup replaces the whole symbolic
//! derivation, the pLUTo-style "lookup beats recompute" trade for small
//! dense domains.
//!
//! An [`OpMemo`] is scoped to one pool and caches:
//!
//! * `type_transfer` results as `(dtype, dim-id)` signatures, rebuilt
//!   into [`TensorType`]s via `TensorType::from_dim_ids` (no tree
//!   reconstruction);
//! * `requires` results as interned [`BoolId`] constraint handles, ready
//!   for `Solver::try_add_constraint_ids` — so a memo hit skips both the
//!   derivation *and* the re-interning of the constraint trees;
//! * spec failures ([`SpecError`]), which recur just as often during
//!   rejection sampling.
//!
//! Scope deliberately follows the *user*, not the pool: each generator
//! source and each reduction owns its memo. A table shared across shard
//! workers would make hit counts depend on thread interleaving and break
//! the `workers=1 ≡ workers=N` byte-equality of the exported `"arena"`
//! stats; per-worker tables make every worker's hit sequence — and thus
//! the summed [`InternPool::note_memo_hit`] counter — deterministic.
//!
//! Results are only semantically valid for ids of the memo's pool, so
//! every lookup first checks that all inputs live there and falls through
//! to the uncached call otherwise (foreign-pool types appear in triage's
//! rebuild phase, for example).

use std::collections::HashMap;
use std::sync::Mutex;

use nnsmith_graph::TensorType;
use nnsmith_solver::{BoolId, ExprId, InternPool};
use nnsmith_tensor::DType;

use crate::{Op, SpecError};

/// A type signature over interned handles: the memo key's input half and
/// the cached output form of `type_transfer`.
type TypeSig = Vec<(DType, Vec<ExprId>)>;

/// Lazily-filled per-key entry: one instantiation site usually wants both
/// facets, but `requires` failures short-circuit before `type_transfer`
/// is ever asked for.
#[derive(Default)]
struct MemoEntry {
    transfer: Option<Result<TypeSig, SpecError>>,
    requires: Option<Result<Vec<BoolId>, SpecError>>,
}

/// A pool-scoped memo table for [`Op::requires`] / [`Op::type_transfer`].
///
/// Create one per generator source or per reduction with the pool the
/// types live in; see the module docs for scoping rationale.
pub struct OpMemo {
    pool: InternPool,
    map: Mutex<HashMap<(Op, TypeSig), MemoEntry>>,
}

impl std::fmt::Debug for OpMemo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OpMemo")
            .field("entries", &self.map.lock().expect("op memo poisoned").len())
            .finish()
    }
}

impl OpMemo {
    /// Creates an empty memo over `pool`.
    pub fn new(pool: InternPool) -> Self {
        OpMemo {
            pool,
            map: Mutex::new(HashMap::new()),
        }
    }

    /// The pool this memo's cached handles belong to.
    pub fn pool(&self) -> &InternPool {
        &self.pool
    }

    /// Distinct `(op, input signature)` keys cached so far.
    pub fn len(&self) -> usize {
        self.map.lock().expect("op memo poisoned").len()
    }

    /// True when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The memo key for `op` over `inputs`, or `None` when any input's
    /// handles live in a different pool (cached ids would be meaningless
    /// there).
    fn key(&self, op: &Op, inputs: &[TensorType]) -> Option<(Op, TypeSig)> {
        let mut sig = Vec::with_capacity(inputs.len());
        for t in inputs {
            if !t.pool().same_pool(&self.pool) {
                return None;
            }
            sig.push((t.dtype, t.dim_ids().to_vec()));
        }
        Some((op.clone(), sig))
    }

    /// Memoized [`Op::type_transfer`]: symbolic output types for `inputs`,
    /// rebuilt from cached dim-id signatures on a hit.
    pub fn type_transfer(
        &self,
        op: &Op,
        inputs: &[TensorType],
    ) -> Result<Vec<TensorType>, SpecError> {
        let Some(key) = self.key(op, inputs) else {
            return op.type_transfer(inputs);
        };
        let mut map = self.map.lock().expect("op memo poisoned");
        let entry = map.entry(key).or_default();
        if let Some(cached) = &entry.transfer {
            self.pool.note_memo_hit();
            return self.rebuild(cached);
        }
        let result = op.type_transfer(inputs).map(|outs| {
            outs.iter()
                .map(|t| (t.dtype, t.dim_ids().to_vec()))
                .collect::<TypeSig>()
        });
        let rebuilt = self.rebuild(&result);
        entry.transfer = Some(result);
        rebuilt
    }

    /// Memoized [`Op::requires`], returned as interned constraint handles
    /// of the memo's pool (ready for `Solver::try_add_constraint_ids`). A
    /// hit skips both the symbolic derivation and the constraint-tree
    /// interning.
    pub fn requires_ids(&self, op: &Op, inputs: &[TensorType]) -> Result<Vec<BoolId>, SpecError> {
        let intern_all = |cs: Vec<nnsmith_solver::BoolExpr>| {
            cs.iter().map(|c| self.pool.intern_bool(c)).collect()
        };
        let Some(key) = self.key(op, inputs) else {
            return op.requires(inputs).map(intern_all);
        };
        let mut map = self.map.lock().expect("op memo poisoned");
        let entry = map.entry(key).or_default();
        if let Some(cached) = &entry.requires {
            self.pool.note_memo_hit();
            return cached.clone();
        }
        let result = op.requires(inputs).map(intern_all);
        entry.requires = Some(result.clone());
        result
    }

    fn rebuild(&self, sig: &Result<TypeSig, SpecError>) -> Result<Vec<TensorType>, SpecError> {
        match sig {
            Ok(outs) => Ok(outs
                .iter()
                .map(|(dt, ids)| TensorType::from_dim_ids(&self.pool, *dt, ids.clone()))
                .collect()),
            Err(e) => Err(e.clone()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnsmith_solver::{IntExpr, Solver, VarId};

    fn pool_types(pool: &InternPool) -> Vec<TensorType> {
        let t = TensorType::new_in(
            pool,
            DType::F32,
            vec![IntExpr::var(VarId(0)), IntExpr::var(VarId(1))],
        );
        vec![t.clone(), t]
    }

    #[test]
    fn transfer_hits_return_identical_types() {
        let pool = InternPool::default();
        let memo = OpMemo::new(pool.clone());
        let op = Op::Binary(crate::BinaryKind::Add);
        let inputs = pool_types(&pool);
        let cold = memo.type_transfer(&op, &inputs).expect("spec ok");
        let hits_before = pool.stats().memo_hits;
        let warm = memo.type_transfer(&op, &inputs).expect("spec ok");
        assert_eq!(cold, warm);
        assert_eq!(
            cold[0].dim_ids(),
            warm[0].dim_ids(),
            "hit must reuse the exact interned handles"
        );
        assert_eq!(pool.stats().memo_hits, hits_before + 1);
        // And both agree with the uncached derivation.
        let direct = op.type_transfer(&inputs).expect("spec ok");
        assert_eq!(cold, direct);
    }

    #[test]
    fn requires_hits_match_uncached_interning() {
        let pool = InternPool::default();
        let memo = OpMemo::new(pool.clone());
        let op = Op::MatMul;
        let a = TensorType::new_in(
            &pool,
            DType::F32,
            vec![IntExpr::var(VarId(0)), IntExpr::var(VarId(1))],
        );
        let b = TensorType::new_in(
            &pool,
            DType::F32,
            vec![IntExpr::var(VarId(1)), IntExpr::var(VarId(2))],
        );
        let inputs = [a, b];
        let cold = memo.requires_ids(&op, &inputs).expect("spec ok");
        let warm = memo.requires_ids(&op, &inputs).expect("spec ok");
        assert_eq!(cold, warm);
        let direct: Vec<_> = op
            .requires(&inputs)
            .expect("spec ok")
            .iter()
            .map(|c| pool.intern_bool(c))
            .collect();
        assert_eq!(cold, direct);
        // The handles drive the solver exactly like the tree path.
        let mut solver =
            Solver::with_config_in(nnsmith_solver::SolverConfig::default(), pool.clone());
        let x = solver.new_var("m", 1, 8);
        let y = solver.new_var("k", 1, 8);
        let z = solver.new_var("n", 1, 8);
        let _ = (x, y, z);
        for id in &cold {
            solver.assert_id(*id);
        }
        assert!(matches!(solver.check(), nnsmith_solver::SatResult::Sat(_)));
    }

    #[test]
    fn foreign_pool_inputs_fall_through_uncached() {
        let pool = InternPool::default();
        let other = InternPool::default();
        let memo = OpMemo::new(pool.clone());
        let op = Op::Binary(crate::BinaryKind::Mul);
        let inputs = pool_types(&other);
        let out = memo.type_transfer(&op, &inputs).expect("spec ok");
        // Outputs stay in the inputs' pool, nothing is cached, no hit is
        // recorded.
        assert!(out[0].pool().same_pool(&other));
        assert!(memo.is_empty());
        assert_eq!(pool.stats().memo_hits, 0);
    }

    #[test]
    fn spec_errors_are_cached_too() {
        let pool = InternPool::default();
        let memo = OpMemo::new(pool.clone());
        let op = Op::MatMul;
        // Scalar inputs are invalid for MatMul.
        let bad = vec![
            TensorType::new_in(&pool, DType::F32, vec![]),
            TensorType::new_in(&pool, DType::F32, vec![]),
        ];
        let cold = memo.type_transfer(&op, &bad);
        let warm = memo.type_transfer(&op, &bad);
        assert!(cold.is_err());
        assert_eq!(cold.err(), warm.err());
        assert!(pool.stats().memo_hits >= 1);
    }
}
