//! Symbolic operator templates — the "operator specifications" the
//! generator samples from (the `op` of Algorithm 1).
//!
//! A template is an operator *kind*; instantiating it fixes the structural
//! attributes (axes, ranks, dtypes, arity) and allocates solver variables
//! for the numeric attributes. The instantiation also reports, for
//! parameter inputs (convolution kernels, dense weights, batch-norm stats),
//! the symbolic tensor types of the fresh placeholders the generator must
//! create — their dimensions are expressions over the operator's attribute
//! variables, so shape consistency is by construction.

use rand::seq::SliceRandom;
use rand::Rng;

use nnsmith_graph::TensorType;
use nnsmith_solver::{IntExpr, Solver};
use nnsmith_tensor::{DType, ReduceKind};

use crate::op::{BinaryKind, CompareKind, LogicalKind, Op, PadKind, UnaryKind};

/// Maximum tensor rank generated.
pub const MAX_RANK: usize = 4;
/// Upper bound for placeholder dimensions (keeps fuzzing fast).
pub const MAX_DIM: i64 = 1 << 20;

/// One graph input slot of a template.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Slot {
    /// Element type this instance requires.
    pub dtype: DType,
    /// Exact rank this instance requires.
    pub rank: usize,
    /// True if the input should be wired to an existing graph value
    /// (otherwise it is an operator parameter: always a fresh placeholder).
    pub from_graph: bool,
}

/// An instantiated symbolic operator, ready for constraint solving.
#[derive(Debug, Clone)]
pub struct BuiltOp {
    /// The operator with symbolic attributes.
    pub op: Op,
    /// Input slots, in operator-input order.
    pub slots: Vec<Slot>,
    /// For each non-`from_graph` slot (in input order), the symbolic type
    /// of the fresh placeholder to create.
    pub param_types: Vec<TensorType>,
}

/// Operator templates — one per generatable operator kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpTemplate {
    /// Elementwise unary.
    Unary(UnaryKind),
    /// Binary arithmetic.
    Binary(BinaryKind),
    /// Comparison.
    Compare(CompareKind),
    /// Boolean logic.
    Logical(LogicalKind),
    /// Boolean NOT.
    Not,
    /// Conditional select.
    Where,
    /// Dtype cast.
    Cast,
    /// Softmax.
    Softmax,
    /// Clip.
    Clip,
    /// Matrix multiplication.
    MatMul,
    /// Fully-connected layer.
    Dense,
    /// 2-D convolution.
    Conv2d,
    /// 2-D max pooling.
    MaxPool2d,
    /// 2-D average pooling.
    AvgPool2d,
    /// Batch normalization.
    BatchNorm,
    /// Reshape.
    Reshape,
    /// Transpose.
    Transpose,
    /// Strided slice.
    Slice,
    /// Padding.
    Pad(PadKind),
    /// Concatenation of `n` inputs.
    Concat(usize),
    /// Squeeze.
    Squeeze,
    /// Unsqueeze.
    Unsqueeze,
    /// Flatten.
    Flatten,
    /// Broadcast to a target shape.
    BroadcastTo,
    /// Reduction.
    Reduce(ReduceKind),
    /// ArgMax.
    ArgMax,
    /// ArgMin.
    ArgMin,
    /// Nearest-neighbour resize.
    ResizeNearest,
}

/// The full operator registry (the "operator specifications provided to
/// NNSmith", §4 — 62 operator kinds here).
pub fn all_templates() -> Vec<OpTemplate> {
    let mut t = Vec::new();
    t.extend(UnaryKind::ALL.into_iter().map(OpTemplate::Unary));
    t.extend(BinaryKind::ALL.into_iter().map(OpTemplate::Binary));
    t.extend(CompareKind::ALL.into_iter().map(OpTemplate::Compare));
    t.extend(LogicalKind::ALL.into_iter().map(OpTemplate::Logical));
    t.extend([
        OpTemplate::Not,
        OpTemplate::Where,
        OpTemplate::Cast,
        OpTemplate::Softmax,
        OpTemplate::Clip,
        OpTemplate::MatMul,
        OpTemplate::Dense,
        OpTemplate::Conv2d,
        OpTemplate::MaxPool2d,
        OpTemplate::AvgPool2d,
        OpTemplate::BatchNorm,
        OpTemplate::Reshape,
        OpTemplate::Transpose,
        OpTemplate::Slice,
        OpTemplate::Pad(PadKind::Constant),
        OpTemplate::Pad(PadKind::Reflect),
        OpTemplate::Pad(PadKind::Replicate),
        OpTemplate::Concat(2),
        OpTemplate::Concat(3),
        OpTemplate::Squeeze,
        OpTemplate::Unsqueeze,
        OpTemplate::Flatten,
        OpTemplate::BroadcastTo,
        OpTemplate::Reduce(ReduceKind::Sum),
        OpTemplate::Reduce(ReduceKind::Mean),
        OpTemplate::Reduce(ReduceKind::Prod),
        OpTemplate::Reduce(ReduceKind::Max),
        OpTemplate::Reduce(ReduceKind::Min),
        OpTemplate::ArgMax,
        OpTemplate::ArgMin,
        OpTemplate::ResizeNearest,
    ]);
    t
}

fn sample_rank<R: Rng + ?Sized>(rng: &mut R, min: usize) -> usize {
    // Mostly 1..=4, occasionally rank-0 scalars (the §5.4 scalar-handling
    // bug class needs them flowing through graphs).
    if min == 0 && rng.gen_bool(0.08) {
        return 0;
    }
    rng.gen_range(min.max(1)..=MAX_RANK)
}

fn sample_float<R: Rng + ?Sized>(rng: &mut R) -> DType {
    *[DType::F32, DType::F64].choose(rng).expect("nonempty")
}

fn sample_numeric<R: Rng + ?Sized>(rng: &mut R) -> DType {
    *DType::NUMERIC.choose(rng).expect("nonempty")
}

impl OpTemplate {
    /// Short name for diagnostics.
    pub fn name(&self) -> &'static str {
        match self {
            OpTemplate::Unary(k) => k.name(),
            OpTemplate::Binary(k) => k.name(),
            OpTemplate::Compare(k) => k.name(),
            OpTemplate::Logical(k) => k.name(),
            OpTemplate::Not => "Not",
            OpTemplate::Where => "Where",
            OpTemplate::Cast => "Cast",
            OpTemplate::Softmax => "Softmax",
            OpTemplate::Clip => "Clip",
            OpTemplate::MatMul => "MatMul",
            OpTemplate::Dense => "Dense",
            OpTemplate::Conv2d => "Conv2d",
            OpTemplate::MaxPool2d => "MaxPool2d",
            OpTemplate::AvgPool2d => "AvgPool2d",
            OpTemplate::BatchNorm => "BatchNorm",
            OpTemplate::Reshape => "Reshape",
            OpTemplate::Transpose => "Transpose",
            OpTemplate::Slice => "Slice",
            OpTemplate::Pad(k) => k.name(),
            OpTemplate::Concat(_) => "Concat",
            OpTemplate::Squeeze => "Squeeze",
            OpTemplate::Unsqueeze => "Unsqueeze",
            OpTemplate::Flatten => "Flatten",
            OpTemplate::BroadcastTo => "BroadcastTo",
            OpTemplate::Reduce(_) => "Reduce",
            OpTemplate::ArgMax => "ArgMax",
            OpTemplate::ArgMin => "ArgMin",
            OpTemplate::ResizeNearest => "Resize",
        }
    }

    /// Samples the structural shape of an instance: the dtype/rank of every
    /// input slot. The generator uses this for type matching *before* any
    /// solver involvement (Algorithm 1's `TypeMatch`).
    pub fn sample_slots<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<Slot> {
        let g = |dtype, rank| Slot {
            dtype,
            rank,
            from_graph: true,
        };
        let p = |dtype, rank| Slot {
            dtype,
            rank,
            from_graph: false,
        };
        match self {
            OpTemplate::Unary(_) => vec![g(sample_float(rng), sample_rank(rng, 0))],
            OpTemplate::Binary(BinaryKind::Pow) => {
                let r = sample_rank(rng, 0);
                let d = sample_float(rng);
                // Allow mild rank asymmetry for broadcasting diversity.
                let r2 = if rng.gen_bool(0.3) {
                    sample_rank(rng, 0).min(r)
                } else {
                    r
                };
                vec![g(d, r), g(d, r2)]
            }
            OpTemplate::Binary(_) => {
                let d = sample_numeric(rng);
                let r = sample_rank(rng, 0);
                let r2 = if rng.gen_bool(0.3) {
                    sample_rank(rng, 0).min(r)
                } else {
                    r
                };
                vec![g(d, r), g(d, r2)]
            }
            OpTemplate::Compare(_) => {
                let d = sample_numeric(rng);
                let r = sample_rank(rng, 0);
                let r2 = if rng.gen_bool(0.3) {
                    sample_rank(rng, 0).min(r)
                } else {
                    r
                };
                vec![g(d, r), g(d, r2)]
            }
            OpTemplate::Logical(_) => {
                let r = sample_rank(rng, 0);
                vec![g(DType::Bool, r), g(DType::Bool, r)]
            }
            OpTemplate::Not => vec![g(DType::Bool, sample_rank(rng, 0))],
            OpTemplate::Where => {
                let d = sample_numeric(rng);
                let r = sample_rank(rng, 0);
                let rc = if rng.gen_bool(0.3) {
                    sample_rank(rng, 0).min(r)
                } else {
                    r
                };
                let rf = if rng.gen_bool(0.3) {
                    sample_rank(rng, 0).min(r)
                } else {
                    r
                };
                vec![g(DType::Bool, rc), g(d, r), g(d, rf)]
            }
            OpTemplate::Cast => vec![g(sample_numeric(rng), sample_rank(rng, 0))],
            OpTemplate::Softmax => vec![g(sample_float(rng), sample_rank(rng, 1))],
            OpTemplate::Clip => vec![g(sample_numeric(rng), sample_rank(rng, 0))],
            OpTemplate::MatMul => {
                let d = sample_float(rng);
                let (ra, rb) = *[
                    (2, 2),
                    (2, 2),
                    (1, 2),
                    (2, 1),
                    (1, 1),
                    (3, 3),
                    (4, 4),
                    (3, 2),
                ]
                .choose(rng)
                .expect("nonempty");
                vec![g(d, ra), g(d, rb)]
            }
            OpTemplate::Dense => {
                let d = sample_float(rng);
                let r = rng.gen_range(1..=MAX_RANK);
                vec![g(d, r), p(d, 2), p(d, 1)]
            }
            OpTemplate::Conv2d => {
                let d = sample_float(rng);
                vec![g(d, 4), p(d, 4), p(d, 1)]
            }
            OpTemplate::MaxPool2d | OpTemplate::AvgPool2d => {
                vec![g(sample_float(rng), 4)]
            }
            OpTemplate::BatchNorm => {
                let d = sample_float(rng);
                vec![g(d, 4), p(d, 1), p(d, 1), p(d, 1), p(d, 1)]
            }
            OpTemplate::Reshape => vec![g(sample_numeric(rng), sample_rank(rng, 1))],
            OpTemplate::Transpose => vec![g(sample_numeric(rng), sample_rank(rng, 1))],
            OpTemplate::Slice => vec![g(sample_numeric(rng), sample_rank(rng, 1))],
            OpTemplate::Pad(_) => vec![g(sample_float(rng), sample_rank(rng, 1))],
            OpTemplate::Concat(n) => {
                let d = sample_numeric(rng);
                let r = sample_rank(rng, 1);
                (0..*n).map(|_| g(d, r)).collect()
            }
            OpTemplate::Squeeze => vec![g(sample_numeric(rng), sample_rank(rng, 1))],
            OpTemplate::Unsqueeze => vec![g(sample_numeric(rng), sample_rank(rng, 0))],
            OpTemplate::Flatten => vec![g(sample_numeric(rng), sample_rank(rng, 1))],
            OpTemplate::BroadcastTo => vec![g(sample_numeric(rng), sample_rank(rng, 1))],
            OpTemplate::Reduce(_) => vec![g(sample_numeric(rng), sample_rank(rng, 1))],
            OpTemplate::ArgMax | OpTemplate::ArgMin => {
                vec![g(sample_numeric(rng), sample_rank(rng, 1))]
            }
            OpTemplate::ResizeNearest => vec![g(sample_float(rng), 4)],
        }
    }

    /// Builds a symbolic operator instance for inputs of the given types
    /// (which must match `slots`' dtypes/ranks). Allocates attribute
    /// variables in `solver` and derives parameter-placeholder types.
    ///
    /// Returns `None` when the inputs are structurally unusable.
    pub fn build<R: Rng + ?Sized>(
        &self,
        slots: &[Slot],
        input_types: &[TensorType],
        solver: &mut Solver,
        rng: &mut R,
    ) -> Option<BuiltOp> {
        debug_assert_eq!(slots.len(), input_types.len());
        let x = input_types.first();
        let mut param_types: Vec<TensorType> = Vec::new();
        let op = match self {
            OpTemplate::Unary(k) => Op::Unary(*k),
            OpTemplate::Binary(k) => Op::Binary(*k),
            OpTemplate::Compare(k) => Op::Compare(*k),
            OpTemplate::Logical(k) => Op::Logical(*k),
            OpTemplate::Not => Op::Not,
            OpTemplate::Where => Op::Where,
            OpTemplate::Cast => {
                let to = *DType::NUMERIC.choose(rng).expect("nonempty");
                Op::Cast { to }
            }
            OpTemplate::Softmax => {
                let r = x?.rank();
                if r == 0 {
                    return None;
                }
                Op::Softmax {
                    axis: rng.gen_range(0..r),
                }
            }
            OpTemplate::Clip => {
                let lo = rng.gen_range(-8..=0);
                let hi = rng.gen_range(lo + 1..=8);
                Op::Clip { lo, hi }
            }
            OpTemplate::MatMul => Op::MatMul,
            OpTemplate::Dense => {
                let x = x?;
                if x.rank() == 0 {
                    return None;
                }
                let in_features = x.dim(x.rank() - 1);
                let units = IntExpr::var(solver.new_var("dense_units", 1, 64));
                param_types.push(TensorType::new_in(
                    solver.pool(),
                    x.dtype,
                    vec![in_features.clone(), units.clone()],
                ));
                param_types.push(TensorType::new_in(
                    solver.pool(),
                    x.dtype,
                    vec![units.clone()],
                ));
                Op::Dense { in_features, units }
            }
            OpTemplate::Conv2d => {
                let x = x?;
                if x.rank() != 4 {
                    return None;
                }
                let in_channels = x.dim(1);
                let out_channels = IntExpr::var(solver.new_var("conv_oc", 1, 8));
                let kh = IntExpr::var(solver.new_var("conv_kh", 1, 5));
                let kw = IntExpr::var(solver.new_var("conv_kw", 1, 5));
                let stride = IntExpr::var(solver.new_var("conv_stride", 1, 4));
                let padding = IntExpr::var(solver.new_var("conv_pad", 0, 3));
                let dilation = IntExpr::var(solver.new_var("conv_dil", 1, 3));
                param_types.push(TensorType::new_in(
                    solver.pool(),
                    x.dtype,
                    vec![
                        out_channels.clone(),
                        in_channels.clone(),
                        kh.clone(),
                        kw.clone(),
                    ],
                ));
                param_types.push(TensorType::new_in(
                    solver.pool(),
                    x.dtype,
                    vec![out_channels.clone()],
                ));
                Op::Conv2d {
                    in_channels,
                    out_channels,
                    kh,
                    kw,
                    stride,
                    padding,
                    dilation,
                }
            }
            OpTemplate::MaxPool2d | OpTemplate::AvgPool2d => {
                let kh = IntExpr::var(solver.new_var("pool_kh", 1, 5));
                let kw = IntExpr::var(solver.new_var("pool_kw", 1, 5));
                let stride = IntExpr::var(solver.new_var("pool_stride", 1, 4));
                let padding = IntExpr::var(solver.new_var("pool_pad", 0, 3));
                if matches!(self, OpTemplate::MaxPool2d) {
                    Op::MaxPool2d {
                        kh,
                        kw,
                        stride,
                        padding,
                    }
                } else {
                    Op::AvgPool2d {
                        kh,
                        kw,
                        stride,
                        padding,
                    }
                }
            }
            OpTemplate::BatchNorm => {
                let x = x?;
                if x.rank() != 4 {
                    return None;
                }
                let c = x.dim(1);
                for _ in 0..4 {
                    param_types.push(TensorType::new_in(solver.pool(), x.dtype, vec![c.clone()]));
                }
                Op::BatchNorm
            }
            OpTemplate::Reshape => {
                let out_rank = rng.gen_range(1..=MAX_RANK);
                let dims = (0..out_rank)
                    .map(|i| IntExpr::var(solver.new_var(format!("reshape_d{i}"), 1, MAX_DIM)))
                    .collect();
                Op::Reshape { dims }
            }
            OpTemplate::Transpose => {
                let r = x?.rank();
                let mut perm: Vec<usize> = (0..r).collect();
                perm.shuffle(rng);
                Op::Transpose { perm }
            }
            OpTemplate::Slice => {
                let r = x?.rank();
                let starts = (0..r)
                    .map(|i| IntExpr::var(solver.new_var(format!("slice_s{i}"), 0, MAX_DIM)))
                    .collect();
                let ends = (0..r)
                    .map(|i| IntExpr::var(solver.new_var(format!("slice_e{i}"), 1, MAX_DIM)))
                    .collect();
                let steps = (0..r)
                    .map(|_| *[1i64, 1, 1, 2, 3].choose(rng).expect("nonempty"))
                    .collect();
                Op::Slice {
                    starts,
                    ends,
                    steps,
                }
            }
            OpTemplate::Pad(kind) => {
                let r = x?.rank();
                let lo = if *kind == PadKind::Constant { -3 } else { 0 };
                let pads = (0..r)
                    .map(|i| {
                        (
                            IntExpr::var(solver.new_var(format!("pad_b{i}"), lo, 6)),
                            IntExpr::var(solver.new_var(format!("pad_a{i}"), lo, 6)),
                        )
                    })
                    .collect();
                Op::Pad { pads, kind: *kind }
            }
            OpTemplate::Concat(n) => {
                let r = x?.rank();
                if r == 0 {
                    return None;
                }
                Op::Concat {
                    axis: rng.gen_range(0..r),
                    n: *n,
                }
            }
            OpTemplate::Squeeze => {
                let r = x?.rank();
                if r == 0 {
                    return None;
                }
                Op::Squeeze {
                    axis: rng.gen_range(0..r),
                }
            }
            OpTemplate::Unsqueeze => {
                let r = x?.rank();
                Op::Unsqueeze {
                    axis: rng.gen_range(0..=r),
                }
            }
            OpTemplate::Flatten => {
                let r = x?.rank();
                Op::Flatten {
                    axis: rng.gen_range(0..=r),
                }
            }
            OpTemplate::BroadcastTo => {
                let in_rank = x?.rank();
                let out_rank = rng.gen_range(in_rank.max(1)..=MAX_RANK.max(in_rank));
                let dims = (0..out_rank)
                    .map(|i| IntExpr::var(solver.new_var(format!("bcast_d{i}"), 1, MAX_DIM)))
                    .collect();
                Op::BroadcastTo { dims }
            }
            OpTemplate::Reduce(kind) => {
                let r = x?.rank();
                if r == 0 {
                    return None;
                }
                let n_axes = rng.gen_range(1..=r);
                let mut axes: Vec<usize> = (0..r).collect();
                axes.shuffle(rng);
                axes.truncate(n_axes);
                axes.sort_unstable();
                Op::Reduce {
                    kind: *kind,
                    axes,
                    keepdims: rng.gen_bool(0.5),
                }
            }
            OpTemplate::ArgMax | OpTemplate::ArgMin => {
                let r = x?.rank();
                if r == 0 {
                    return None;
                }
                Op::ArgExtreme {
                    largest: matches!(self, OpTemplate::ArgMax),
                    axis: rng.gen_range(0..r),
                    keepdims: rng.gen_bool(0.5),
                }
            }
            OpTemplate::ResizeNearest => {
                let scale_h = IntExpr::var(solver.new_var("resize_sh", 1, 4));
                let scale_w = IntExpr::var(solver.new_var("resize_sw", 1, 4));
                Op::ResizeNearest { scale_h, scale_w }
            }
        };
        Some(BuiltOp {
            op,
            slots: slots.to_vec(),
            param_types,
        })
    }

    /// For backward insertion (Algorithm 1 line 15): given the placeholder
    /// type the operator's output must match, produce the dtype/rank of
    /// fresh input placeholders — the paper's `infer_input_type`
    /// (Listing 2 line 23). Returns `None` when this operator cannot
    /// produce such an output.
    pub fn infer_input_slots<R: Rng + ?Sized>(
        &self,
        out: &TensorType,
        rng: &mut R,
    ) -> Option<Vec<Slot>> {
        let r = out.rank();
        let g = |dtype, rank| Slot {
            dtype,
            rank,
            from_graph: true,
        };
        let p = |dtype, rank| Slot {
            dtype,
            rank,
            from_graph: false,
        };
        let slots = match self {
            OpTemplate::Unary(_) => {
                if !out.dtype.is_float() {
                    return None;
                }
                vec![g(out.dtype, r)]
            }
            OpTemplate::Binary(BinaryKind::Pow) => {
                if !out.dtype.is_float() {
                    return None;
                }
                vec![g(out.dtype, r), g(out.dtype, r)]
            }
            OpTemplate::Binary(_) => {
                if !out.dtype.is_numeric() {
                    return None;
                }
                vec![g(out.dtype, r), g(out.dtype, r)]
            }
            OpTemplate::Compare(_) => {
                if out.dtype != DType::Bool {
                    return None;
                }
                let d = sample_numeric(rng);
                vec![g(d, r), g(d, r)]
            }
            OpTemplate::Logical(_) => {
                if out.dtype != DType::Bool {
                    return None;
                }
                vec![g(DType::Bool, r), g(DType::Bool, r)]
            }
            OpTemplate::Not => {
                if out.dtype != DType::Bool {
                    return None;
                }
                vec![g(DType::Bool, r)]
            }
            OpTemplate::Where => {
                if !out.dtype.is_numeric() {
                    return None;
                }
                vec![g(DType::Bool, r), g(out.dtype, r), g(out.dtype, r)]
            }
            OpTemplate::Cast => {
                if !out.dtype.is_numeric() {
                    return None;
                }
                vec![g(sample_numeric(rng), r)]
            }
            OpTemplate::Softmax => {
                if !out.dtype.is_float() || r == 0 {
                    return None;
                }
                vec![g(out.dtype, r)]
            }
            OpTemplate::Clip => {
                if !out.dtype.is_numeric() {
                    return None;
                }
                vec![g(out.dtype, r)]
            }
            OpTemplate::MatMul => {
                if !out.dtype.is_float() || r < 2 {
                    return None;
                }
                vec![g(out.dtype, r), g(out.dtype, r)]
            }
            OpTemplate::Dense => {
                if !out.dtype.is_float() || r == 0 {
                    return None;
                }
                vec![g(out.dtype, r), p(out.dtype, 2), p(out.dtype, 1)]
            }
            OpTemplate::Conv2d => {
                if !out.dtype.is_float() || r != 4 {
                    return None;
                }
                vec![g(out.dtype, 4), p(out.dtype, 4), p(out.dtype, 1)]
            }
            OpTemplate::MaxPool2d | OpTemplate::AvgPool2d => {
                if !out.dtype.is_float() || r != 4 {
                    return None;
                }
                vec![g(out.dtype, 4)]
            }
            OpTemplate::BatchNorm => {
                if !out.dtype.is_float() || r != 4 {
                    return None;
                }
                vec![
                    g(out.dtype, 4),
                    p(out.dtype, 1),
                    p(out.dtype, 1),
                    p(out.dtype, 1),
                    p(out.dtype, 1),
                ]
            }
            OpTemplate::Reshape => {
                if !out.dtype.is_numeric() || r == 0 {
                    return None;
                }
                vec![g(out.dtype, rng.gen_range(1..=MAX_RANK))]
            }
            OpTemplate::Transpose => {
                if !out.dtype.is_numeric() {
                    return None;
                }
                vec![g(out.dtype, r)]
            }
            OpTemplate::Slice => {
                if !out.dtype.is_numeric() || r == 0 {
                    return None;
                }
                vec![g(out.dtype, r)]
            }
            OpTemplate::Pad(_) => {
                if !out.dtype.is_float() || r == 0 {
                    return None;
                }
                vec![g(out.dtype, r)]
            }
            OpTemplate::Concat(n) => {
                if !out.dtype.is_numeric() || r == 0 {
                    return None;
                }
                (0..*n).map(|_| g(out.dtype, r)).collect()
            }
            OpTemplate::Squeeze => {
                if !out.dtype.is_numeric() || r + 1 > MAX_RANK {
                    return None;
                }
                vec![g(out.dtype, r + 1)]
            }
            OpTemplate::Unsqueeze => {
                if !out.dtype.is_numeric() || r == 0 {
                    return None;
                }
                vec![g(out.dtype, r - 1)]
            }
            OpTemplate::Flatten => {
                if !out.dtype.is_numeric() || r != 2 {
                    return None;
                }
                vec![g(out.dtype, rng.gen_range(1..=MAX_RANK))]
            }
            OpTemplate::BroadcastTo => {
                if !out.dtype.is_numeric() || r == 0 {
                    return None;
                }
                vec![g(out.dtype, rng.gen_range(1..=r))]
            }
            OpTemplate::Reduce(_) => {
                if !out.dtype.is_numeric() || r + 1 > MAX_RANK {
                    return None;
                }
                vec![g(out.dtype, r + 1)]
            }
            OpTemplate::ArgMax | OpTemplate::ArgMin => {
                if out.dtype != DType::I64 || r + 1 > MAX_RANK {
                    return None;
                }
                vec![g(sample_numeric(rng), r + 1)]
            }
            OpTemplate::ResizeNearest => {
                if !out.dtype.is_float() || r != 4 {
                    return None;
                }
                vec![g(out.dtype, 4)]
            }
        };
        Some(slots)
    }

    /// Builds a backward-insertion instance: the operator plus the
    /// structural axes chosen to be *consistent with the output type*
    /// (e.g. `Reduce` must pick axes/keepdims that produce `out.rank()`).
    ///
    /// The generic path reuses [`OpTemplate::build`]; templates whose
    /// structural attributes depend on the output override pieces here.
    pub fn build_backward<R: Rng + ?Sized>(
        &self,
        out: &TensorType,
        slots: &[Slot],
        input_types: &[TensorType],
        solver: &mut Solver,
        rng: &mut R,
    ) -> Option<BuiltOp> {
        let mut built = self.build(slots, input_types, solver, rng)?;
        // Fix up structural attributes so the output rank matches.
        match &mut built.op {
            Op::Reshape { dims } | Op::BroadcastTo { dims } => {
                // Output rank must equal the placeholder's rank: re-sample
                // dims with the right arity.
                let need = out.rank();
                if need == 0 {
                    return None;
                }
                if dims.len() != need {
                    *dims = (0..need)
                        .map(|i| IntExpr::var(solver.new_var(format!("bwd_d{i}"), 1, MAX_DIM)))
                        .collect();
                }
            }
            Op::Reduce { axes, keepdims, .. } => {
                let in_rank = input_types[0].rank();
                if *keepdims {
                    // keepdims preserves rank: only valid if out.rank == in.
                    if out.rank() != in_rank {
                        *keepdims = false;
                    }
                }
                if !*keepdims {
                    // Exactly in_rank - out.rank axes must be reduced.
                    let need = in_rank.checked_sub(out.rank())?;
                    if need == 0 || need > in_rank {
                        return None;
                    }
                    let mut all: Vec<usize> = (0..in_rank).collect();
                    all.shuffle(rng);
                    all.truncate(need);
                    all.sort_unstable();
                    *axes = all;
                }
            }
            Op::ArgExtreme { keepdims, .. } => {
                let in_rank = input_types[0].rank();
                *keepdims = out.rank() == in_rank;
            }
            Op::Squeeze { axis } => {
                *axis = rng.gen_range(0..input_types[0].rank());
            }
            Op::Unsqueeze { axis } => {
                *axis = rng.gen_range(0..=input_types[0].rank());
            }
            Op::Cast { to } => {
                *to = out.dtype;
            }
            _ => {}
        }
        Some(built)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn registry_has_sixty_plus_templates() {
        let all = all_templates();
        assert!(all.len() >= 60, "got {}", all.len());
    }

    #[test]
    fn sample_slots_consistent_with_build() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut solver = Solver::default();
        for tmpl in all_templates() {
            for _ in 0..5 {
                let slots = tmpl.sample_slots(&mut rng);
                assert!(!slots.is_empty(), "{} has no slots", tmpl.name());
                // Fabricate matching input types.
                let types: Vec<TensorType> = slots
                    .iter()
                    .map(|s| {
                        TensorType::new(
                            s.dtype,
                            (0..s.rank)
                                .map(|_| IntExpr::var(solver.new_dim_var("d")))
                                .collect(),
                        )
                    })
                    .collect();
                if let Some(built) = tmpl.build(&slots, &types, &mut solver, &mut rng) {
                    assert_eq!(built.op.arity(), slots.len());
                    let n_params = slots.iter().filter(|s| !s.from_graph).count();
                    assert_eq!(built.param_types.len(), n_params);
                    // The spec must accept these inputs structurally.
                    let mut full_types = types.clone();
                    let mut pi = 0;
                    for (i, s) in slots.iter().enumerate() {
                        if !s.from_graph {
                            full_types[i] = built.param_types[pi].clone();
                            pi += 1;
                        }
                    }
                    built
                        .op
                        .requires(&full_types)
                        .unwrap_or_else(|e| panic!("{}: {e}", tmpl.name()));
                    built
                        .op
                        .type_transfer(&full_types)
                        .unwrap_or_else(|e| panic!("{}: {e}", tmpl.name()));
                }
            }
        }
    }

    #[test]
    fn conv_param_types_tied_to_attrs() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut solver = Solver::default();
        let tmpl = OpTemplate::Conv2d;
        let slots = tmpl.sample_slots(&mut rng);
        let x = TensorType::new(
            slots[0].dtype,
            (0..4)
                .map(|_| IntExpr::var(solver.new_dim_var("x")))
                .collect(),
        );
        let types = vec![x.clone(), x.clone(), x.clone()]; // params overridden
        let built = tmpl.build(&slots, &types, &mut solver, &mut rng).unwrap();
        // Weight type dims reference the op attributes directly.
        if let Op::Conv2d {
            out_channels, kh, ..
        } = &built.op
        {
            assert_eq!(built.param_types[0].dim(0), out_channels.clone());
            assert_eq!(built.param_types[0].dim(2), kh.clone());
        } else {
            panic!("not a conv");
        }
    }

    #[test]
    fn infer_input_slots_respects_output_dtype() {
        let mut rng = StdRng::seed_from_u64(3);
        let float_out = TensorType::concrete(DType::F32, &[2, 3]);
        let bool_out = TensorType::concrete(DType::Bool, &[2, 3]);
        let int_out = TensorType::concrete(DType::I64, &[2, 3]);
        assert!(OpTemplate::Unary(UnaryKind::Relu)
            .infer_input_slots(&float_out, &mut rng)
            .is_some());
        assert!(OpTemplate::Unary(UnaryKind::Relu)
            .infer_input_slots(&bool_out, &mut rng)
            .is_none());
        assert!(OpTemplate::Compare(CompareKind::Less)
            .infer_input_slots(&bool_out, &mut rng)
            .is_some());
        assert!(OpTemplate::ArgMax
            .infer_input_slots(&int_out, &mut rng)
            .is_some());
        assert!(OpTemplate::ArgMax
            .infer_input_slots(&float_out, &mut rng)
            .is_none());
    }

    #[test]
    fn conv_backward_needs_rank4_float() {
        let mut rng = StdRng::seed_from_u64(4);
        let out4 = TensorType::concrete(DType::F32, &[1, 2, 3, 3]);
        let out2 = TensorType::concrete(DType::F32, &[2, 3]);
        assert!(OpTemplate::Conv2d
            .infer_input_slots(&out4, &mut rng)
            .is_some());
        assert!(OpTemplate::Conv2d
            .infer_input_slots(&out2, &mut rng)
            .is_none());
    }
}
