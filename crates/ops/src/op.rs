//! The operator payload: every tensor operator NNSmith can generate.

use std::fmt;

use serde::{Deserialize, Serialize};

use nnsmith_solver::{IntExpr, Model};
use nnsmith_tensor::{DType, ReduceKind};

/// Elementwise unary operators (shape-preserving, float-only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnaryKind {
    /// Rectified linear unit.
    Relu,
    /// Leaky ReLU with fixed slope 0.01.
    LeakyRelu,
    /// Logistic sigmoid.
    Sigmoid,
    /// Sine.
    Sin,
    /// Cosine.
    Cos,
    /// Arcsine (vulnerable: NaN outside `[-1, 1]`).
    Asin,
    /// Arccosine (vulnerable: NaN outside `[-1, 1]`).
    Acos,
    /// Arctangent.
    Atan,
    /// Tangent.
    Tan,
    /// Hyperbolic tangent.
    Tanh,
    /// Square root (vulnerable: NaN for negatives).
    Sqrt,
    /// Exponential (vulnerable: overflow to Inf).
    Exp,
    /// Natural logarithm (vulnerable: NaN/-Inf for non-positives).
    Log,
    /// Base-2 logarithm (vulnerable: NaN/-Inf for non-positives).
    Log2,
    /// Floor (proxy derivative needed).
    Floor,
    /// Ceiling (proxy derivative needed).
    Ceil,
    /// Round to nearest (proxy derivative needed).
    Round,
    /// Negation.
    Neg,
    /// Absolute value.
    Abs,
}

impl UnaryKind {
    /// All unary kinds.
    pub const ALL: [UnaryKind; 19] = [
        UnaryKind::Relu,
        UnaryKind::LeakyRelu,
        UnaryKind::Sigmoid,
        UnaryKind::Sin,
        UnaryKind::Cos,
        UnaryKind::Asin,
        UnaryKind::Acos,
        UnaryKind::Atan,
        UnaryKind::Tan,
        UnaryKind::Tanh,
        UnaryKind::Sqrt,
        UnaryKind::Exp,
        UnaryKind::Log,
        UnaryKind::Log2,
        UnaryKind::Floor,
        UnaryKind::Ceil,
        UnaryKind::Round,
        UnaryKind::Neg,
        UnaryKind::Abs,
    ];

    /// Operator name as used in dumps.
    pub fn name(self) -> &'static str {
        match self {
            UnaryKind::Relu => "Relu",
            UnaryKind::LeakyRelu => "LeakyRelu",
            UnaryKind::Sigmoid => "Sigmoid",
            UnaryKind::Sin => "Sin",
            UnaryKind::Cos => "Cos",
            UnaryKind::Asin => "Asin",
            UnaryKind::Acos => "Acos",
            UnaryKind::Atan => "Atan",
            UnaryKind::Tan => "Tan",
            UnaryKind::Tanh => "Tanh",
            UnaryKind::Sqrt => "Sqrt",
            UnaryKind::Exp => "Exp",
            UnaryKind::Log => "Log",
            UnaryKind::Log2 => "Log2",
            UnaryKind::Floor => "Floor",
            UnaryKind::Ceil => "Ceil",
            UnaryKind::Round => "Round",
            UnaryKind::Neg => "Neg",
            UnaryKind::Abs => "Abs",
        }
    }
}

/// Broadcasting binary arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinaryKind {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (vulnerable: divisor near zero).
    Div,
    /// Power (vulnerable: NaN for negative base, Inf for large exponents).
    Pow,
    /// Elementwise maximum.
    Max,
    /// Elementwise minimum.
    Min,
}

impl BinaryKind {
    /// All binary kinds.
    pub const ALL: [BinaryKind; 7] = [
        BinaryKind::Add,
        BinaryKind::Sub,
        BinaryKind::Mul,
        BinaryKind::Div,
        BinaryKind::Pow,
        BinaryKind::Max,
        BinaryKind::Min,
    ];

    /// Operator name as used in dumps.
    pub fn name(self) -> &'static str {
        match self {
            BinaryKind::Add => "Add",
            BinaryKind::Sub => "Sub",
            BinaryKind::Mul => "Mul",
            BinaryKind::Div => "Div",
            BinaryKind::Pow => "Pow",
            BinaryKind::Max => "Max",
            BinaryKind::Min => "Min",
        }
    }
}

/// Broadcasting comparison operators (numeric → bool).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CompareKind {
    /// `==`
    Equal,
    /// `!=`
    NotEqual,
    /// `<`
    Less,
    /// `<=`
    LessEqual,
    /// `>`
    Greater,
    /// `>=`
    GreaterEqual,
}

impl CompareKind {
    /// All comparison kinds.
    pub const ALL: [CompareKind; 6] = [
        CompareKind::Equal,
        CompareKind::NotEqual,
        CompareKind::Less,
        CompareKind::LessEqual,
        CompareKind::Greater,
        CompareKind::GreaterEqual,
    ];

    /// Operator name as used in dumps.
    pub fn name(self) -> &'static str {
        match self {
            CompareKind::Equal => "Equal",
            CompareKind::NotEqual => "NotEqual",
            CompareKind::Less => "Less",
            CompareKind::LessEqual => "LessEqual",
            CompareKind::Greater => "Greater",
            CompareKind::GreaterEqual => "GreaterEqual",
        }
    }
}

/// Broadcasting boolean binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LogicalKind {
    /// Logical AND.
    And,
    /// Logical OR.
    Or,
    /// Logical XOR.
    Xor,
}

impl LogicalKind {
    /// All logical kinds.
    pub const ALL: [LogicalKind; 3] = [LogicalKind::And, LogicalKind::Or, LogicalKind::Xor];

    /// Operator name as used in dumps.
    pub fn name(self) -> &'static str {
        match self {
            LogicalKind::And => "And",
            LogicalKind::Or => "Or",
            LogicalKind::Xor => "Xor",
        }
    }
}

/// Padding mode for the `Pad` operator family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PadKind {
    /// Constant zero padding (negative pads crop).
    Constant,
    /// Mirror padding.
    Reflect,
    /// Edge-replicate padding.
    Replicate,
}

impl PadKind {
    /// Operator name as used in dumps.
    pub fn name(self) -> &'static str {
        match self {
            PadKind::Constant => "ConstPad",
            PadKind::Reflect => "ReflectPad",
            PadKind::Replicate => "ReplicatePad",
        }
    }
}

/// A concrete-or-symbolic operator instance.
///
/// Numeric attributes (kernel sizes, strides, paddings, target shapes, slice
/// bounds, …) are [`IntExpr`]s: solver variables during generation, constants
/// after [`Op::concretize`]. Structural attributes (axes, permutations,
/// dtypes, arities) are fixed at instantiation time, mirroring the original
/// NNSmith where they are picked when the symbolic operator is sampled.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Op {
    /// Elementwise unary (float → float).
    Unary(UnaryKind),
    /// Broadcasting binary arithmetic (T, T → T).
    Binary(BinaryKind),
    /// Broadcasting comparison (T, T → bool).
    Compare(CompareKind),
    /// Broadcasting boolean logic (bool, bool → bool).
    Logical(LogicalKind),
    /// Elementwise boolean negation.
    Not,
    /// `Where(cond, then, else)` with three-way broadcasting.
    Where,
    /// Dtype conversion.
    Cast {
        /// Target dtype.
        to: DType,
    },
    /// Softmax along a fixed axis.
    Softmax {
        /// Normalization axis.
        axis: usize,
    },
    /// Clip into `[lo, hi]`.
    Clip {
        /// Lower bound.
        lo: i64,
        /// Upper bound.
        hi: i64,
    },
    /// Matrix product of two equal-rank operands (rank ≥ 2 handled
    /// batch-wise, rank-1 operands promoted).
    MatMul,
    /// Fully-connected layer: `x · W + b` with `W: [in, units]`,
    /// `b: [units]`.
    Dense {
        /// Input feature count.
        in_features: IntExpr,
        /// Output feature count.
        units: IntExpr,
    },
    /// 2-D convolution over NCHW with OIHW weight and bias.
    Conv2d {
        /// Input channels.
        in_channels: IntExpr,
        /// Output channels.
        out_channels: IntExpr,
        /// Kernel height.
        kh: IntExpr,
        /// Kernel width.
        kw: IntExpr,
        /// Stride (both dims).
        stride: IntExpr,
        /// Zero padding (both dims).
        padding: IntExpr,
        /// Dilation (both dims).
        dilation: IntExpr,
    },
    /// 2-D max pooling.
    MaxPool2d {
        /// Kernel height.
        kh: IntExpr,
        /// Kernel width.
        kw: IntExpr,
        /// Stride.
        stride: IntExpr,
        /// Padding.
        padding: IntExpr,
    },
    /// 2-D average pooling.
    AvgPool2d {
        /// Kernel height.
        kh: IntExpr,
        /// Kernel width.
        kw: IntExpr,
        /// Stride.
        stride: IntExpr,
        /// Padding.
        padding: IntExpr,
    },
    /// Inference batch normalization (x, scale, bias, mean, var).
    BatchNorm,
    /// Reshape to an explicit target shape.
    Reshape {
        /// Target dimensions.
        dims: Vec<IntExpr>,
    },
    /// Dimension permutation.
    Transpose {
        /// The permutation.
        perm: Vec<usize>,
    },
    /// Strided slice with per-dimension bounds.
    Slice {
        /// Inclusive start per dimension.
        starts: Vec<IntExpr>,
        /// Exclusive end per dimension.
        ends: Vec<IntExpr>,
        /// Step per dimension (structural, ≥ 1).
        steps: Vec<i64>,
    },
    /// Padding.
    Pad {
        /// `(before, after)` per dimension.
        pads: Vec<(IntExpr, IntExpr)>,
        /// Padding mode.
        kind: PadKind,
    },
    /// Concatenation of `n` inputs along `axis`.
    Concat {
        /// Concatenation axis.
        axis: usize,
        /// Number of inputs.
        n: usize,
    },
    /// Remove a size-1 dimension.
    Squeeze {
        /// Axis to remove (must be 1).
        axis: usize,
    },
    /// Insert a size-1 dimension.
    Unsqueeze {
        /// Axis to insert before.
        axis: usize,
    },
    /// Flatten to 2-D around an axis.
    Flatten {
        /// Split axis.
        axis: usize,
    },
    /// Broadcast to an explicit target shape.
    BroadcastTo {
        /// Target dimensions.
        dims: Vec<IntExpr>,
    },
    /// Reduction over a fixed set of axes.
    Reduce {
        /// Reduction kind.
        kind: ReduceKind,
        /// Axes to reduce.
        axes: Vec<usize>,
        /// Keep reduced dims as size 1.
        keepdims: bool,
    },
    /// ArgMax / ArgMin along an axis (output `i64`).
    ArgExtreme {
        /// True for ArgMax.
        largest: bool,
        /// Reduction axis.
        axis: usize,
        /// Keep the reduced dim as size 1.
        keepdims: bool,
    },
    /// Nearest-neighbour 2-D upsampling by integer scales.
    ResizeNearest {
        /// Height scale.
        scale_h: IntExpr,
        /// Width scale.
        scale_w: IntExpr,
    },
}

impl Op {
    /// The operator's display name (e.g. `"Conv2d"`).
    pub fn name(&self) -> &'static str {
        match self {
            Op::Unary(k) => k.name(),
            Op::Binary(k) => k.name(),
            Op::Compare(k) => k.name(),
            Op::Logical(k) => k.name(),
            Op::Not => "Not",
            Op::Where => "Where",
            Op::Cast { .. } => "Cast",
            Op::Softmax { .. } => "Softmax",
            Op::Clip { .. } => "Clip",
            Op::MatMul => "MatMul",
            Op::Dense { .. } => "Dense",
            Op::Conv2d { .. } => "Conv2d",
            Op::MaxPool2d { .. } => "MaxPool2d",
            Op::AvgPool2d { .. } => "AvgPool2d",
            Op::BatchNorm => "BatchNorm",
            Op::Reshape { .. } => "Reshape",
            Op::Transpose { .. } => "Transpose",
            Op::Slice { .. } => "Slice",
            Op::Pad { kind, .. } => kind.name(),
            Op::Concat { .. } => "Concat",
            Op::Squeeze { .. } => "Squeeze",
            Op::Unsqueeze { .. } => "Unsqueeze",
            Op::Flatten { .. } => "Flatten",
            Op::BroadcastTo { .. } => "BroadcastTo",
            Op::Reduce { kind, .. } => match kind {
                ReduceKind::Sum => "ReduceSum",
                ReduceKind::Mean => "ReduceMean",
                ReduceKind::Prod => "ReduceProd",
                ReduceKind::Max => "ReduceMax",
                ReduceKind::Min => "ReduceMin",
            },
            Op::ArgExtreme { largest, .. } => {
                if *largest {
                    "ArgMax"
                } else {
                    "ArgMin"
                }
            }
            Op::ResizeNearest { .. } => "Resize",
        }
    }

    /// Number of graph inputs the operator consumes.
    pub fn arity(&self) -> usize {
        match self {
            Op::Unary(_)
            | Op::Not
            | Op::Cast { .. }
            | Op::Softmax { .. }
            | Op::Clip { .. }
            | Op::Reshape { .. }
            | Op::Transpose { .. }
            | Op::Slice { .. }
            | Op::Pad { .. }
            | Op::Squeeze { .. }
            | Op::Unsqueeze { .. }
            | Op::Flatten { .. }
            | Op::BroadcastTo { .. }
            | Op::Reduce { .. }
            | Op::ArgExtreme { .. }
            | Op::ResizeNearest { .. } => 1,
            Op::Binary(_) | Op::Compare(_) | Op::Logical(_) | Op::MatMul => 2,
            Op::Where | Op::Dense { .. } | Op::Conv2d { .. } => 3,
            Op::MaxPool2d { .. } | Op::AvgPool2d { .. } => 1,
            Op::BatchNorm => 5,
            Op::Concat { n, .. } => *n,
        }
    }

    /// The operator's *numeric* attributes as `(name, expression)` pairs —
    /// the `α` iterated over by attribute binning (Algorithm 2).
    pub fn attr_exprs(&self) -> Vec<(&'static str, IntExpr)> {
        match self {
            Op::Dense { in_features, units } => vec![
                ("in_features", in_features.clone()),
                ("units", units.clone()),
            ],
            Op::Conv2d {
                in_channels,
                out_channels,
                kh,
                kw,
                stride,
                padding,
                dilation,
            } => vec![
                ("in_channels", in_channels.clone()),
                ("out_channels", out_channels.clone()),
                ("kernel", kh.clone()),
                ("kernel", kw.clone()),
                ("stride", stride.clone()),
                ("padding", padding.clone()),
                ("dilation", dilation.clone()),
            ],
            Op::MaxPool2d {
                kh,
                kw,
                stride,
                padding,
            }
            | Op::AvgPool2d {
                kh,
                kw,
                stride,
                padding,
            } => vec![
                ("kernel", kh.clone()),
                ("kernel", kw.clone()),
                ("stride", stride.clone()),
                ("padding", padding.clone()),
            ],
            Op::Reshape { dims } | Op::BroadcastTo { dims } => {
                dims.iter().map(|d| ("dim", d.clone())).collect()
            }
            Op::Slice { starts, ends, .. } => {
                let mut v: Vec<(&'static str, IntExpr)> =
                    starts.iter().map(|s| ("start", s.clone())).collect();
                v.extend(ends.iter().map(|e| ("end", e.clone())));
                v
            }
            Op::Pad { pads, .. } => {
                let mut v = Vec::with_capacity(pads.len() * 2);
                for (b, a) in pads {
                    v.push(("padding", b.clone()));
                    v.push(("padding", a.clone()));
                }
                v
            }
            Op::ResizeNearest { scale_h, scale_w } => {
                vec![("scale", scale_h.clone()), ("scale", scale_w.clone())]
            }
            _ => Vec::new(),
        }
    }

    /// Substitutes model values into every numeric attribute.
    pub fn concretize(&self, model: &Model) -> Op {
        let subst = |e: &IntExpr| -> IntExpr {
            match model.eval_int(e) {
                Some(v) => IntExpr::Const(v),
                None => e.clone(),
            }
        };
        match self {
            Op::Dense { in_features, units } => Op::Dense {
                in_features: subst(in_features),
                units: subst(units),
            },
            Op::Conv2d {
                in_channels,
                out_channels,
                kh,
                kw,
                stride,
                padding,
                dilation,
            } => Op::Conv2d {
                in_channels: subst(in_channels),
                out_channels: subst(out_channels),
                kh: subst(kh),
                kw: subst(kw),
                stride: subst(stride),
                padding: subst(padding),
                dilation: subst(dilation),
            },
            Op::MaxPool2d {
                kh,
                kw,
                stride,
                padding,
            } => Op::MaxPool2d {
                kh: subst(kh),
                kw: subst(kw),
                stride: subst(stride),
                padding: subst(padding),
            },
            Op::AvgPool2d {
                kh,
                kw,
                stride,
                padding,
            } => Op::AvgPool2d {
                kh: subst(kh),
                kw: subst(kw),
                stride: subst(stride),
                padding: subst(padding),
            },
            Op::Reshape { dims } => Op::Reshape {
                dims: dims.iter().map(subst).collect(),
            },
            Op::BroadcastTo { dims } => Op::BroadcastTo {
                dims: dims.iter().map(subst).collect(),
            },
            Op::Slice {
                starts,
                ends,
                steps,
            } => Op::Slice {
                starts: starts.iter().map(subst).collect(),
                ends: ends.iter().map(subst).collect(),
                steps: steps.clone(),
            },
            Op::Pad { pads, kind } => Op::Pad {
                pads: pads.iter().map(|(b, a)| (subst(b), subst(a))).collect(),
                kind: *kind,
            },
            Op::ResizeNearest { scale_h, scale_w } => Op::ResizeNearest {
                scale_h: subst(scale_h),
                scale_w: subst(scale_w),
            },
            other => other.clone(),
        }
    }

    /// True if every numeric attribute is a constant.
    pub fn is_concrete(&self) -> bool {
        self.attr_exprs().iter().all(|(_, e)| e.is_const())
    }

    /// True if the operator can emit NaN/Inf for some in-range inputs
    /// (Table 1's "vulnerable operators" plus the analogous cases in this
    /// operator set).
    pub fn is_vulnerable(&self) -> bool {
        matches!(
            self,
            Op::Unary(
                UnaryKind::Asin
                    | UnaryKind::Acos
                    | UnaryKind::Sqrt
                    | UnaryKind::Exp
                    | UnaryKind::Log
                    | UnaryKind::Log2
                    | UnaryKind::Tan
            ) | Op::Binary(BinaryKind::Div | BinaryKind::Pow)
                | Op::BatchNorm
        )
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())?;
        let attrs = self.attr_exprs();
        if !attrs.is_empty() {
            write!(f, "{{")?;
            for (i, (name, e)) in attrs.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{name}={e}")?;
            }
            write!(f, "}}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_arity() {
        assert_eq!(Op::Unary(UnaryKind::Relu).name(), "Relu");
        assert_eq!(Op::Unary(UnaryKind::Relu).arity(), 1);
        assert_eq!(Op::Binary(BinaryKind::Add).arity(), 2);
        assert_eq!(Op::Where.arity(), 3);
        assert_eq!(Op::BatchNorm.arity(), 5);
        assert_eq!(Op::Concat { axis: 0, n: 3 }.arity(), 3);
    }

    #[test]
    fn vulnerable_classification_matches_table1() {
        assert!(Op::Unary(UnaryKind::Asin).is_vulnerable());
        assert!(Op::Binary(BinaryKind::Div).is_vulnerable());
        assert!(Op::Binary(BinaryKind::Pow).is_vulnerable());
        assert!(Op::Unary(UnaryKind::Log2).is_vulnerable());
        assert!(!Op::Unary(UnaryKind::Relu).is_vulnerable());
        assert!(!Op::MatMul.is_vulnerable());
    }

    #[test]
    fn attr_exprs_exposed_for_binning() {
        let op = Op::Conv2d {
            in_channels: IntExpr::Const(3),
            out_channels: IntExpr::Const(8),
            kh: IntExpr::Const(3),
            kw: IntExpr::Const(3),
            stride: IntExpr::Const(1),
            padding: IntExpr::Const(0),
            dilation: IntExpr::Const(1),
        };
        assert_eq!(op.attr_exprs().len(), 7);
        assert!(op.is_concrete());
    }

    #[test]
    fn display_shows_attrs() {
        let op = Op::MaxPool2d {
            kh: IntExpr::Const(2),
            kw: IntExpr::Const(2),
            stride: IntExpr::Const(2),
            padding: IntExpr::Const(0),
        };
        let s = format!("{op}");
        assert!(s.starts_with("MaxPool2d{"));
        assert!(s.contains("kernel=2"));
    }

    #[test]
    fn serde_roundtrip() {
        let ops = [
            Op::Reshape {
                dims: vec![IntExpr::Const(62), IntExpr::Const(62), IntExpr::Const(2)],
            },
            Op::Unary(UnaryKind::Tanh),
            Op::Clip {
                lo: -7,
                hi: 1 << 40,
            },
            Op::Pad {
                pads: vec![(IntExpr::Const(0), IntExpr::Const(1))],
                kind: PadKind::Reflect,
            },
            Op::MatMul,
        ];
        for op in ops {
            let js = serde::json::to_string(&op);
            assert_eq!(js, serde::json::to_string(&op.clone()), "stable encoding");
            let back: Op = serde::json::from_str(&js).expect("decodes");
            assert_eq!(back, op, "{js}");
            assert_eq!(serde::json::to_string(&back), js, "byte-identical");
        }
        let js = serde::json::to_string(&Op::Reshape {
            dims: vec![IntExpr::Const(62)],
        });
        assert!(js.starts_with("{\"Reshape\""), "external tagging: {js}");
    }
}
