//! Operator specifications: validity constraints (`requires`) and output
//! type computation (`type_transfer`) over symbolic tensor types.
//!
//! These are the Rust counterparts of the `requires` / `type_transfer`
//! methods of Listing 2 in the paper. Shapes are vectors of solver
//! expressions, so the returned constraints can be handed directly to
//! `nnsmith-solver` during incremental graph generation.

use std::fmt;

use nnsmith_graph::TensorType;
use nnsmith_solver::{BoolExpr, IntExpr};
use nnsmith_tensor::DType;

use crate::op::{Op, PadKind};

/// Errors from applying a specification to structurally-incompatible inputs
/// (wrong arity, wrong rank, wrong dtype class). The generator's
/// type-matching filter prevents these; they indicate misuse of the API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// Human-readable description.
    pub context: String,
}

impl SpecError {
    pub(crate) fn new(context: impl Into<String>) -> Self {
        SpecError {
            context: context.into(),
        }
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "spec error: {}", self.context)
    }
}

impl std::error::Error for SpecError {}

fn arity_check(op: &Op, inputs: &[TensorType]) -> Result<(), SpecError> {
    if inputs.len() != op.arity() {
        return Err(SpecError::new(format!(
            "{} expects {} inputs, got {}",
            op.name(),
            op.arity(),
            inputs.len()
        )));
    }
    Ok(())
}

/// Symbolic NumPy-style broadcast of two shapes: returns the pairwise
/// compatibility constraints and the output dimensions.
pub fn broadcast_sym(a: &[IntExpr], b: &[IntExpr]) -> (Vec<BoolExpr>, Vec<IntExpr>) {
    let rank = a.len().max(b.len());
    let mut constraints = Vec::new();
    let mut out = Vec::with_capacity(rank);
    for i in 0..rank {
        let da = if i >= rank - a.len() {
            Some(&a[i - (rank - a.len())])
        } else {
            None
        };
        let db = if i >= rank - b.len() {
            Some(&b[i - (rank - b.len())])
        } else {
            None
        };
        match (da, db) {
            (Some(x), Some(y)) => {
                if x != y {
                    constraints.push(BoolExpr::or([
                        x.clone().eq_expr(y.clone()),
                        x.clone().eq_expr(1.into()),
                        y.clone().eq_expr(1.into()),
                    ]));
                }
                out.push(x.clone().max(y.clone()));
            }
            (Some(x), None) => out.push(x.clone()),
            (None, Some(y)) => out.push(y.clone()),
            (None, None) => unreachable!("broadcast index within rank"),
        }
    }
    (constraints, out)
}

impl Op {
    /// The validity constraints this operator imposes on its inputs and
    /// attributes — the paper's `requires` (Listing 2 line 10).
    ///
    /// # Errors
    ///
    /// Fails if `inputs` is structurally incompatible (arity/rank/dtype
    /// class); the generator's type-matching filter rules these out.
    pub fn requires(&self, inputs: &[TensorType]) -> Result<Vec<BoolExpr>, SpecError> {
        arity_check(self, inputs)?;
        let mut cs: Vec<BoolExpr> = Vec::new();
        match self {
            Op::Unary(_) | Op::Not | Op::Cast { .. } | Op::Clip { .. } => {}
            Op::Softmax { axis } => {
                if *axis >= inputs[0].rank() {
                    return Err(SpecError::new("softmax axis out of range"));
                }
            }
            Op::Binary(_) | Op::Compare(_) | Op::Logical(_) => {
                let (bc, _) = broadcast_sym(&inputs[0].dims(), &inputs[1].dims());
                cs.extend(bc);
            }
            Op::Where => {
                let (c1, mid) = broadcast_sym(&inputs[1].dims(), &inputs[2].dims());
                let (c2, _) = broadcast_sym(&inputs[0].dims(), &mid);
                cs.extend(c1);
                cs.extend(c2);
            }
            Op::MatMul => {
                let a = &inputs[0];
                let b = &inputs[1];
                let (ra, rb) = (a.rank(), b.rank());
                if ra == 0 || rb == 0 {
                    return Err(SpecError::new("matmul does not accept scalars"));
                }
                let (ad, bd) = (a.dims(), b.dims());
                let a_inner = ad[ra - 1].clone();
                let b_inner = if rb == 1 {
                    bd[0].clone()
                } else {
                    bd[rb - 2].clone()
                };
                cs.push(a_inner.eq_expr(b_inner));
                if ra >= 2 && rb >= 2 {
                    let (bc, _) = broadcast_sym(&ad[..ra - 2], &bd[..rb - 2]);
                    cs.extend(bc);
                }
            }
            Op::Dense { in_features, units } => {
                let x = &inputs[0];
                if x.rank() < 1 {
                    return Err(SpecError::new("dense input must have rank >= 1"));
                }
                cs.push(x.dim(x.rank() - 1).eq_expr(in_features.clone()));
                expect_shape(&mut cs, &inputs[1], &[in_features.clone(), units.clone()])?;
                expect_shape(&mut cs, &inputs[2], &[units.clone()])?;
            }
            Op::Conv2d {
                in_channels,
                out_channels,
                kh,
                kw,
                stride: _,
                padding,
                dilation,
            } => {
                let x = &inputs[0];
                if x.rank() != 4 {
                    return Err(SpecError::new("conv2d input must be NCHW"));
                }
                let xd = x.dims();
                cs.push(xd[1].clone().eq_expr(in_channels.clone()));
                expect_shape(
                    &mut cs,
                    &inputs[1],
                    &[
                        out_channels.clone(),
                        in_channels.clone(),
                        kh.clone(),
                        kw.clone(),
                    ],
                )?;
                expect_shape(&mut cs, &inputs[2], &[out_channels.clone()])?;
                // Dilated kernel fits the padded image.
                let two_p = IntExpr::from(2) * padding.clone();
                let eff_kh = dilation.clone() * (kh.clone() - 1.into()) + IntExpr::from(1);
                let eff_kw = dilation.clone() * (kw.clone() - 1.into()) + IntExpr::from(1);
                cs.push(eff_kh.le(xd[2].clone() + two_p.clone()));
                cs.push(eff_kw.le(xd[3].clone() + two_p));
            }
            Op::MaxPool2d {
                kh,
                kw,
                stride: _,
                padding,
            }
            | Op::AvgPool2d {
                kh,
                kw,
                stride: _,
                padding,
            } => {
                let x = &inputs[0];
                if x.rank() != 4 {
                    return Err(SpecError::new("pool2d input must be NCHW"));
                }
                let xd = x.dims();
                let two_p = IntExpr::from(2) * padding.clone();
                cs.push(kh.clone().le(xd[2].clone() + two_p.clone()));
                cs.push(kw.clone().le(xd[3].clone() + two_p));
                // Kernel windows must see at least one real element.
                cs.push(padding.clone().le(kh.clone() - 1.into()));
                cs.push(padding.clone().le(kw.clone() - 1.into()));
            }
            Op::BatchNorm => {
                let x = &inputs[0];
                if x.rank() != 4 {
                    return Err(SpecError::new("batch_norm input must be NCHW"));
                }
                let c = x.dim(1);
                for stat in &inputs[1..] {
                    expect_shape(&mut cs, stat, &[c.clone()])?;
                }
            }
            Op::Reshape { dims } => {
                let in_elems = inputs[0].numel_expr();
                let out_elems = dims
                    .iter()
                    .fold(IntExpr::Const(1), |acc, d| acc * d.clone());
                cs.push(in_elems.eq_expr(out_elems));
            }
            Op::Transpose { perm } => {
                if perm.len() != inputs[0].rank() {
                    return Err(SpecError::new("transpose perm rank mismatch"));
                }
            }
            Op::Slice {
                starts,
                ends,
                steps,
            } => {
                let x = &inputs[0];
                if starts.len() != x.rank() || ends.len() != x.rank() || steps.len() != x.rank() {
                    return Err(SpecError::new("slice parameter rank mismatch"));
                }
                let xd = x.dims();
                for d in 0..x.rank() {
                    cs.push(starts[d].clone().ge(0.into()));
                    cs.push(starts[d].clone().lt(ends[d].clone()));
                    cs.push(ends[d].clone().le(xd[d].clone()));
                }
            }
            Op::Pad { pads, kind } => {
                let x = &inputs[0];
                if pads.len() != x.rank() {
                    return Err(SpecError::new("pad parameter rank mismatch"));
                }
                let xd = x.dims();
                for (d, (b, a)) in pads.iter().enumerate() {
                    match kind {
                        PadKind::Constant => {
                            // Cropping allowed, but the result must stay
                            // non-empty.
                            cs.push((xd[d].clone() + b.clone() + a.clone()).ge(1.into()));
                        }
                        PadKind::Reflect => {
                            cs.push(b.clone().ge(0.into()));
                            cs.push(a.clone().ge(0.into()));
                            cs.push(b.clone().le(xd[d].clone() - 1.into()));
                            cs.push(a.clone().le(xd[d].clone() - 1.into()));
                        }
                        PadKind::Replicate => {
                            cs.push(b.clone().ge(0.into()));
                            cs.push(a.clone().ge(0.into()));
                        }
                    }
                }
            }
            Op::Concat { axis, n } => {
                if inputs.len() != *n {
                    return Err(SpecError::new("concat arity mismatch"));
                }
                let r = inputs[0].rank();
                if *axis >= r {
                    return Err(SpecError::new("concat axis out of range"));
                }
                let d0 = inputs[0].dims();
                for t in &inputs[1..] {
                    if t.rank() != r {
                        return Err(SpecError::new("concat rank mismatch"));
                    }
                    let td = t.dims();
                    for d in 0..r {
                        if d != *axis {
                            cs.push(td[d].clone().eq_expr(d0[d].clone()));
                        }
                    }
                }
            }
            Op::Squeeze { axis } => {
                if *axis >= inputs[0].rank() {
                    return Err(SpecError::new("squeeze axis out of range"));
                }
                cs.push(inputs[0].dim(*axis).eq_expr(1.into()));
            }
            Op::Unsqueeze { axis } => {
                if *axis > inputs[0].rank() {
                    return Err(SpecError::new("unsqueeze axis out of range"));
                }
            }
            Op::Flatten { axis } => {
                if *axis > inputs[0].rank() {
                    return Err(SpecError::new("flatten axis out of range"));
                }
            }
            Op::BroadcastTo { dims } => {
                let x = &inputs[0];
                if dims.len() < x.rank() {
                    return Err(SpecError::new("broadcast_to target rank too small"));
                }
                let offset = dims.len() - x.rank();
                for (d, in_dim) in x.dims().iter().enumerate() {
                    let out_dim = &dims[offset + d];
                    cs.push(BoolExpr::or([
                        in_dim.clone().eq_expr(out_dim.clone()),
                        in_dim.clone().eq_expr(1.into()),
                    ]));
                }
            }
            Op::Reduce { axes, .. } => {
                if axes.iter().any(|&a| a >= inputs[0].rank()) {
                    return Err(SpecError::new("reduce axis out of range"));
                }
            }
            Op::ArgExtreme { axis, .. } => {
                if *axis >= inputs[0].rank() {
                    return Err(SpecError::new("arg axis out of range"));
                }
            }
            Op::ResizeNearest { scale_h, scale_w } => {
                if inputs[0].rank() != 4 {
                    return Err(SpecError::new("resize input must be NCHW"));
                }
                cs.push(scale_h.clone().ge(1.into()));
                cs.push(scale_w.clone().ge(1.into()));
            }
        }
        Ok(cs)
    }

    /// Output tensor types as a function of input types — the paper's
    /// `type_transfer` (Listing 2 line 16).
    ///
    /// Output types are interned into the first input's pool, so a
    /// campaign's graph stays inside the campaign arena.
    ///
    /// # Errors
    ///
    /// Fails on structurally-incompatible inputs.
    pub fn type_transfer(&self, inputs: &[TensorType]) -> Result<Vec<TensorType>, SpecError> {
        arity_check(self, inputs)?;
        // Every operator has arity >= 1, so the output pool is always the
        // first input's.
        let pool = inputs[0].pool().clone();
        let out = match self {
            Op::Unary(_) | Op::Clip { .. } | Op::Softmax { .. } | Op::Not => {
                vec![inputs[0].clone()]
            }
            Op::Cast { to } => vec![inputs[0].with_dtype(*to)],
            Op::Binary(_) => {
                let (_, dims) = broadcast_sym(&inputs[0].dims(), &inputs[1].dims());
                vec![TensorType::new_in(&pool, inputs[0].dtype, dims)]
            }
            Op::Compare(_) => {
                let (_, dims) = broadcast_sym(&inputs[0].dims(), &inputs[1].dims());
                vec![TensorType::new_in(&pool, DType::Bool, dims)]
            }
            Op::Logical(_) => {
                let (_, dims) = broadcast_sym(&inputs[0].dims(), &inputs[1].dims());
                vec![TensorType::new_in(&pool, DType::Bool, dims)]
            }
            Op::Where => {
                let (_, mid) = broadcast_sym(&inputs[1].dims(), &inputs[2].dims());
                let (_, dims) = broadcast_sym(&inputs[0].dims(), &mid);
                vec![TensorType::new_in(&pool, inputs[1].dtype, dims)]
            }
            Op::MatMul => {
                let a = &inputs[0];
                let b = &inputs[1];
                let (ra, rb) = (a.rank(), b.rank());
                if ra == 0 || rb == 0 {
                    return Err(SpecError::new("matmul does not accept scalars"));
                }
                let (ad, bd) = (a.dims(), b.dims());
                let mut dims: Vec<IntExpr> = if ra >= 2 && rb >= 2 {
                    let (_, batch) = broadcast_sym(&ad[..ra - 2], &bd[..rb - 2]);
                    batch
                } else {
                    Vec::new()
                };
                if ra >= 2 {
                    dims.push(ad[ra - 2].clone());
                }
                if rb >= 2 {
                    dims.push(bd[rb - 1].clone());
                }
                vec![TensorType::new_in(&pool, a.dtype, dims)]
            }
            Op::Dense { units, .. } => {
                let x = &inputs[0];
                let mut dims = x.dims();
                dims.pop();
                dims.push(units.clone());
                vec![TensorType::new_in(&pool, x.dtype, dims)]
            }
            Op::Conv2d {
                out_channels,
                kh,
                kw,
                stride,
                padding,
                dilation,
                ..
            } => {
                let x = &inputs[0];
                let two_p = IntExpr::from(2) * padding.clone();
                let eff_kh = dilation.clone() * (kh.clone() - 1.into()) + IntExpr::from(1);
                let eff_kw = dilation.clone() * (kw.clone() - 1.into()) + IntExpr::from(1);
                let xd = x.dims();
                let oh =
                    (xd[2].clone() + two_p.clone() - eff_kh) / stride.clone() + IntExpr::from(1);
                let ow = (xd[3].clone() + two_p - eff_kw) / stride.clone() + IntExpr::from(1);
                vec![TensorType::new_in(
                    &pool,
                    x.dtype,
                    vec![xd[0].clone(), out_channels.clone(), oh, ow],
                )]
            }
            Op::MaxPool2d {
                kh,
                kw,
                stride,
                padding,
            }
            | Op::AvgPool2d {
                kh,
                kw,
                stride,
                padding,
            } => {
                let x = &inputs[0];
                let two_p = IntExpr::from(2) * padding.clone();
                let oh =
                    (x.dim(2) + two_p.clone() - kh.clone()) / stride.clone() + IntExpr::from(1);
                let ow = (x.dim(3) + two_p - kw.clone()) / stride.clone() + IntExpr::from(1);
                vec![TensorType::new_in(
                    &pool,
                    x.dtype,
                    vec![x.dim(0), x.dim(1), oh, ow],
                )]
            }
            Op::BatchNorm => vec![inputs[0].clone()],
            Op::Reshape { dims } => {
                vec![TensorType::new_in(&pool, inputs[0].dtype, dims.clone())]
            }
            Op::Transpose { perm } => {
                if perm.len() != inputs[0].rank() {
                    return Err(SpecError::new("transpose perm rank mismatch"));
                }
                let xd = inputs[0].dims();
                let dims = perm.iter().map(|&p| xd[p].clone()).collect();
                vec![TensorType::new_in(&pool, inputs[0].dtype, dims)]
            }
            Op::Slice {
                starts,
                ends,
                steps,
            } => {
                let x = &inputs[0];
                let dims = (0..x.rank())
                    .map(|d| {
                        let span = ends[d].clone() - starts[d].clone();
                        (span + IntExpr::from(steps[d] - 1)) / IntExpr::from(steps[d])
                    })
                    .collect();
                vec![TensorType::new_in(&pool, x.dtype, dims)]
            }
            Op::Pad { pads, .. } => {
                let x = &inputs[0];
                let xd = x.dims();
                let dims = (0..x.rank())
                    .map(|d| xd[d].clone() + pads[d].0.clone() + pads[d].1.clone())
                    .collect();
                vec![TensorType::new_in(&pool, x.dtype, dims)]
            }
            Op::Concat { axis, .. } => {
                let mut dims = inputs[0].dims();
                dims[*axis] = inputs
                    .iter()
                    .map(|t| t.dim(*axis))
                    .reduce(|a, b| a + b)
                    .expect("concat arity >= 1");
                vec![TensorType::new_in(&pool, inputs[0].dtype, dims)]
            }
            Op::Squeeze { axis } => {
                let mut dims = inputs[0].dims();
                dims.remove(*axis);
                vec![TensorType::new_in(&pool, inputs[0].dtype, dims)]
            }
            Op::Unsqueeze { axis } => {
                let mut dims = inputs[0].dims();
                dims.insert(*axis, IntExpr::Const(1));
                vec![TensorType::new_in(&pool, inputs[0].dtype, dims)]
            }
            Op::Flatten { axis } => {
                let xd = inputs[0].dims();
                let first = xd[..*axis]
                    .iter()
                    .fold(IntExpr::Const(1), |acc, d| acc * d.clone());
                let second = xd[*axis..]
                    .iter()
                    .fold(IntExpr::Const(1), |acc, d| acc * d.clone());
                vec![TensorType::new_in(
                    &pool,
                    inputs[0].dtype,
                    vec![first, second],
                )]
            }
            Op::BroadcastTo { dims } => {
                vec![TensorType::new_in(&pool, inputs[0].dtype, dims.clone())]
            }
            Op::Reduce { axes, keepdims, .. } => {
                let dims = reduced_dims(&inputs[0].dims(), axes, *keepdims);
                vec![TensorType::new_in(&pool, inputs[0].dtype, dims)]
            }
            Op::ArgExtreme { axis, keepdims, .. } => {
                let dims = reduced_dims(&inputs[0].dims(), &[*axis], *keepdims);
                vec![TensorType::new_in(&pool, DType::I64, dims)]
            }
            Op::ResizeNearest { scale_h, scale_w } => {
                let x = &inputs[0];
                let xd = x.dims();
                vec![TensorType::new_in(
                    &pool,
                    x.dtype,
                    vec![
                        xd[0].clone(),
                        xd[1].clone(),
                        xd[2].clone() * scale_h.clone(),
                        xd[3].clone() * scale_w.clone(),
                    ],
                )]
            }
        };
        Ok(out)
    }
}

fn reduced_dims(shape: &[IntExpr], axes: &[usize], keepdims: bool) -> Vec<IntExpr> {
    let mut out = Vec::new();
    for (d, s) in shape.iter().enumerate() {
        if axes.contains(&d) {
            if keepdims {
                out.push(IntExpr::Const(1));
            }
        } else {
            out.push(s.clone());
        }
    }
    out
}

/// Asserts that `t` has exactly the given dims (rank must match; dim
/// equality becomes constraints, folded away when syntactically equal).
fn expect_shape(cs: &mut Vec<BoolExpr>, t: &TensorType, dims: &[IntExpr]) -> Result<(), SpecError> {
    if t.rank() != dims.len() {
        return Err(SpecError::new(format!(
            "expected rank {}, got {}",
            dims.len(),
            t.rank()
        )));
    }
    for (a, b) in t.dims().into_iter().zip(dims) {
        cs.push(a.eq_expr(b.clone()));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{BinaryKind, UnaryKind};

    fn tt(dtype: DType, dims: &[i64]) -> TensorType {
        TensorType::concrete(dtype, dims)
    }

    #[test]
    fn unary_preserves_type() {
        let op = Op::Unary(UnaryKind::Relu);
        let input = tt(DType::F32, &[1, 3, 8, 8]);
        let out = op.type_transfer(std::slice::from_ref(&input)).unwrap();
        assert_eq!(out, vec![input]);
    }

    #[test]
    fn binary_broadcast_shape() {
        let op = Op::Binary(BinaryKind::Add);
        let a = tt(DType::F32, &[1, 2, 1, 48]);
        let b = tt(DType::F32, &[1, 1, 48]);
        let cs = op.requires(&[a.clone(), b.clone()]).unwrap();
        // Concrete compatible shapes: no residual constraints.
        assert!(cs.iter().all(|c| matches!(c, BoolExpr::Lit(true))) || cs.is_empty());
        let out = op.type_transfer(&[a, b]).unwrap();
        assert_eq!(out[0].concrete_shape().unwrap(), vec![1, 2, 1, 48]);
    }

    #[test]
    fn binary_incompatible_concrete_shapes_fold_false() {
        let op = Op::Binary(BinaryKind::Add);
        let a = tt(DType::F32, &[3, 2]);
        let b = tt(DType::F32, &[4, 2]);
        let cs = op.requires(&[a, b]).unwrap();
        assert!(cs.iter().any(|c| matches!(c, BoolExpr::Lit(false))));
    }

    #[test]
    fn compare_outputs_bool() {
        let op = Op::Compare(crate::op::CompareKind::Less);
        let a = tt(DType::I64, &[4]);
        let out = op.type_transfer(&[a.clone(), a]).unwrap();
        assert_eq!(out[0].dtype, DType::Bool);
    }

    #[test]
    fn matmul_2d_shapes() {
        let op = Op::MatMul;
        let a = tt(DType::F32, &[3, 4]);
        let b = tt(DType::F32, &[4, 5]);
        assert!(op
            .requires(&[a.clone(), b.clone()])
            .unwrap()
            .iter()
            .all(|c| *c == BoolExpr::Lit(true)));
        let out = op.type_transfer(&[a, b]).unwrap();
        assert_eq!(out[0].concrete_shape().unwrap(), vec![3, 5]);
    }

    #[test]
    fn matmul_vector_cases() {
        let op = Op::MatMul;
        // (3) x (3,2) -> (2)
        let out = op
            .type_transfer(&[tt(DType::F32, &[3]), tt(DType::F32, &[3, 2])])
            .unwrap();
        assert_eq!(out[0].concrete_shape().unwrap(), vec![2]);
        // (2,3) x (3) -> (2)
        let out = op
            .type_transfer(&[tt(DType::F32, &[2, 3]), tt(DType::F32, &[3])])
            .unwrap();
        assert_eq!(out[0].concrete_shape().unwrap(), vec![2]);
        // (3) x (3) -> scalar
        let out = op
            .type_transfer(&[tt(DType::F32, &[3]), tt(DType::F32, &[3])])
            .unwrap();
        assert_eq!(out[0].rank(), 0);
    }

    #[test]
    fn matmul_mismatch_constraint_false() {
        let op = Op::MatMul;
        let cs = op
            .requires(&[tt(DType::F32, &[2, 3]), tt(DType::F32, &[4, 5])])
            .unwrap();
        assert!(cs.contains(&BoolExpr::Lit(false)));
    }

    #[test]
    fn conv2d_output_formula() {
        // The Figure-1 example: x (1,3,64,64), 3x3 kernel, stride 1, pad 0
        // gives (1,2,62,62).
        let op = Op::Conv2d {
            in_channels: IntExpr::Const(3),
            out_channels: IntExpr::Const(2),
            kh: IntExpr::Const(3),
            kw: IntExpr::Const(3),
            stride: IntExpr::Const(1),
            padding: IntExpr::Const(0),
            dilation: IntExpr::Const(1),
        };
        let x = tt(DType::F32, &[1, 3, 64, 64]);
        let w = tt(DType::F32, &[2, 3, 3, 3]);
        let b = tt(DType::F32, &[2]);
        let cs = op.requires(&[x.clone(), w.clone(), b.clone()]).unwrap();
        assert!(cs.iter().all(|c| *c == BoolExpr::Lit(true)));
        let out = op.type_transfer(&[x, w, b]).unwrap();
        assert_eq!(out[0].concrete_shape().unwrap(), vec![1, 2, 62, 62]);
    }

    #[test]
    fn conv2d_kernel_too_big_folds_false() {
        let op = Op::Conv2d {
            in_channels: IntExpr::Const(1),
            out_channels: IntExpr::Const(1),
            kh: IntExpr::Const(5),
            kw: IntExpr::Const(5),
            stride: IntExpr::Const(1),
            padding: IntExpr::Const(0),
            dilation: IntExpr::Const(1),
        };
        let x = tt(DType::F32, &[1, 1, 3, 3]);
        let w = tt(DType::F32, &[1, 1, 5, 5]);
        let b = tt(DType::F32, &[1]);
        let cs = op.requires(&[x, w, b]).unwrap();
        assert!(cs.contains(&BoolExpr::Lit(false)));
    }

    #[test]
    fn pool_output_formula_matches_listing2() {
        let op = Op::MaxPool2d {
            kh: IntExpr::Const(3),
            kw: IntExpr::Const(3),
            stride: IntExpr::Const(2),
            padding: IntExpr::Const(1),
        };
        let x = tt(DType::F32, &[1, 2, 8, 8]);
        let out = op.type_transfer(std::slice::from_ref(&x)).unwrap();
        // (8 - 3 + 2*1)/2 + 1 = 4
        assert_eq!(out[0].concrete_shape().unwrap(), vec![1, 2, 4, 4]);
    }

    #[test]
    fn reshape_conservation_constraint() {
        // Figure 1: reshape (1,2,62,62) -> (62,62,2) is valid.
        let op = Op::Reshape {
            dims: vec![IntExpr::Const(62), IntExpr::Const(62), IntExpr::Const(2)],
        };
        let x = tt(DType::F32, &[1, 2, 62, 62]);
        let cs = op.requires(std::slice::from_ref(&x)).unwrap();
        assert!(cs.iter().all(|c| *c == BoolExpr::Lit(true)));
        // And an element-count mismatch folds to false.
        let bad = Op::Reshape {
            dims: vec![IntExpr::Const(62), IntExpr::Const(62), IntExpr::Const(3)],
        };
        let cs = bad.requires(std::slice::from_ref(&x)).unwrap();
        assert!(cs.contains(&BoolExpr::Lit(false)));
    }

    #[test]
    fn slice_bounds_and_shape() {
        let op = Op::Slice {
            starts: vec![IntExpr::Const(0), IntExpr::Const(1)],
            ends: vec![IntExpr::Const(4), IntExpr::Const(4)],
            steps: vec![1, 2],
        };
        let x = tt(DType::F32, &[4, 4]);
        let cs = op.requires(std::slice::from_ref(&x)).unwrap();
        assert!(cs.iter().all(|c| *c == BoolExpr::Lit(true)));
        let out = op.type_transfer(std::slice::from_ref(&x)).unwrap();
        // dim0: (4-0+0)/1 = 4; dim1: ceil(3/2) = 2
        assert_eq!(out[0].concrete_shape().unwrap(), vec![4, 2]);
    }

    #[test]
    fn pad_shapes_and_reflect_limits() {
        let op = Op::Pad {
            pads: vec![(IntExpr::Const(1), IntExpr::Const(2))],
            kind: PadKind::Constant,
        };
        let x = tt(DType::F32, &[4]);
        let out = op.type_transfer(std::slice::from_ref(&x)).unwrap();
        assert_eq!(out[0].concrete_shape().unwrap(), vec![7]);
        let refl = Op::Pad {
            pads: vec![(IntExpr::Const(4), IntExpr::Const(0))],
            kind: PadKind::Reflect,
        };
        let cs = refl.requires(std::slice::from_ref(&x)).unwrap();
        assert!(cs.contains(&BoolExpr::Lit(false)));
    }

    #[test]
    fn negative_const_pad_allowed_when_nonempty() {
        let op = Op::Pad {
            pads: vec![(IntExpr::Const(-1), IntExpr::Const(-1))],
            kind: PadKind::Constant,
        };
        let x = tt(DType::F32, &[4]);
        let cs = op.requires(std::slice::from_ref(&x)).unwrap();
        assert!(cs.iter().all(|c| *c == BoolExpr::Lit(true)));
        let out = op.type_transfer(std::slice::from_ref(&x)).unwrap();
        assert_eq!(out[0].concrete_shape().unwrap(), vec![2]);
    }

    #[test]
    fn concat_sums_axis() {
        let op = Op::Concat { axis: 1, n: 3 };
        let a = tt(DType::F32, &[2, 3]);
        let b = tt(DType::F32, &[2, 4]);
        let c = tt(DType::F32, &[2, 5]);
        let cs = op.requires(&[a.clone(), b.clone(), c.clone()]).unwrap();
        assert!(cs.iter().all(|x| *x == BoolExpr::Lit(true)));
        let out = op.type_transfer(&[a, b, c]).unwrap();
        assert_eq!(out[0].concrete_shape().unwrap(), vec![2, 12]);
    }

    #[test]
    fn squeeze_requires_one() {
        let op = Op::Squeeze { axis: 1 };
        let good = tt(DType::F32, &[2, 1, 3]);
        assert!(op
            .requires(std::slice::from_ref(&good))
            .unwrap()
            .iter()
            .all(|c| *c == BoolExpr::Lit(true)));
        let out = op.type_transfer(std::slice::from_ref(&good)).unwrap();
        assert_eq!(out[0].concrete_shape().unwrap(), vec![2, 3]);
        let bad = tt(DType::F32, &[2, 2, 3]);
        assert!(op
            .requires(std::slice::from_ref(&bad))
            .unwrap()
            .contains(&BoolExpr::Lit(false)));
    }

    #[test]
    fn broadcast_to_constraints() {
        let op = Op::BroadcastTo {
            dims: vec![IntExpr::Const(2), IntExpr::Const(3)],
        };
        let ok = tt(DType::F32, &[1, 3]);
        assert!(op
            .requires(std::slice::from_ref(&ok))
            .unwrap()
            .iter()
            .all(|c| *c == BoolExpr::Lit(true)));
        let bad = tt(DType::F32, &[2, 4]);
        assert!(op
            .requires(std::slice::from_ref(&bad))
            .unwrap()
            .contains(&BoolExpr::Lit(false)));
    }

    #[test]
    fn reduce_and_arg_shapes() {
        let op = Op::Reduce {
            kind: nnsmith_tensor::ReduceKind::Sum,
            axes: vec![1],
            keepdims: false,
        };
        let x = tt(DType::F32, &[2, 3, 4]);
        let out = op.type_transfer(std::slice::from_ref(&x)).unwrap();
        assert_eq!(out[0].concrete_shape().unwrap(), vec![2, 4]);
        let arg = Op::ArgExtreme {
            largest: true,
            axis: 2,
            keepdims: true,
        };
        let out = arg.type_transfer(std::slice::from_ref(&x)).unwrap();
        assert_eq!(out[0].dtype, DType::I64);
        assert_eq!(out[0].concrete_shape().unwrap(), vec![2, 3, 1]);
    }

    #[test]
    fn reduce_to_scalar() {
        let op = Op::Reduce {
            kind: nnsmith_tensor::ReduceKind::Mean,
            axes: vec![0],
            keepdims: false,
        };
        let x = tt(DType::F32, &[5]);
        let out = op.type_transfer(std::slice::from_ref(&x)).unwrap();
        assert_eq!(out[0].rank(), 0);
    }

    #[test]
    fn where_broadcast_fig_example() {
        // Where(C_{1x1}, T_{3x1}, F_2) must give 3x2 — the §5.4 bug where
        // TVM ignored the lower-ranked tensor.
        let op = Op::Where;
        let c = tt(DType::Bool, &[1, 1]);
        let t = tt(DType::F32, &[3, 1]);
        let f = tt(DType::F32, &[2]);
        let out = op.type_transfer(&[c, t, f]).unwrap();
        assert_eq!(out[0].concrete_shape().unwrap(), vec![3, 2]);
    }

    #[test]
    fn arity_mismatch_is_error() {
        let op = Op::Binary(BinaryKind::Add);
        assert!(op.requires(&[tt(DType::F32, &[1])]).is_err());
    }

    #[test]
    fn symbolic_constraints_survive() {
        use nnsmith_solver::Solver;
        let mut s = Solver::default();
        let d = s.new_var("d", 1, 64);
        let op = Op::Squeeze { axis: 0 };
        let x = TensorType::new(DType::F32, vec![IntExpr::var(d), IntExpr::Const(3)]);
        let cs = op.requires(std::slice::from_ref(&x)).unwrap();
        // d == 1 must be a real constraint, not folded.
        assert_eq!(cs.len(), 1);
        s.assert_all(cs);
        let m = s.check().model().cloned().unwrap();
        assert_eq!(m.get(d), Some(1));
    }
}
