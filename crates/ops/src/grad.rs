//! Reverse-mode vector-Jacobian products for every operator.
//!
//! The gradient-guided value search (Algorithm 3) backpropagates a loss from
//! the first operator that produced a NaN/Inf through the model prefix. Each
//! operator therefore needs a VJP: given its inputs, outputs and the
//! gradient of the loss w.r.t. its output, produce gradients w.r.t. each
//! input (`None` for non-differentiable inputs such as integers, booleans
//! and argmax results).
//!
//! When `proxy` is enabled the *proxy derivatives* of §3.3 are used:
//! operators that are undifferentiable at points (`Floor`, `Ceil`, `Round`)
//! use derivative 1 (the closest-left-derivative convention), and operators
//! with zero-gradient regions (`Relu`, `Clip`) use a small slope `α = 0.01`
//! whose sign follows the function's overall trend — exactly the LeakyReLU
//! trick the paper describes.

use nnsmith_tensor::{Conv2dParams, Pool2dParams, ReduceKind, Result, Tensor, TensorError};

use crate::op::{BinaryKind, Op, UnaryKind};

/// Slope used for proxy derivatives in zero-gradient regions.
pub const PROXY_ALPHA: f64 = 0.01;

fn elementwise_grad(x: &Tensor, y: &Tensor, g: &Tensor, f: impl Fn(f64, f64) -> f64) -> Tensor {
    let mut out = Tensor::zeros(x.shape(), x.dtype());
    for i in 0..x.numel() {
        let d = f(x.lin_f64(i), y.lin_f64(i));
        out.set_lin_f64(i, d * g.lin_f64(i));
    }
    out
}

fn usize_attr(e: &nnsmith_solver::IntExpr) -> Result<usize> {
    e.as_const()
        .and_then(|v| usize::try_from(v).ok())
        .ok_or_else(|| TensorError::unsupported("symbolic attribute in vjp"))
}

/// Computes `d(sum(loss))/d(input)` for a broadcast binary operator: the
/// per-element partial is evaluated on the broadcast shape, multiplied by
/// the output gradient, then summed back to the operand's shape.
fn broadcast_binary_grad(
    a: &Tensor,
    b: &Tensor,
    g: &Tensor,
    partial: impl Fn(f64, f64) -> f64,
) -> Result<Tensor> {
    let a_full = a.broadcast_to(g.shape())?;
    let b_full = b.broadcast_to(g.shape())?;
    let full = elementwise_grad(&a_full, &b_full, g, partial);
    full.sum_to(a.shape())
}

impl Op {
    /// True if gradients can flow through this operator's first input
    /// (float in, float out, differentiable at least via proxies).
    pub fn differentiable(&self) -> bool {
        !matches!(
            self,
            Op::Compare(_) | Op::Logical(_) | Op::Not | Op::ArgExtreme { .. }
        )
    }

    /// Vector-Jacobian product: gradients of a scalar loss w.r.t. each input
    /// given `grad_out` (gradient w.r.t. the operator's single output).
    ///
    /// Returns one entry per input; `None` marks inputs through which
    /// gradients do not flow (boolean conditions, integer tensors, …).
    ///
    /// # Errors
    ///
    /// Fails on symbolic attributes or shape inconsistencies.
    pub fn vjp(
        &self,
        inputs: &[&Tensor],
        outputs: &[&Tensor],
        grad_out: &Tensor,
        proxy: bool,
    ) -> Result<Vec<Option<Tensor>>> {
        let alpha = if proxy { PROXY_ALPHA } else { 0.0 };
        let g = grad_out;
        let grads: Vec<Option<Tensor>> = match self {
            Op::Unary(kind) => {
                let x = inputs[0];
                let y = outputs[0];
                if !x.dtype().is_float() {
                    return Ok(vec![None]);
                }
                let d = |f: &dyn Fn(f64, f64) -> f64| elementwise_grad(x, y, g, f);
                let gx = match kind {
                    UnaryKind::Relu => d(&|x, _| if x > 0.0 { 1.0 } else { alpha }),
                    UnaryKind::LeakyRelu => d(&|x, _| if x > 0.0 { 1.0 } else { 0.01 }),
                    UnaryKind::Sigmoid => d(&|_, y| y * (1.0 - y)),
                    UnaryKind::Sin => d(&|x, _| x.cos()),
                    UnaryKind::Cos => d(&|x, _| -x.sin()),
                    UnaryKind::Asin => d(&|x, _| {
                        let t = 1.0 - x * x;
                        if t > 1e-12 {
                            1.0 / t.sqrt()
                        } else {
                            // Pull back toward the valid domain.
                            x.signum()
                        }
                    }),
                    UnaryKind::Acos => d(&|x, _| {
                        let t = 1.0 - x * x;
                        if t > 1e-12 {
                            -1.0 / t.sqrt()
                        } else {
                            -x.signum()
                        }
                    }),
                    UnaryKind::Atan => d(&|x, _| 1.0 / (1.0 + x * x)),
                    UnaryKind::Tan => d(&|x, _| {
                        let t = x.tan();
                        1.0 + t * t
                    }),
                    UnaryKind::Tanh => d(&|_, y| 1.0 - y * y),
                    UnaryKind::Sqrt => d(&|x, _| {
                        if x > 1e-12 {
                            0.5 / x.sqrt()
                        } else {
                            1.0 // left-derivative proxy at/below zero
                        }
                    }),
                    UnaryKind::Exp => d(&|_, y| y),
                    UnaryKind::Log => d(&|x, _| {
                        if x.abs() > 1e-12 {
                            1.0 / x
                        } else {
                            1.0
                        }
                    }),
                    UnaryKind::Log2 => d(&|x, _| {
                        if x.abs() > 1e-12 {
                            1.0 / (x * std::f64::consts::LN_2)
                        } else {
                            1.0
                        }
                    }),
                    UnaryKind::Floor | UnaryKind::Ceil | UnaryKind::Round => {
                        // Zero a.e.; proxy derivative 1 preserves the trend.
                        d(&|_, _| if proxy { 1.0 } else { 0.0 })
                    }
                    UnaryKind::Neg => d(&|_, _| -1.0),
                    UnaryKind::Abs => d(&|x, _| if x >= 0.0 { 1.0 } else { -1.0 }),
                };
                vec![Some(gx)]
            }
            Op::Binary(kind) => {
                let (a, b) = (inputs[0], inputs[1]);
                if !a.dtype().is_float() {
                    return Ok(vec![None, None]);
                }
                let (ga, gb) = match kind {
                    BinaryKind::Add => (g.sum_to(a.shape())?, g.sum_to(b.shape())?),
                    BinaryKind::Sub => (g.sum_to(a.shape())?, g.neg()?.sum_to(b.shape())?),
                    BinaryKind::Mul => (
                        broadcast_binary_grad(a, b, g, |_, bv| bv)?,
                        broadcast_binary_grad(b, a, g, |_, av| av)?,
                    ),
                    BinaryKind::Div => (
                        broadcast_binary_grad(a, b, g, |_, bv| {
                            if bv.abs() > 1e-12 {
                                1.0 / bv
                            } else {
                                1.0
                            }
                        })?,
                        broadcast_binary_grad(b, a, g, |bv, av| {
                            if bv.abs() > 1e-12 {
                                -av / (bv * bv)
                            } else {
                                -av.signum()
                            }
                        })?,
                    ),
                    BinaryKind::Pow => (
                        broadcast_binary_grad(a, b, g, |av, bv| {
                            let d = bv * av.powf(bv - 1.0);
                            if d.is_finite() {
                                d
                            } else {
                                av.signum()
                            }
                        })?,
                        broadcast_binary_grad(b, a, g, |bv, av| {
                            if av > 1e-12 {
                                let d = av.powf(bv) * av.ln();
                                if d.is_finite() {
                                    d
                                } else {
                                    1.0
                                }
                            } else {
                                0.0
                            }
                        })?,
                    ),
                    BinaryKind::Max => (
                        broadcast_binary_grad(a, b, g, |av, bv| if av >= bv { 1.0 } else { 0.0 })?,
                        broadcast_binary_grad(b, a, g, |bv, av| if bv > av { 1.0 } else { 0.0 })?,
                    ),
                    BinaryKind::Min => (
                        broadcast_binary_grad(a, b, g, |av, bv| if av <= bv { 1.0 } else { 0.0 })?,
                        broadcast_binary_grad(b, a, g, |bv, av| if bv < av { 1.0 } else { 0.0 })?,
                    ),
                };
                vec![Some(ga), Some(gb)]
            }
            Op::Compare(_) | Op::Logical(_) | Op::Not | Op::ArgExtreme { .. } => {
                vec![None; self.arity()]
            }
            Op::Where => {
                let cond = inputs[0];
                let (a, b) = (inputs[1], inputs[2]);
                if !a.dtype().is_float() {
                    return Ok(vec![None, None, None]);
                }
                let cond_full = cond.broadcast_to(g.shape())?;
                let mut ga_full = Tensor::zeros(g.shape(), a.dtype());
                let mut gb_full = Tensor::zeros(g.shape(), a.dtype());
                let cdata = cond_full.as_bool().expect("where cond bool");
                for i in 0..g.numel() {
                    if cdata[i] {
                        ga_full.set_lin_f64(i, g.lin_f64(i));
                    } else {
                        gb_full.set_lin_f64(i, g.lin_f64(i));
                    }
                }
                vec![
                    None,
                    Some(ga_full.sum_to(a.shape())?),
                    Some(gb_full.sum_to(b.shape())?),
                ]
            }
            Op::Cast { to } => {
                let x = inputs[0];
                if x.dtype().is_float() && to.is_float() {
                    vec![Some(g.cast(x.dtype()))]
                } else {
                    vec![None]
                }
            }
            Op::Softmax { axis } => {
                let y = outputs[0];
                let gy = g.mul(y)?;
                let s = gy.reduce(ReduceKind::Sum, &[*axis], true)?;
                let corrected = g.sub(&s.broadcast_to(g.shape())?)?;
                vec![Some(corrected.mul(y)?)]
            }
            Op::Clip { lo, hi } => {
                let x = inputs[0];
                if !x.dtype().is_float() {
                    return Ok(vec![None]);
                }
                let (lo, hi) = (*lo as f64, *hi as f64);
                vec![Some(elementwise_grad(x, outputs[0], g, |x, _| {
                    if x > lo && x < hi {
                        1.0
                    } else {
                        alpha
                    }
                }))]
            }
            Op::MatMul => {
                let (a, b) = (inputs[0], inputs[1]);
                if !a.dtype().is_float() {
                    return Ok(vec![None, None]);
                }
                let (ga, gb) = matmul_vjp(a, b, g)?;
                vec![Some(ga), Some(gb)]
            }
            Op::Dense { .. } => {
                let (x, w, b) = (inputs[0], inputs[1], inputs[2]);
                if !x.dtype().is_float() {
                    return Ok(vec![None, None, None]);
                }
                let (gx, gw) = matmul_vjp(x, w, g)?;
                let gb = g.sum_to(b.shape())?;
                vec![Some(gx), Some(gw), Some(gb)]
            }
            Op::Conv2d {
                stride,
                padding,
                dilation,
                ..
            } => {
                let params = Conv2dParams {
                    stride: (usize_attr(stride)?, usize_attr(stride)?),
                    padding: (usize_attr(padding)?, usize_attr(padding)?),
                    dilation: (usize_attr(dilation)?, usize_attr(dilation)?),
                    groups: 1,
                };
                let (x, w, b) = (inputs[0], inputs[1], inputs[2]);
                let gx = x.conv2d_grad_input(w, g, &params)?;
                let gw = x.conv2d_grad_weight(w, g, &params)?;
                // Bias gradient: sum over batch and spatial dims.
                let gb = g.sum_to(&[1, b.shape()[0], 1, 1])?.reshaped(b.shape())?;
                vec![Some(gx), Some(gw), Some(gb)]
            }
            Op::MaxPool2d {
                kh,
                kw,
                stride,
                padding,
            } => {
                let params = Pool2dParams {
                    kernel: (usize_attr(kh)?, usize_attr(kw)?),
                    stride: (usize_attr(stride)?, usize_attr(stride)?),
                    padding: (usize_attr(padding)?, usize_attr(padding)?),
                };
                vec![Some(inputs[0].max_pool2d_grad(g, &params)?)]
            }
            Op::AvgPool2d {
                kh,
                kw,
                stride,
                padding,
            } => {
                let params = Pool2dParams {
                    kernel: (usize_attr(kh)?, usize_attr(kw)?),
                    stride: (usize_attr(stride)?, usize_attr(stride)?),
                    padding: (usize_attr(padding)?, usize_attr(padding)?),
                };
                vec![Some(inputs[0].avg_pool2d_grad(g, &params)?)]
            }
            Op::BatchNorm => {
                let (x, scale, _bias, mean, var) =
                    (inputs[0], inputs[1], inputs[2], inputs[3], inputs[4]);
                let c = x.shape()[1];
                let mut stat_shape = vec![1usize; x.rank()];
                stat_shape[1] = c;
                let eps = 1e-5;
                let var_b = var.reshaped(&stat_shape)?.broadcast_to(x.shape())?;
                let mean_b = mean.reshaped(&stat_shape)?.broadcast_to(x.shape())?;
                let scale_b = scale.reshaped(&stat_shape)?.broadcast_to(x.shape())?;
                let mut gx = Tensor::zeros(x.shape(), x.dtype());
                let mut gscale_full = Tensor::zeros(x.shape(), x.dtype());
                let mut gmean_full = Tensor::zeros(x.shape(), x.dtype());
                let mut gvar_full = Tensor::zeros(x.shape(), x.dtype());
                for i in 0..x.numel() {
                    let gv = g.lin_f64(i);
                    let xv = x.lin_f64(i);
                    let mv = mean_b.lin_f64(i);
                    let vv = var_b.lin_f64(i) + eps;
                    let sv = scale_b.lin_f64(i);
                    // Treat var+eps <= 0 as a vulnerable point: derivative
                    // proxy pushes var upward.
                    if vv > 1e-12 {
                        let inv = 1.0 / vv.sqrt();
                        gx.set_lin_f64(i, gv * sv * inv);
                        gscale_full.set_lin_f64(i, gv * (xv - mv) * inv);
                        gmean_full.set_lin_f64(i, -gv * sv * inv);
                        gvar_full.set_lin_f64(i, -0.5 * gv * sv * (xv - mv) * inv / vv);
                    } else {
                        gvar_full.set_lin_f64(i, -gv.abs());
                    }
                }
                let gscale = gscale_full.sum_to(&stat_shape)?.reshaped(scale.shape())?;
                let gbias = g.sum_to(&stat_shape)?.reshaped(scale.shape())?;
                let gmean = gmean_full.sum_to(&stat_shape)?.reshaped(scale.shape())?;
                let gvar = gvar_full.sum_to(&stat_shape)?.reshaped(scale.shape())?;
                vec![Some(gx), Some(gscale), Some(gbias), Some(gmean), Some(gvar)]
            }
            Op::Reshape { .. } | Op::Squeeze { .. } | Op::Unsqueeze { .. } | Op::Flatten { .. } => {
                if !inputs[0].dtype().is_float() {
                    return Ok(vec![None]);
                }
                vec![Some(g.reshaped(inputs[0].shape())?)]
            }
            Op::Transpose { perm } => {
                if !inputs[0].dtype().is_float() {
                    return Ok(vec![None]);
                }
                let mut inv = vec![0usize; perm.len()];
                for (i, &p) in perm.iter().enumerate() {
                    inv[p] = i;
                }
                vec![Some(g.transpose(&inv)?)]
            }
            Op::Slice {
                starts,
                ends,
                steps,
            } => {
                if !inputs[0].dtype().is_float() {
                    return Ok(vec![None]);
                }
                let s: Result<Vec<usize>> = starts.iter().map(usize_attr).collect();
                let e: Result<Vec<usize>> = ends.iter().map(usize_attr).collect();
                let st: Vec<usize> = steps.iter().map(|&x| x as usize).collect();
                vec![Some(g.slice_scatter(inputs[0].shape(), &s?, &e?, &st)?)]
            }
            Op::Pad { pads, .. } => {
                if !inputs[0].dtype().is_float() {
                    return Ok(vec![None]);
                }
                // Inverse padding (crop the padded region back out). For
                // reflect/replicate this ignores edge accumulation — an
                // intentional proxy; the search only needs the trend.
                let inv: Result<Vec<(i64, i64)>> = pads
                    .iter()
                    .map(|(b, a)| {
                        let b = b
                            .as_const()
                            .ok_or_else(|| TensorError::unsupported("symbolic pad"))?;
                        let a = a
                            .as_const()
                            .ok_or_else(|| TensorError::unsupported("symbolic pad"))?;
                        Ok((-b, -a))
                    })
                    .collect();
                vec![Some(g.pad(&inv?, nnsmith_tensor::PadMode::Constant(0.0))?)]
            }
            Op::Concat { axis, .. } => {
                if !inputs[0].dtype().is_float() {
                    return Ok(vec![None; inputs.len()]);
                }
                let mut grads = Vec::with_capacity(inputs.len());
                let mut offset = 0usize;
                for t in inputs {
                    let mut starts = vec![0usize; t.rank()];
                    let mut ends: Vec<usize> = g.shape().to_vec();
                    let steps = vec![1usize; t.rank()];
                    starts[*axis] = offset;
                    ends[*axis] = offset + t.shape()[*axis];
                    grads.push(Some(g.slice(&starts, &ends, &steps)?));
                    offset += t.shape()[*axis];
                }
                grads
            }
            Op::BroadcastTo { .. } => {
                if !inputs[0].dtype().is_float() {
                    return Ok(vec![None]);
                }
                vec![Some(g.sum_to(inputs[0].shape())?)]
            }
            Op::Reduce {
                kind,
                axes,
                keepdims,
            } => {
                let x = inputs[0];
                if !x.dtype().is_float() {
                    return Ok(vec![None]);
                }
                // Reshape g to the keepdims form so it broadcasts to x.
                let keep_shape: Vec<usize> = {
                    let axes_norm: Vec<usize> = if axes.is_empty() {
                        (0..x.rank()).collect()
                    } else {
                        axes.clone()
                    };
                    x.shape()
                        .iter()
                        .enumerate()
                        .map(|(d, &s)| if axes_norm.contains(&d) { 1 } else { s })
                        .collect()
                };
                let g_keep = if *keepdims {
                    g.clone()
                } else {
                    g.reshaped(&keep_shape)?
                };
                let g_full = g_keep.broadcast_to(x.shape())?;
                let gx = match kind {
                    ReduceKind::Sum => g_full,
                    ReduceKind::Mean => {
                        let count: usize = x.numel() / g.numel().max(1);
                        let scale = Tensor::full(x.shape(), x.dtype(), 1.0 / count as f64);
                        g_full.mul(&scale)?
                    }
                    ReduceKind::Prod => {
                        let y_keep = outputs[0].reshaped(&keep_shape)?.broadcast_to(x.shape())?;
                        elementwise_grad(x, &y_keep, &g_full, |xv, yv| {
                            if xv.abs() > 1e-12 {
                                yv / xv
                            } else {
                                0.0
                            }
                        })
                    }
                    ReduceKind::Max | ReduceKind::Min => {
                        let y_keep = outputs[0].reshaped(&keep_shape)?.broadcast_to(x.shape())?;
                        elementwise_grad(
                            x,
                            &y_keep,
                            &g_full,
                            |xv, yv| {
                                if xv == yv {
                                    1.0
                                } else {
                                    0.0
                                }
                            },
                        )
                    }
                };
                vec![Some(gx)]
            }
            Op::ResizeNearest { scale_h, scale_w } => {
                let x = inputs[0];
                if !x.dtype().is_float() {
                    return Ok(vec![None]);
                }
                let (sh, sw) = (usize_attr(scale_h)?, usize_attr(scale_w)?);
                let mut gx = Tensor::zeros(x.shape(), x.dtype());
                let (n, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
                let g_strides = nnsmith_tensor::strides_of(g.shape());
                let x_strides = nnsmith_tensor::strides_of(x.shape());
                for ni in 0..n {
                    for ci in 0..c {
                        for oy in 0..h * sh {
                            for ox in 0..w * sw {
                                let src = ni * x_strides[0]
                                    + ci * x_strides[1]
                                    + (oy / sh) * x_strides[2]
                                    + ox / sw;
                                let gidx =
                                    ni * g_strides[0] + ci * g_strides[1] + oy * g_strides[2] + ox;
                                gx.set_lin_f64(src, gx.lin_f64(src) + g.lin_f64(gidx));
                            }
                        }
                    }
                }
                vec![Some(gx)]
            }
        };
        Ok(grads)
    }
}

fn matmul_vjp(a: &Tensor, b: &Tensor, g: &Tensor) -> Result<(Tensor, Tensor)> {
    // Promote rank-1 operands so the transposed-matmul formulas apply, then
    // strip/sum the promotions back out.
    let a2 = if a.rank() == 1 {
        a.reshaped(&[1, a.shape()[0]])?
    } else {
        a.clone()
    };
    let b2 = if b.rank() == 1 {
        b.reshaped(&[b.shape()[0], 1])?
    } else {
        b.clone()
    };
    // Rebuild the promoted output gradient shape.
    let mut g2_shape: Vec<usize> = g.shape().to_vec();
    if a.rank() == 1 {
        let insert_at = g2_shape
            .len()
            .saturating_sub(if b.rank() == 1 { 0 } else { 1 });
        g2_shape.insert(insert_at, 1);
    }
    if b.rank() == 1 {
        g2_shape.push(1);
    }
    let g2 = g.reshaped(&g2_shape)?;
    let ga2 = g2.matmul(&b2.swap_last_two()?)?;
    let gb2 = a2.swap_last_two()?.matmul(&g2)?;
    let ga = ga2.sum_to(a2.shape())?.reshaped(a.shape())?;
    let gb = gb2.sum_to(b2.shape())?.reshaped(b.shape())?;
    Ok((ga, gb))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnsmith_solver::IntExpr;
    use nnsmith_tensor::DType;

    /// Finite-difference check of d(sum(op(x…)))/dx against the VJP.
    fn check_grad(op: &Op, inputs: &[Tensor], input_idx: usize, tol: f64) {
        let refs: Vec<&Tensor> = inputs.iter().collect();
        let out = op.eval(&refs).unwrap();
        let g = Tensor::ones(out[0].shape(), out[0].dtype());
        let out_refs: Vec<&Tensor> = out.iter().collect();
        let grads = op.vjp(&refs, &out_refs, &g, true).unwrap();
        let gx = grads[input_idx].as_ref().expect("grad exists");
        let eps = 1e-5;
        let x = &inputs[input_idx];
        for i in 0..x.numel() {
            let mut plus = inputs.to_vec();
            let mut t = x.clone();
            t.set_lin_f64(i, x.lin_f64(i) + eps);
            plus[input_idx] = t;
            let mut minus = inputs.to_vec();
            let mut t = x.clone();
            t.set_lin_f64(i, x.lin_f64(i) - eps);
            minus[input_idx] = t;
            let f = |ins: &[Tensor]| -> f64 {
                let refs: Vec<&Tensor> = ins.iter().collect();
                op.eval(&refs).unwrap()[0].to_f64_vec().iter().sum::<f64>()
            };
            let num = (f(&plus) - f(&minus)) / (2.0 * eps);
            let ana = gx.lin_f64(i);
            assert!(
                (num - ana).abs() < tol,
                "{} input {input_idx} elem {i}: numeric {num} vs analytic {ana}",
                op.name()
            );
        }
    }

    fn t64(shape: &[usize], data: Vec<f64>) -> Tensor {
        Tensor::from_f64(shape, data).unwrap()
    }

    #[test]
    fn unary_grads_match_finite_difference() {
        let x = t64(&[4], vec![0.3, -0.4, 0.7, 0.2]);
        for kind in [
            UnaryKind::Sigmoid,
            UnaryKind::Sin,
            UnaryKind::Cos,
            UnaryKind::Atan,
            UnaryKind::Tanh,
            UnaryKind::Neg,
            UnaryKind::Exp,
        ] {
            check_grad(&Op::Unary(kind), &[x.clone()], 0, 1e-4);
        }
        // Positive-domain ops.
        let xp = t64(&[3], vec![0.5, 1.5, 2.5]);
        for kind in [UnaryKind::Sqrt, UnaryKind::Log, UnaryKind::Log2] {
            check_grad(&Op::Unary(kind), &[xp.clone()], 0, 1e-4);
        }
        // In-domain asin/acos.
        let xd = t64(&[3], vec![-0.5, 0.1, 0.6]);
        for kind in [UnaryKind::Asin, UnaryKind::Acos] {
            check_grad(&Op::Unary(kind), &[xd.clone()], 0, 1e-4);
        }
    }

    #[test]
    fn binary_grads_match_finite_difference() {
        let a = t64(&[3], vec![1.2, 0.7, 2.1]);
        let b = t64(&[3], vec![0.4, 1.9, 0.8]);
        for kind in [
            BinaryKind::Add,
            BinaryKind::Sub,
            BinaryKind::Mul,
            BinaryKind::Div,
            BinaryKind::Pow,
        ] {
            check_grad(&Op::Binary(kind), &[a.clone(), b.clone()], 0, 1e-3);
            check_grad(&Op::Binary(kind), &[a.clone(), b.clone()], 1, 1e-3);
        }
    }

    #[test]
    fn broadcast_add_grads_sum() {
        let a = t64(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = t64(&[3], vec![1., 1., 1.]);
        check_grad(&Op::Binary(BinaryKind::Add), &[a, b], 1, 1e-4);
    }

    #[test]
    fn matmul_grads() {
        let a = t64(&[2, 3], vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6]);
        let b = t64(&[3, 2], vec![1.0, -0.5, 0.25, 0.75, -1.0, 0.5]);
        check_grad(&Op::MatMul, &[a.clone(), b.clone()], 0, 1e-4);
        check_grad(&Op::MatMul, &[a, b], 1, 1e-4);
    }

    #[test]
    fn matmul_vector_grads() {
        let a = t64(&[3], vec![0.1, 0.2, 0.3]);
        let b = t64(&[3, 2], vec![1.0, -0.5, 0.25, 0.75, -1.0, 0.5]);
        check_grad(&Op::MatMul, &[a.clone(), b.clone()], 0, 1e-4);
        check_grad(&Op::MatMul, &[a, b], 1, 1e-4);
    }

    #[test]
    fn softmax_grad() {
        let x = t64(&[2, 3], vec![0.5, 1.0, -0.5, 2.0, 0.0, 1.0]);
        check_grad(&Op::Softmax { axis: 1 }, &[x], 0, 1e-4);
    }

    #[test]
    fn movement_grads() {
        let x = t64(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        check_grad(
            &Op::Reshape {
                dims: vec![IntExpr::Const(3), IntExpr::Const(2)],
            },
            &[x.clone()],
            0,
            1e-6,
        );
        check_grad(&Op::Transpose { perm: vec![1, 0] }, &[x.clone()], 0, 1e-6);
        check_grad(
            &Op::Slice {
                starts: vec![IntExpr::Const(0), IntExpr::Const(1)],
                ends: vec![IntExpr::Const(2), IntExpr::Const(3)],
                steps: vec![1, 1],
            },
            &[x.clone()],
            0,
            1e-6,
        );
        check_grad(
            &Op::BroadcastTo {
                dims: vec![IntExpr::Const(2), IntExpr::Const(2), IntExpr::Const(3)],
            },
            &[x],
            0,
            1e-6,
        );
    }

    #[test]
    fn reduce_grads() {
        let x = t64(&[2, 3], vec![1., 5., 3., 4., 2., 6.]);
        for kind in [ReduceKind::Sum, ReduceKind::Mean, ReduceKind::Max] {
            check_grad(
                &Op::Reduce {
                    kind,
                    axes: vec![1],
                    keepdims: false,
                },
                &[x.clone()],
                0,
                1e-4,
            );
        }
    }

    #[test]
    fn conv_grads_via_vjp() {
        let x = t64(&[1, 1, 3, 3], (0..9).map(|i| i as f64 * 0.1).collect());
        let w = t64(&[1, 1, 2, 2], vec![0.5, -0.25, 0.75, 1.0]);
        let b = t64(&[1], vec![0.1]);
        let op = Op::Conv2d {
            in_channels: IntExpr::Const(1),
            out_channels: IntExpr::Const(1),
            kh: IntExpr::Const(2),
            kw: IntExpr::Const(2),
            stride: IntExpr::Const(1),
            padding: IntExpr::Const(0),
            dilation: IntExpr::Const(1),
        };
        check_grad(&op, &[x.clone(), w.clone(), b.clone()], 0, 1e-4);
        check_grad(&op, &[x.clone(), w.clone(), b.clone()], 1, 1e-4);
        check_grad(&op, &[x, w, b], 2, 1e-4);
    }

    #[test]
    fn comparison_has_no_grads() {
        let a = t64(&[2], vec![1.0, 2.0]);
        let op = Op::Compare(crate::op::CompareKind::Less);
        let out = op.eval(&[&a, &a]).unwrap();
        let g = Tensor::ones(out[0].shape(), DType::Bool);
        let grads = op.vjp(&[&a, &a], &[&out[0]], &g, true).unwrap();
        assert!(grads.iter().all(Option::is_none));
    }

    #[test]
    fn relu_proxy_vs_exact() {
        let x = t64(&[2], vec![-1.0, 1.0]);
        let op = Op::Unary(UnaryKind::Relu);
        let out = op.eval(&[&x]).unwrap();
        let g = Tensor::ones(&[2], DType::F64);
        let with_proxy = op.vjp(&[&x], &[&out[0]], &g, true).unwrap();
        let without = op.vjp(&[&x], &[&out[0]], &g, false).unwrap();
        assert_eq!(with_proxy[0].as_ref().unwrap().lin_f64(0), PROXY_ALPHA);
        assert_eq!(without[0].as_ref().unwrap().lin_f64(0), 0.0);
        assert_eq!(with_proxy[0].as_ref().unwrap().lin_f64(1), 1.0);
    }

    #[test]
    fn where_grads_route_by_condition() {
        let c = Tensor::from_bool(&[2], vec![true, false]).unwrap();
        let a = t64(&[2], vec![1.0, 2.0]);
        let b = t64(&[2], vec![3.0, 4.0]);
        let out = Op::Where.eval(&[&c, &a, &b]).unwrap();
        let g = Tensor::ones(&[2], DType::F64);
        let grads = Op::Where.vjp(&[&c, &a, &b], &[&out[0]], &g, true).unwrap();
        assert!(grads[0].is_none());
        assert_eq!(grads[1].as_ref().unwrap().to_f64_vec(), vec![1.0, 0.0]);
        assert_eq!(grads[2].as_ref().unwrap().to_f64_vec(), vec![0.0, 1.0]);
    }
}
