//! Reference execution of whole graphs on the tensor runtime.
//!
//! This is the "reference backend" of the differential-testing loop (the
//! role PyTorch plays in the paper): models are evaluated operator by
//! operator in topological order, and per-value results are retained so the
//! gradient-guided search can inspect intermediate tensors.

use std::collections::HashMap;

use nnsmith_graph::{Graph, GraphError, NodeId, NodeKind, ValueRef};
use nnsmith_tensor::{Tensor, TensorError};

use crate::op::Op;

/// Concrete tensors bound to the `Input` and `Weight` nodes of a graph.
pub type Bindings = HashMap<NodeId, Tensor>;

/// Errors from graph execution.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// The graph is structurally invalid.
    Graph(GraphError),
    /// An input or weight node has no binding.
    MissingBinding(NodeId),
    /// A binding disagrees with the node's declared type.
    BindingType {
        /// The offending node.
        node: NodeId,
        /// Description of the mismatch.
        context: String,
    },
    /// A kernel failed at a node.
    Kernel {
        /// The node whose operator failed.
        node: NodeId,
        /// The kernel error.
        error: TensorError,
    },
    /// The graph contains a remaining placeholder or symbolic type.
    NotConcrete(NodeId),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Graph(e) => write!(f, "invalid graph: {e}"),
            ExecError::MissingBinding(n) => write!(f, "missing binding for node {n}"),
            ExecError::BindingType { node, context } => {
                write!(f, "binding type mismatch at {node}: {context}")
            }
            ExecError::Kernel { node, error } => write!(f, "kernel error at {node}: {error}"),
            ExecError::NotConcrete(n) => write!(f, "node {n} is not concrete"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Result of executing a graph: every produced value plus the model
/// outputs in a stable order.
#[derive(Debug, Clone)]
pub struct Execution {
    /// Tensor produced for every value in the graph.
    pub values: HashMap<ValueRef, Tensor>,
    /// The unconsumed (output) values, sorted by node id.
    pub outputs: Vec<(ValueRef, Tensor)>,
    /// First node (in topological order) whose output contains NaN/Inf.
    pub first_exceptional: Option<NodeId>,
}

impl Execution {
    /// True if any produced value contains NaN/Inf.
    pub fn has_exceptional(&self) -> bool {
        self.first_exceptional.is_some()
    }
}

/// Executes `graph` with the given input/weight bindings on the reference
/// kernels.
///
/// Unlike a compiler backend, execution does not stop at the first NaN/Inf
/// — it records where the first one appeared (`first_exceptional`) so the
/// value search can target that operator, exactly as Algorithm 3 needs.
///
/// # Errors
///
/// Fails on structural problems, missing/mismatched bindings, or kernel
/// errors (e.g. integer division by zero).
pub fn execute(graph: &Graph<Op>, bindings: &Bindings) -> Result<Execution, ExecError> {
    let order = graph.topo_order().map_err(ExecError::Graph)?;
    let mut values: HashMap<ValueRef, Tensor> = HashMap::new();
    let mut first_exceptional: Option<NodeId> = None;

    for id in order {
        let node = graph.node(id);
        let produced: Vec<Tensor> = match &node.kind {
            NodeKind::Placeholder => return Err(ExecError::NotConcrete(id)),
            NodeKind::Input | NodeKind::Weight => {
                let t = bindings
                    .get(&id)
                    .ok_or(ExecError::MissingBinding(id))?
                    .clone();
                let declared = &node.outputs[0];
                let dims = declared.concrete_dims().ok_or(ExecError::NotConcrete(id))?;
                if t.shape() != dims.as_slice() || t.dtype() != declared.dtype {
                    return Err(ExecError::BindingType {
                        node: id,
                        context: format!("expected {declared}, got {}[{:?}]", t.dtype(), t.shape()),
                    });
                }
                vec![t]
            }
            NodeKind::Operator(op) => {
                let inputs: Vec<&Tensor> = node
                    .inputs
                    .iter()
                    .map(|v| values.get(v).expect("topo order"))
                    .collect();
                op.eval(&inputs)
                    .map_err(|error| ExecError::Kernel { node: id, error })?
            }
        };
        for (index, t) in produced.into_iter().enumerate() {
            if first_exceptional.is_none() && t.has_non_finite() {
                first_exceptional = Some(id);
            }
            values.insert(ValueRef { node: id, index }, t);
        }
    }

    let mut outputs: Vec<(ValueRef, Tensor)> = graph
        .output_values()
        .into_iter()
        .map(|v| (v, values.get(&v).expect("produced").clone()))
        .collect();
    outputs.sort_by_key(|(v, _)| (v.node, v.index));
    Ok(Execution {
        values,
        outputs,
        first_exceptional,
    })
}

/// Creates random bindings for every input/weight of a concrete graph:
/// floats uniform in `[lo, hi)`, integers in a small non-negative range,
/// booleans fair.
pub fn random_bindings<R: rand::Rng + ?Sized>(
    graph: &Graph<Op>,
    lo: f64,
    hi: f64,
    rng: &mut R,
) -> Result<Bindings, ExecError> {
    let mut out = Bindings::new();
    for (id, node) in graph.iter() {
        if matches!(node.kind, NodeKind::Input | NodeKind::Weight) {
            let t = &node.outputs[0];
            let dims = t.concrete_dims().ok_or(ExecError::NotConcrete(id))?;
            let tensor = if t.dtype.is_float() {
                Tensor::uniform(&dims, t.dtype, lo, hi, rng)
            } else if t.dtype.is_int() {
                Tensor::uniform(&dims, t.dtype, 1.0, 5.0, rng)
            } else {
                Tensor::uniform(&dims, t.dtype, 0.0, 1.0, rng)
            };
            out.insert(id, tensor);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{BinaryKind, UnaryKind};
    use nnsmith_graph::TensorType;
    use nnsmith_tensor::DType;
    use rand::SeedableRng;

    fn simple_graph() -> (Graph<Op>, NodeId, NodeId) {
        // out = Relu(x) + w
        let mut g: Graph<Op> = Graph::new();
        let x = g.add_node(
            NodeKind::Input,
            vec![],
            vec![TensorType::concrete(DType::F32, &[4])],
        );
        let w = g.add_node(
            NodeKind::Weight,
            vec![],
            vec![TensorType::concrete(DType::F32, &[4])],
        );
        let r = g.add_node(
            NodeKind::Operator(Op::Unary(UnaryKind::Relu)),
            vec![ValueRef::output0(x)],
            vec![TensorType::concrete(DType::F32, &[4])],
        );
        g.add_node(
            NodeKind::Operator(Op::Binary(BinaryKind::Add)),
            vec![ValueRef::output0(r), ValueRef::output0(w)],
            vec![TensorType::concrete(DType::F32, &[4])],
        );
        (g, x, w)
    }

    #[test]
    fn executes_simple_graph() {
        let (g, x, w) = simple_graph();
        let mut b = Bindings::new();
        b.insert(x, Tensor::from_f32(&[4], vec![-1., 2., -3., 4.]).unwrap());
        b.insert(w, Tensor::from_f32(&[4], vec![10., 10., 10., 10.]).unwrap());
        let exec = execute(&g, &b).unwrap();
        assert_eq!(exec.outputs.len(), 1);
        assert_eq!(exec.outputs[0].1.as_f32().unwrap(), &[10., 12., 10., 14.]);
        assert!(!exec.has_exceptional());
    }

    #[test]
    fn missing_binding_reported() {
        let (g, x, _) = simple_graph();
        let mut b = Bindings::new();
        b.insert(x, Tensor::zeros(&[4], DType::F32));
        assert!(matches!(execute(&g, &b), Err(ExecError::MissingBinding(_))));
    }

    #[test]
    fn binding_shape_mismatch_reported() {
        let (g, x, w) = simple_graph();
        let mut b = Bindings::new();
        b.insert(x, Tensor::zeros(&[5], DType::F32));
        b.insert(w, Tensor::zeros(&[4], DType::F32));
        assert!(matches!(
            execute(&g, &b),
            Err(ExecError::BindingType { .. })
        ));
    }

    #[test]
    fn first_exceptional_identified() {
        // sqrt(x) with negative x makes NaN at the sqrt node, not later.
        let mut g: Graph<Op> = Graph::new();
        let x = g.add_node(
            NodeKind::Input,
            vec![],
            vec![TensorType::concrete(DType::F32, &[2])],
        );
        let s = g.add_node(
            NodeKind::Operator(Op::Unary(UnaryKind::Sqrt)),
            vec![ValueRef::output0(x)],
            vec![TensorType::concrete(DType::F32, &[2])],
        );
        g.add_node(
            NodeKind::Operator(Op::Unary(UnaryKind::Relu)),
            vec![ValueRef::output0(s)],
            vec![TensorType::concrete(DType::F32, &[2])],
        );
        let mut b = Bindings::new();
        b.insert(x, Tensor::from_f32(&[2], vec![-1.0, 4.0]).unwrap());
        let exec = execute(&g, &b).unwrap();
        assert_eq!(exec.first_exceptional, Some(s));
    }

    #[test]
    fn random_bindings_cover_all_leaves() {
        let (g, ..) = simple_graph();
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let b = random_bindings(&g, -1.0, 1.0, &mut rng).unwrap();
        assert_eq!(b.len(), 2);
        assert!(execute(&g, &b).is_ok());
    }
}
