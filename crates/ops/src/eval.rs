//! Concrete execution of operators on tensors (the reference semantics).

use nnsmith_tensor::{Conv2dParams, PadMode, Pool2dParams, Result, Tensor, TensorError};

use crate::op::{BinaryKind, CompareKind, LogicalKind, Op, PadKind, UnaryKind};

fn attr_usize(e: &nnsmith_solver::IntExpr, what: &str) -> Result<usize> {
    let v = e
        .as_const()
        .ok_or_else(|| TensorError::unsupported(format!("symbolic attribute in eval: {what}")))?;
    usize::try_from(v).map_err(|_| TensorError::shape(format!("negative attribute {what}: {v}")))
}

fn attr_i64(e: &nnsmith_solver::IntExpr, what: &str) -> Result<i64> {
    e.as_const()
        .ok_or_else(|| TensorError::unsupported(format!("symbolic attribute in eval: {what}")))
}

impl Op {
    /// Executes the operator on concrete inputs with reference semantics.
    ///
    /// The operator must be concrete (see [`Op::concretize`]).
    ///
    /// # Errors
    ///
    /// Propagates kernel errors (shape/dtype mismatches, integer division by
    /// zero) and fails on symbolic attributes.
    pub fn eval(&self, inputs: &[&Tensor]) -> Result<Vec<Tensor>> {
        if inputs.len() != self.arity() {
            return Err(TensorError::shape(format!(
                "{} expects {} inputs, got {}",
                self.name(),
                self.arity(),
                inputs.len()
            )));
        }
        let out = match self {
            Op::Unary(kind) => {
                let x = inputs[0];
                match kind {
                    UnaryKind::Relu => x.relu()?,
                    UnaryKind::LeakyRelu => x.leaky_relu(0.01)?,
                    UnaryKind::Sigmoid => x.sigmoid()?,
                    UnaryKind::Sin => x.sin()?,
                    UnaryKind::Cos => x.cos()?,
                    UnaryKind::Asin => x.asin()?,
                    UnaryKind::Acos => x.acos()?,
                    UnaryKind::Atan => x.atan()?,
                    UnaryKind::Tan => x.tan()?,
                    UnaryKind::Tanh => x.tanh()?,
                    UnaryKind::Sqrt => x.sqrt()?,
                    UnaryKind::Exp => x.exp()?,
                    UnaryKind::Log => x.ln()?,
                    UnaryKind::Log2 => x.log2()?,
                    UnaryKind::Floor => x.floor()?,
                    UnaryKind::Ceil => x.ceil()?,
                    UnaryKind::Round => x.round()?,
                    UnaryKind::Neg => x.neg()?,
                    UnaryKind::Abs => x.abs()?,
                }
            }
            Op::Binary(kind) => {
                let (a, b) = (inputs[0], inputs[1]);
                match kind {
                    BinaryKind::Add => a.add(b)?,
                    BinaryKind::Sub => a.sub(b)?,
                    BinaryKind::Mul => a.mul(b)?,
                    BinaryKind::Div => a.div(b)?,
                    BinaryKind::Pow => a.pow(b)?,
                    BinaryKind::Max => a.maximum(b)?,
                    BinaryKind::Min => a.minimum(b)?,
                }
            }
            Op::Compare(kind) => {
                let (a, b) = (inputs[0], inputs[1]);
                match kind {
                    CompareKind::Equal => a.equal(b)?,
                    CompareKind::NotEqual => a.not_equal(b)?,
                    CompareKind::Less => a.less(b)?,
                    CompareKind::LessEqual => a.less_equal(b)?,
                    CompareKind::Greater => a.greater(b)?,
                    CompareKind::GreaterEqual => a.greater_equal(b)?,
                }
            }
            Op::Logical(kind) => {
                let (a, b) = (inputs[0], inputs[1]);
                match kind {
                    LogicalKind::And => a.logical_and(b)?,
                    LogicalKind::Or => a.logical_or(b)?,
                    LogicalKind::Xor => a.logical_xor(b)?,
                }
            }
            Op::Not => inputs[0].logical_not()?,
            Op::Where => Tensor::where_select(inputs[0], inputs[1], inputs[2])?,
            Op::Cast { to } => inputs[0].cast(*to),
            Op::Softmax { axis } => inputs[0].softmax(*axis)?,
            Op::Clip { lo, hi } => inputs[0].clip(*lo as f64, *hi as f64)?,
            Op::MatMul => inputs[0].matmul(inputs[1])?,
            Op::Dense { .. } => {
                let y = inputs[0].matmul(inputs[1])?;
                y.add(inputs[2])?
            }
            Op::Conv2d {
                stride,
                padding,
                dilation,
                ..
            } => {
                let params = Conv2dParams {
                    stride: (attr_usize(stride, "stride")?, attr_usize(stride, "stride")?),
                    padding: (
                        attr_usize(padding, "padding")?,
                        attr_usize(padding, "padding")?,
                    ),
                    dilation: (
                        attr_usize(dilation, "dilation")?,
                        attr_usize(dilation, "dilation")?,
                    ),
                    groups: 1,
                };
                inputs[0].conv2d(inputs[1], Some(inputs[2]), &params)?
            }
            Op::MaxPool2d {
                kh,
                kw,
                stride,
                padding,
            } => {
                let params = Pool2dParams {
                    kernel: (attr_usize(kh, "kh")?, attr_usize(kw, "kw")?),
                    stride: (attr_usize(stride, "stride")?, attr_usize(stride, "stride")?),
                    padding: (
                        attr_usize(padding, "padding")?,
                        attr_usize(padding, "padding")?,
                    ),
                };
                inputs[0].max_pool2d(&params)?
            }
            Op::AvgPool2d {
                kh,
                kw,
                stride,
                padding,
            } => {
                let params = Pool2dParams {
                    kernel: (attr_usize(kh, "kh")?, attr_usize(kw, "kw")?),
                    stride: (attr_usize(stride, "stride")?, attr_usize(stride, "stride")?),
                    padding: (
                        attr_usize(padding, "padding")?,
                        attr_usize(padding, "padding")?,
                    ),
                };
                inputs[0].avg_pool2d(&params)?
            }
            Op::BatchNorm => {
                inputs[0].batch_norm(inputs[1], inputs[2], inputs[3], inputs[4], 1e-5)?
            }
            Op::Reshape { dims } => {
                let target: Result<Vec<usize>> =
                    dims.iter().map(|d| attr_usize(d, "dim")).collect();
                inputs[0].reshaped(&target?)?
            }
            Op::Transpose { perm } => inputs[0].transpose(perm)?,
            Op::Slice {
                starts,
                ends,
                steps,
            } => {
                let s: Result<Vec<usize>> = starts.iter().map(|e| attr_usize(e, "start")).collect();
                let e: Result<Vec<usize>> = ends.iter().map(|e| attr_usize(e, "end")).collect();
                let st: Vec<usize> = steps.iter().map(|&x| x as usize).collect();
                inputs[0].slice(&s?, &e?, &st)?
            }
            Op::Pad { pads, kind } => {
                let p: Result<Vec<(i64, i64)>> = pads
                    .iter()
                    .map(|(b, a)| Ok((attr_i64(b, "pad")?, attr_i64(a, "pad")?)))
                    .collect();
                let mode = match kind {
                    PadKind::Constant => PadMode::Constant(0.0),
                    PadKind::Reflect => PadMode::Reflect,
                    PadKind::Replicate => PadMode::Replicate,
                };
                inputs[0].pad(&p?, mode)?
            }
            Op::Concat { axis, .. } => Tensor::concat(inputs, *axis)?,
            Op::Squeeze { axis } => inputs[0].squeeze(&[*axis])?,
            Op::Unsqueeze { axis } => inputs[0].unsqueeze(*axis)?,
            Op::Flatten { axis } => inputs[0].flatten(*axis)?,
            Op::BroadcastTo { dims } => {
                let target: Result<Vec<usize>> =
                    dims.iter().map(|d| attr_usize(d, "dim")).collect();
                inputs[0].broadcast_to(&target?)?
            }
            Op::Reduce {
                kind,
                axes,
                keepdims,
            } => inputs[0].reduce(*kind, axes, *keepdims)?,
            Op::ArgExtreme {
                largest,
                axis,
                keepdims,
            } => inputs[0].arg_extreme(*axis, *keepdims, *largest)?,
            Op::ResizeNearest { scale_h, scale_w } => inputs[0].resize_nearest_2d(
                attr_usize(scale_h, "scale_h")?,
                attr_usize(scale_w, "scale_w")?,
            )?,
        };
        Ok(vec![out])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnsmith_solver::IntExpr;
    use nnsmith_tensor::DType;

    #[test]
    fn unary_eval_all_kinds_run() {
        let x = Tensor::from_f32(&[4], vec![0.1, 0.4, 0.7, 0.9]).unwrap();
        for kind in UnaryKind::ALL {
            let out = Op::Unary(kind).eval(&[&x]).unwrap();
            assert_eq!(out[0].shape(), x.shape());
        }
    }

    #[test]
    fn binary_eval_all_kinds_run() {
        let a = Tensor::from_f32(&[3], vec![1.0, 2.0, 3.0]).unwrap();
        let b = Tensor::from_f32(&[3], vec![0.5, 1.5, 2.5]).unwrap();
        for kind in BinaryKind::ALL {
            let out = Op::Binary(kind).eval(&[&a, &b]).unwrap();
            assert_eq!(out[0].shape(), &[3]);
        }
    }

    #[test]
    fn dense_is_matmul_plus_bias() {
        let x = Tensor::from_f32(&[1, 2], vec![1.0, 2.0]).unwrap();
        let w = Tensor::from_f32(&[2, 3], vec![1., 0., 0., 0., 1., 0.]).unwrap();
        let b = Tensor::from_f32(&[3], vec![10., 20., 30.]).unwrap();
        let op = Op::Dense {
            in_features: IntExpr::Const(2),
            units: IntExpr::Const(3),
        };
        let out = op.eval(&[&x, &w, &b]).unwrap();
        assert_eq!(out[0].as_f32().unwrap(), &[11., 22., 30.]);
    }

    #[test]
    fn conv_eval_matches_tensor_kernel() {
        let x = Tensor::ones(&[1, 1, 4, 4], DType::F32);
        let w = Tensor::ones(&[1, 1, 2, 2], DType::F32);
        let b = Tensor::zeros(&[1], DType::F32);
        let op = Op::Conv2d {
            in_channels: IntExpr::Const(1),
            out_channels: IntExpr::Const(1),
            kh: IntExpr::Const(2),
            kw: IntExpr::Const(2),
            stride: IntExpr::Const(1),
            padding: IntExpr::Const(0),
            dilation: IntExpr::Const(1),
        };
        let out = op.eval(&[&x, &w, &b]).unwrap();
        assert_eq!(out[0].shape(), &[1, 1, 3, 3]);
        assert!(out[0].as_f32().unwrap().iter().all(|&v| v == 4.0));
    }

    #[test]
    fn symbolic_attr_rejected() {
        use nnsmith_solver::VarId;
        let op = Op::Reshape {
            dims: vec![IntExpr::Var(VarId(0))],
        };
        let x = Tensor::ones(&[1], DType::F32);
        assert!(op.eval(&[&x]).is_err());
    }

    #[test]
    fn where_eval() {
        let c = Tensor::from_bool(&[2], vec![true, false]).unwrap();
        let a = Tensor::from_f32(&[2], vec![1.0, 2.0]).unwrap();
        let b = Tensor::from_f32(&[2], vec![9.0, 8.0]).unwrap();
        let out = Op::Where.eval(&[&c, &a, &b]).unwrap();
        assert_eq!(out[0].as_f32().unwrap(), &[1.0, 8.0]);
    }

    #[test]
    fn eval_output_matches_type_transfer() {
        // Spec/eval agreement: the concrete output shape equals the shape
        // predicted by type_transfer.
        use nnsmith_graph::TensorType;
        let op = Op::MaxPool2d {
            kh: IntExpr::Const(3),
            kw: IntExpr::Const(2),
            stride: IntExpr::Const(2),
            padding: IntExpr::Const(1),
        };
        let x = Tensor::ones(&[1, 2, 8, 9], DType::F32);
        let xt = TensorType::concrete(DType::F32, &[1, 2, 8, 9]);
        let predicted = op.type_transfer(std::slice::from_ref(&xt)).unwrap()[0]
            .concrete_dims()
            .unwrap();
        let got = op.eval(&[&x]).unwrap();
        assert_eq!(got[0].shape(), predicted.as_slice());
    }
}
