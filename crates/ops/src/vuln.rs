//! Vulnerable-operator loss functions (Tables 1 and 2 of the paper).
//!
//! A *vulnerable operator* produces NaN/Inf outside a sub-domain of its
//! inputs. Each such operator carries a set of tensor inequalities; every
//! inequality is rewritten into canonical `f(X) ≤ 0` / `f(X) < 0` form and
//! converted to a scalar loss via Table 2:
//!
//! | inequality  | loss                        |
//! |-------------|-----------------------------|
//! | `f(X) ≤ 0`  | `Σ max(f(x), 0)`            |
//! | `f(X) < 0`  | `Σ max(f(x) + ε, 0)`        |
//!
//! The gradient-guided search asks the operator that produced the first
//! NaN/Inf for its *first positive loss* (§3.3) and backpropagates its
//! gradient. Operators without a specific domain (e.g. `Mul` overflowing)
//! fall back to a generic magnitude loss that pushes inputs toward a small
//! range.

use nnsmith_tensor::Tensor;

use crate::op::{BinaryKind, Op, UnaryKind};

/// Default `ε` of the strict-inequality loss conversion (§5.1).
pub const LOSS_EPSILON: f64 = 1e-10;

/// Exponent bound used for `Exp`/`Pow` stability (`y·ln(x) ≤ 40`, Table 1).
pub const EXP_BOUND: f64 = 40.0;

/// Magnitude bound of the generic fallback loss.
pub const GENERIC_BOUND: f64 = 12.0;

/// A positive violation loss and its gradients w.r.t. the operator inputs.
#[derive(Debug, Clone)]
pub struct ViolationLoss {
    /// Scalar loss (positive iff the associated predicate is violated).
    pub loss: f64,
    /// Gradient of the loss w.r.t. each operator input (`None` where the
    /// input does not participate).
    pub grads: Vec<Option<Tensor>>,
    /// Which predicate produced the loss (diagnostics).
    pub predicate: &'static str,
}

/// Builds `Σ max(f(x), 0)` and `d/dx` from a per-element `f` and `f'`.
fn hinge_loss(x: &Tensor, f: impl Fn(f64) -> f64, df: impl Fn(f64) -> f64) -> (f64, Tensor) {
    let mut loss = 0.0;
    let mut grad = Tensor::zeros(x.shape(), x.dtype());
    for i in 0..x.numel() {
        let v = x.lin_f64(i);
        let fv = f(v);
        if fv > 0.0 && fv.is_finite() {
            loss += fv;
            grad.set_lin_f64(i, df(v));
        } else if fv.is_nan() || fv.is_infinite() {
            // Treat an already-exceptional element as maximally violating
            // and pull it toward zero (direction 1.0 when unknowable).
            loss += 1.0;
            let dir = v.signum();
            grad.set_lin_f64(i, if dir.is_nan() { 1.0 } else { dir });
        }
    }
    (loss, grad)
}

impl Op {
    /// The operator's first positive violation loss for the given inputs,
    /// or `None` when no predicate is violated.
    ///
    /// The per-operator predicates implement Table 1; operators without
    /// listed predicates get the generic magnitude fallback so overflow
    /// cascades are still repairable.
    pub fn violation_loss(&self, inputs: &[&Tensor]) -> Option<ViolationLoss> {
        let none = |n: usize| vec![None; n];
        match self {
            Op::Unary(UnaryKind::Asin | UnaryKind::Acos) => {
                // |X| <= 1  ⇒  |x| - 1 <= 0
                let (loss, grad) = hinge_loss(inputs[0], |x| x.abs() - 1.0, |x| x.signum());
                (loss > 0.0).then(|| ViolationLoss {
                    loss,
                    grads: vec![Some(grad)],
                    predicate: "|X| <= 1",
                })
            }
            Op::Unary(UnaryKind::Sqrt) => {
                // X >= 0  ⇒  -x <= 0
                let (loss, grad) = hinge_loss(inputs[0], |x| -x, |_| -1.0);
                (loss > 0.0).then(|| ViolationLoss {
                    loss,
                    grads: vec![Some(grad)],
                    predicate: "X >= 0",
                })
            }
            Op::Unary(UnaryKind::Log | UnaryKind::Log2) => {
                // X > 0  ⇒  -x < 0  ⇒  Σ max(-x + ε, 0)
                let (loss, grad) = hinge_loss(inputs[0], |x| -x + LOSS_EPSILON, |_| -1.0);
                (loss > 0.0).then(|| ViolationLoss {
                    loss,
                    grads: vec![Some(grad)],
                    predicate: "X > 0",
                })
            }
            Op::Unary(UnaryKind::Exp) => {
                // X <= 40 to avoid overflow.
                let (loss, grad) = hinge_loss(inputs[0], |x| x - EXP_BOUND, |_| 1.0);
                (loss > 0.0).then(|| ViolationLoss {
                    loss,
                    grads: vec![Some(grad)],
                    predicate: "X <= 40",
                })
            }
            Op::Binary(BinaryKind::Div) => {
                // |Y| > 0  ⇒  Σ max(-|y| + ε, 0); gradient pushes |y| up.
                let (loss, grad) = hinge_loss(
                    inputs[1],
                    |y| -y.abs() + LOSS_EPSILON,
                    |y| if y >= 0.0 { -1.0 } else { 1.0 },
                );
                (loss > 0.0).then(|| ViolationLoss {
                    loss,
                    grads: vec![None, Some(grad)],
                    predicate: "|Y| > 0",
                })
            }
            Op::Binary(BinaryKind::Pow) => {
                // Predicate 1: X > 0.
                let (l1, g1) = hinge_loss(inputs[0], |x| -x + LOSS_EPSILON, |_| -1.0);
                if l1 > 0.0 {
                    return Some(ViolationLoss {
                        loss: l1,
                        grads: vec![Some(g1), None],
                        predicate: "X > 0",
                    });
                }
                // Predicate 2: Y·ln(X) <= 40 (elementwise over the broadcast
                // pair; computed on the aligned full shapes).
                let shape =
                    nnsmith_tensor::broadcast_shapes(inputs[0].shape(), inputs[1].shape()).ok()?;
                let xf = inputs[0].broadcast_to(&shape).ok()?;
                let yf = inputs[1].broadcast_to(&shape).ok()?;
                let mut loss = 0.0;
                let mut gx_full = Tensor::zeros(&shape, inputs[0].dtype());
                let mut gy_full = Tensor::zeros(&shape, inputs[1].dtype());
                for i in 0..xf.numel() {
                    let x = xf.lin_f64(i);
                    let y = yf.lin_f64(i);
                    if x > 0.0 {
                        let v = y * x.ln() - EXP_BOUND;
                        if v > 0.0 && v.is_finite() {
                            loss += v;
                            gx_full.set_lin_f64(i, y / x);
                            gy_full.set_lin_f64(i, x.ln());
                        }
                    }
                }
                (loss > 0.0).then(|| {
                    let gx = gx_full.sum_to(inputs[0].shape()).ok();
                    let gy = gy_full.sum_to(inputs[1].shape()).ok();
                    ViolationLoss {
                        loss,
                        grads: vec![gx, gy],
                        predicate: "Y*ln(X) <= 40",
                    }
                })
            }
            Op::BatchNorm => {
                // var + eps > 0, i.e. var must not be (too) negative.
                let (loss, grad) = hinge_loss(inputs[4], |v| -v + LOSS_EPSILON, |_| -1.0);
                if loss > 0.0 {
                    let mut grads = none(5);
                    grads[4] = Some(grad);
                    return Some(ViolationLoss {
                        loss,
                        grads,
                        predicate: "var >= 0",
                    });
                }
                None
            }
            _ => {
                // Generic fallback: push float input magnitudes below a
                // bound so products/sums stop overflowing.
                let mut grads: Vec<Option<Tensor>> = none(self.arity());
                let mut loss = 0.0;
                for (i, x) in inputs.iter().enumerate() {
                    if !x.dtype().is_float() {
                        continue;
                    }
                    let (l, g) = hinge_loss(x, |v| v.abs() - GENERIC_BOUND, |v| v.signum());
                    if l > 0.0 {
                        loss += l;
                        grads[i] = Some(g);
                    }
                }
                (loss > 0.0).then_some(ViolationLoss {
                    loss,
                    grads,
                    predicate: "|X| <= bound (generic)",
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: Vec<f64>) -> Tensor {
        Tensor::from_f64(&[data.len()], data).unwrap()
    }

    #[test]
    fn asin_loss_positive_outside_domain() {
        let op = Op::Unary(UnaryKind::Asin);
        let bad = t(vec![2.0, -0.5]);
        let v = op.violation_loss(&[&bad]).expect("violated");
        assert!((v.loss - 1.0).abs() < 1e-9);
        let g = v.grads[0].as_ref().unwrap();
        assert_eq!(g.lin_f64(0), 1.0); // push 2.0 down
        assert_eq!(g.lin_f64(1), 0.0); // -0.5 is fine
        let ok = t(vec![0.5, -0.5]);
        assert!(op.violation_loss(&[&ok]).is_none());
    }

    #[test]
    fn sqrt_loss() {
        let op = Op::Unary(UnaryKind::Sqrt);
        let v = op.violation_loss(&[&t(vec![-3.0, 4.0])]).expect("violated");
        assert!((v.loss - 3.0).abs() < 1e-9);
        assert_eq!(v.grads[0].as_ref().unwrap().lin_f64(0), -1.0);
    }

    #[test]
    fn div_loss_pushes_divisor_away_from_zero() {
        let op = Op::Binary(BinaryKind::Div);
        let num = t(vec![1.0]);
        let den = t(vec![0.0]);
        let v = op.violation_loss(&[&num, &den]).expect("violated");
        assert!(v.loss > 0.0);
        assert!(v.grads[0].is_none());
        // Gradient descent: y -= lr * (-1) increases y away from zero.
        assert_eq!(v.grads[1].as_ref().unwrap().lin_f64(0), -1.0);
    }

    #[test]
    fn pow_two_predicates() {
        let op = Op::Binary(BinaryKind::Pow);
        // Negative base violates predicate 1.
        let v = op
            .violation_loss(&[&t(vec![-2.0]), &t(vec![2.0])])
            .expect("violated");
        assert_eq!(v.predicate, "X > 0");
        // Huge exponent violates predicate 2.
        let v = op
            .violation_loss(&[&t(vec![10.0]), &t(vec![100.0])])
            .expect("violated");
        assert_eq!(v.predicate, "Y*ln(X) <= 40");
        assert!(v.grads[1].as_ref().unwrap().lin_f64(0) > 0.0);
        // In-domain: no loss.
        assert!(op.violation_loss(&[&t(vec![2.0]), &t(vec![3.0])]).is_none());
    }

    #[test]
    fn log_loss_epsilon_strictness() {
        let op = Op::Unary(UnaryKind::Log);
        // Exactly zero violates the strict inequality.
        let v = op.violation_loss(&[&t(vec![0.0])]).expect("violated");
        assert!(v.loss > 0.0);
        assert!(op.violation_loss(&[&t(vec![0.5])]).is_none());
    }

    #[test]
    fn generic_fallback_for_overflowing_mul() {
        let op = Op::Binary(BinaryKind::Mul);
        let big = t(vec![1e30]);
        let v = op.violation_loss(&[&big, &big]).expect("violated");
        assert_eq!(v.predicate, "|X| <= bound (generic)");
        assert!(v.grads[0].is_some());
        let small = t(vec![2.0]);
        assert!(op.violation_loss(&[&small, &small]).is_none());
    }

    #[test]
    fn batchnorm_negative_variance() {
        let x = Tensor::ones(&[1, 2, 2, 2], nnsmith_tensor::DType::F64);
        let stat = Tensor::ones(&[2], nnsmith_tensor::DType::F64);
        let bad_var = t(vec![-1.0, 1.0]);
        // Reshape to rank 1 length 2.
        let bad_var = bad_var.reshaped(&[2]).unwrap();
        let v = Op::BatchNorm
            .violation_loss(&[&x, &stat, &stat, &stat, &bad_var])
            .expect("violated");
        assert!(v.grads[4].is_some());
        assert!(v.grads[0].is_none());
    }

    #[test]
    fn nan_input_counts_as_violation() {
        let op = Op::Unary(UnaryKind::Sqrt);
        let v = op
            .violation_loss(&[&t(vec![f64::NAN])])
            .expect("nan treated as violating");
        assert!(v.loss > 0.0);
    }
}
