//! # nnsmith-core
//!
//! The end-to-end NNSmith pipeline (Figure 3 of the paper): constraint-
//! guided model generation (Algorithms 1–2) → gradient-guided value search
//! (Algorithm 3) → differential testing against the simulated compilers.
//!
//! [`NnSmith`] implements [`nnsmith_difftest::TestCaseSource`], so it plugs
//! into the same campaign driver as the baselines.
//!
//! ## Example
//!
//! ```
//! use nnsmith_core::{NnSmith, NnSmithConfig};
//! use nnsmith_difftest::TestCaseSource;
//!
//! let mut fuzzer = NnSmith::new(NnSmithConfig {
//!     seed: 7,
//!     ..NnSmithConfig::default()
//! });
//! let case = fuzzer.next_case().expect("a numerically-valid test case");
//! assert!(case.graph.operators().len() >= 1);
//! ```

#![warn(missing_docs)]

mod support;

pub use support::infer_supported_dtypes;

use std::collections::{BTreeSet, VecDeque};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use nnsmith_difftest::{
    fnv_step, CaseFeedback, FeedbackConfig, FeedbackCorpus, FeedbackPlan, FeedbackSummary,
    ShardCtx, SourceFactory, TestCase, TestCaseSource, YieldStats, BASE_WEIGHT,
};
use nnsmith_gen::{dtype_siblings, mutate_graph_with, GenConfig, GenSchedule, Generator};
use nnsmith_graph::{Graph, NodeKind};
use nnsmith_ops::Op;
use nnsmith_ops::OpMemo;
use nnsmith_search::{search_values, SearchConfig};
use nnsmith_solver::InternPool;

/// Configuration for the full pipeline.
#[derive(Debug, Clone)]
pub struct NnSmithConfig {
    /// Graph-generation settings (Algorithms 1–2).
    pub gen: GenConfig,
    /// Value-search settings (Algorithm 3).
    pub search: SearchConfig,
    /// RNG seed (the pipeline is fully deterministic given the seed).
    pub seed: u64,
    /// Attempts to produce one numerically-valid case before giving up.
    pub max_attempts_per_case: usize,
    /// Coverage-feedback loop (corpus retention, yield-weighted
    /// scheduling, mutation of retained graphs). Disabled by default,
    /// which keeps the blind pipeline's RNG stream byte-identical.
    pub feedback: FeedbackConfig,
}

impl Default for NnSmithConfig {
    fn default() -> Self {
        NnSmithConfig {
            gen: GenConfig::default(),
            search: SearchConfig::default(),
            seed: 0,
            max_attempts_per_case: 8,
            feedback: FeedbackConfig::default(),
        }
    }
}

impl NnSmithConfig {
    /// Restricts generation to the dtype intersection of `backends`
    /// (§4's support-matrix probing, across the whole set), so every
    /// generated case is legal on every backend of a cross-backend
    /// campaign. A single-backend set with full support leaves the
    /// configuration — and the RNG stream — untouched.
    pub fn restricted_to(mut self, backends: &nnsmith_compilers::BackendSet) -> Self {
        let dtypes = backends.supported_dtypes();
        if dtypes.len() != nnsmith_tensor::DType::ALL.len() {
            self.gen.allowed_dtypes = Some(dtypes);
        }
        self
    }
}

/// Cumulative pipeline statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Models generated.
    pub generated: u64,
    /// Generation failures.
    pub gen_failures: u64,
    /// Value searches that failed within budget.
    pub search_failures: u64,
    /// Test cases emitted.
    pub cases: u64,
}

/// Per-pipeline feedback-loop state: the retained-case corpus, the
/// marginal-yield ledger, and the description of the last emitted case
/// (so [`NnSmith::observe`] can credit its coverage yield).
#[derive(Debug)]
struct FeedbackState {
    cfg: FeedbackConfig,
    corpus: FeedbackCorpus<TestCase>,
    yields: YieldStats,
    summary: FeedbackSummary,
    last: Option<EmittedCase>,
    cases_seen: u64,
    /// Focus queue of cases that produced a finding — mutation draws
    /// from here preferentially (AFL's crash-adjacent exploration):
    /// perturbing a bug-triggering graph (sibling op swap, nudged shape,
    /// fresh inputs) is the cheapest route to the *neighboring* seeded
    /// bugs. Ring-replaced at [`FINDING_POOL_CAP`].
    findings: Vec<TestCase>,
    findings_seen: u64,
    /// Dtype palette for the mutation loop's dtype-rotate arm: the
    /// generator's allowed dtypes (the backend-set intersection on
    /// cross-backend campaigns), so rotated mutants stay legal on every
    /// backend under test.
    palette: Vec<nnsmith_tensor::DType>,
    /// FIFO of pending dtype-sibling probes: when a *coverage-novel
    /// finding* lands, every valid dtype rotation of its graph is
    /// enqueued (deduplicated), and probes drain ahead of fresh
    /// generation under a budget gate. This is the systematic
    /// counterpart to random mutation — the structure that just
    /// triggered a bug is held fixed while its dtypes sweep the
    /// palette, harvesting the dtype-specialized bug variants.
    queue: VecDeque<Graph<Op>>,
    /// FNV digests of graphs already probed or enqueued.
    probed: BTreeSet<u64>,
}

/// Capacity of the finding-focused mutation pool.
const FINDING_POOL_CAP: usize = 16;

/// Cap on pending dtype-sibling probes (drops beyond it are counted in
/// the `feedback/probe_dropped` observability counter).
const SIBLING_QUEUE_CAP: usize = 64;

/// Probability that a mutation draws its base from the finding pool
/// (when non-empty) instead of the coverage-novel corpus.
const FINDING_FOCUS_PROB: f64 = 0.75;

/// What the last emitted case looked like, for yield accounting.
#[derive(Debug)]
struct EmittedCase {
    case: TestCase,
    ops: Vec<String>,
    dtypes: Vec<String>,
    ranks: Vec<usize>,
}

/// Maps an operator's display name onto its template name (the schedule
/// key): the five `Reduce*` ops share the `Reduce` template.
fn template_key(op_name: &str) -> String {
    match op_name {
        "ReduceSum" | "ReduceMean" | "ReduceProd" | "ReduceMax" | "ReduceMin" => {
            "Reduce".to_string()
        }
        other => other.to_string(),
    }
}

/// Distinct features of a case, for yield accounting (sorted so the
/// ledger is iteration-order deterministic).
fn describe_case(case: &TestCase) -> EmittedCase {
    let mut ops: BTreeSet<String> = BTreeSet::new();
    let mut dtypes: BTreeSet<String> = BTreeSet::new();
    let mut ranks: BTreeSet<usize> = BTreeSet::new();
    for (_, node) in case.graph.iter() {
        if let NodeKind::Operator(op) = &node.kind {
            ops.insert(template_key(op.name()));
        }
        for t in &node.outputs {
            dtypes.insert(t.dtype.name().to_string());
            ranks.insert(t.rank());
        }
    }
    EmittedCase {
        case: case.clone(),
        ops: ops.into_iter().collect(),
        dtypes: dtypes.into_iter().collect(),
        ranks: ranks.into_iter().collect(),
    }
}

/// Converts a checkpoint's [`FeedbackPlan`] into generator schedule
/// weights (options not in the plan draw at the base weight).
fn plan_to_schedule(plan: &FeedbackPlan) -> GenSchedule {
    GenSchedule {
        op_weights: plan
            .op_weights
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect(),
        dtype_weights: plan
            .dtype_weights
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect(),
        rank_weights: plan.rank_weights.iter().map(|(k, v)| (*k, *v)).collect(),
        default_weight: BASE_WEIGHT,
    }
}

/// The NNSmith fuzzer: generate → search → emit test cases.
#[derive(Debug)]
pub struct NnSmith {
    generator: Generator,
    search: SearchConfig,
    /// Arena every generated model's constraints and tensor types intern
    /// into. Private by default; a campaign hands every shard the same
    /// pool (see [`NnSmithFactory`]) so the arena is shared during the
    /// run and reclaimed when the campaign drops it.
    pool: InternPool,
    /// Per-source type-transfer memo, kept warm across every case this
    /// source generates. Deliberately *not* shared across shards: each
    /// shard's hit sequence must depend only on its own deterministic
    /// case stream so `workers=1 ≡ workers=N` byte-equality holds for the
    /// exported arena counters.
    memo: OpMemo,
    rng: StdRng,
    max_attempts_per_case: usize,
    stats: PipelineStats,
    feedback: FeedbackState,
}

impl NnSmith {
    /// Creates the pipeline with its own private intern pool.
    pub fn new(config: NnSmithConfig) -> Self {
        NnSmith::new_in(config, InternPool::default())
    }

    /// Creates the pipeline interning into `pool` (a campaign's pool).
    pub fn new_in(config: NnSmithConfig, pool: InternPool) -> Self {
        let palette: Vec<nnsmith_tensor::DType> = config
            .gen
            .allowed_dtypes
            .clone()
            .unwrap_or_else(|| nnsmith_tensor::DType::NUMERIC.to_vec())
            .into_iter()
            .filter(|d| *d != nnsmith_tensor::DType::Bool)
            .collect();
        let mut feedback = FeedbackState {
            corpus: FeedbackCorpus::new(config.feedback.corpus_cap),
            cfg: config.feedback,
            yields: YieldStats::default(),
            summary: FeedbackSummary::default(),
            last: None,
            cases_seen: 0,
            findings: Vec::new(),
            findings_seen: 0,
            palette,
            queue: VecDeque::new(),
            probed: BTreeSet::new(),
        };
        if feedback.cfg.enabled {
            // The reproducer→seed bridge: graph reproducers (rehomed into
            // this pipeline's pool) become the corpus's frozen prefix.
            for seed_case in &feedback.cfg.seeds {
                if seed_case.is_ir() {
                    continue;
                }
                let case = TestCase {
                    graph: seed_case.graph.rehomed(&pool),
                    weights: seed_case.weights.clone(),
                    inputs: seed_case.inputs.clone(),
                    ir: None,
                };
                let encoding = serde::json::to_string(&case.graph);
                feedback.corpus.seed(case, &encoding);
                feedback.summary.seeded += 1;
            }
        }
        NnSmith {
            generator: Generator::new(config.gen),
            search: config.search,
            memo: OpMemo::new(pool.clone()),
            pool,
            rng: StdRng::seed_from_u64(config.seed),
            max_attempts_per_case: config.max_attempts_per_case,
            stats: PipelineStats::default(),
            feedback,
        }
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> PipelineStats {
        self.stats
    }

    /// The intern pool this pipeline's models live in.
    pub fn pool(&self) -> &InternPool {
        &self.pool
    }

    /// Generates one model and searches values for it; `None` when either
    /// stage fails.
    fn try_once(&mut self) -> Option<TestCase> {
        let seed: u64 = self.rng.gen();
        let mut gen_rng = StdRng::seed_from_u64(seed);
        let model = match self
            .generator
            .generate_with(&self.pool, &self.memo, &mut gen_rng)
        {
            Ok(m) => m,
            Err(_) => {
                self.stats.gen_failures += 1;
                return None;
            }
        };
        self.stats.generated += 1;
        let mut search_rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9);
        let outcome = search_values(&model.graph, &self.search, &mut search_rng);
        match outcome.bindings {
            Some(bindings) => Some(TestCase::from_bindings(model.graph, bindings)),
            None => {
                self.stats.search_failures += 1;
                None
            }
        }
    }

    /// Mutation arm of the feedback loop: perturb a retained graph (op
    /// swap / dtype rotate / dim perturb / plain re-search) and search
    /// fresh inputs for it. All randomness derives from `self.rng`, so the case stream
    /// stays a pure function of the shard seed.
    fn try_mutate(&mut self) -> Option<TestCase> {
        // Prefer the finding pool: mutating a bug-triggering graph is the
        // cheapest route to its neighboring seeded bugs.
        let focus = !self.feedback.findings.is_empty()
            && (self.feedback.corpus.is_empty() || self.rng.gen_bool(FINDING_FOCUS_PROB));
        let graph = if focus {
            let index = self.rng.gen_range(0..self.feedback.findings.len());
            self.feedback.findings[index].graph.clone()
        } else {
            let index = self.rng.gen_range(0..self.feedback.corpus.len());
            self.feedback.corpus.get(index).graph.clone()
        };
        let seed: u64 = self.rng.gen();
        let mut mutate_rng = StdRng::seed_from_u64(seed);
        let outcome = mutate_graph_with(&graph, &self.feedback.palette, &mut mutate_rng)?;
        let mut search_rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9);
        let searched = search_values(&outcome.graph, &self.search, &mut search_rng);
        match searched.bindings {
            Some(bindings) => Some(TestCase::from_bindings(outcome.graph, bindings)),
            None => {
                self.stats.search_failures += 1;
                None
            }
        }
    }
}

impl TestCaseSource for NnSmith {
    fn name(&self) -> &str {
        "NNSmith"
    }

    fn next_case(&mut self) -> Option<TestCase> {
        // Targeted probes first: dtype siblings of novel findings, gated
        // to ~an eighth of the emitted stream (fresh structural
        // diversity stays the campaign's backbone).
        if self.feedback.cfg.enabled && self.feedback.summary.probes * 8 < self.feedback.cases_seen
        {
            while let Some(graph) = self.feedback.queue.pop_front() {
                let seed: u64 = self.rng.gen();
                let mut search_rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9);
                let searched = search_values(&graph, &self.search, &mut search_rng);
                let Some(bindings) = searched.bindings else {
                    self.stats.search_failures += 1;
                    continue;
                };
                let case = TestCase::from_bindings(graph, bindings);
                self.stats.cases += 1;
                self.feedback.summary.probes += 1;
                self.feedback.last = Some(describe_case(&case));
                nnsmith_obs::count("feedback/probed", 1);
                return Some(case);
            }
        }
        if self.feedback.cfg.enabled
            && !(self.feedback.corpus.is_empty() && self.feedback.findings.is_empty())
            && self.rng.gen_bool(self.feedback.cfg.mutation_prob)
        {
            for _ in 0..self.max_attempts_per_case {
                if let Some(case) = self.try_mutate() {
                    self.stats.cases += 1;
                    self.feedback.summary.mutated += 1;
                    self.feedback.last = Some(describe_case(&case));
                    nnsmith_obs::count("feedback/mutated", 1);
                    return Some(case);
                }
            }
            // Every mutation attempt failed: fall through to fresh
            // generation rather than starving the campaign.
        }
        for _ in 0..self.max_attempts_per_case {
            if let Some(case) = self.try_once() {
                self.stats.cases += 1;
                if self.feedback.cfg.enabled {
                    self.feedback.summary.fresh += 1;
                    self.feedback.last = Some(describe_case(&case));
                }
                return Some(case);
            }
        }
        None
    }

    fn observe(&mut self, feedback: &CaseFeedback) {
        if !self.feedback.cfg.enabled {
            return;
        }
        let new_branches = feedback.total_new() as u64;
        if let Some(emitted) = self.feedback.last.take() {
            // The ledger credits branch yield only. (Crediting findings
            // too was tried and measurably hurt: findings are frequent
            // enough that a bonus swamps the late-run branch signal and
            // locks the schedule onto already-found bug features.)
            self.feedback.yields.record(
                &emitted.ops,
                &emitted.dtypes,
                &emitted.ranks,
                new_branches,
            );
            if feedback.finding {
                // Focus queue for bug-adjacent mutation (ring-replaced).
                if self.feedback.findings.len() < FINDING_POOL_CAP {
                    self.feedback.findings.push(emitted.case.clone());
                } else {
                    let slot = (self.feedback.findings_seen as usize) % FINDING_POOL_CAP;
                    self.feedback.findings[slot] = emitted.case.clone();
                }
                self.feedback.findings_seen += 1;
                nnsmith_obs::count("feedback/finding_pool", 1);
                // A *coverage-novel* finding marks an unexplored bug
                // neighborhood: enqueue its dtype siblings as targeted
                // probes (novelty gates out repeat triggers of
                // already-explored bugs; digests dedup the rest).
                if new_branches > 0 && self.feedback.cfg.probe_siblings {
                    let base = fnv_step(0, &serde::json::to_string(&emitted.case.graph));
                    self.feedback.probed.insert(base);
                    for sibling in dtype_siblings(&emitted.case.graph, &self.feedback.palette) {
                        let digest = fnv_step(0, &serde::json::to_string(&sibling));
                        if !self.feedback.probed.insert(digest) {
                            continue;
                        }
                        if self.feedback.queue.len() >= SIBLING_QUEUE_CAP {
                            nnsmith_obs::count("feedback/probe_dropped", 1);
                            break;
                        }
                        self.feedback.queue.push_back(sibling);
                    }
                }
            }
            let encoding = serde::json::to_string(&emitted.case.graph);
            // Finding cases are retained like coverage-novel ones — both
            // are signals the neighborhood is worth revisiting.
            let novel = new_branches > 0 || feedback.finding;
            if self.feedback.corpus.offer(emitted.case, &encoding, novel) {
                self.feedback.summary.retained += 1;
                nnsmith_obs::count("feedback/retained", 1);
            }
        }
        self.feedback.cases_seen += 1;
        // Checkpoints fire on case counts only — never wall-clock — so
        // the schedule evolves identically across machines and worker
        // counts (the determinism contract).
        let every = self.feedback.cfg.checkpoint_every.max(1) as u64;
        if self.feedback.cases_seen.is_multiple_of(every) {
            let plan = self.feedback.yields.plan();
            self.feedback.summary.checkpoints += 1;
            self.feedback.summary.op_weights = plan.op_weights.clone();
            self.generator.set_schedule(plan_to_schedule(&plan));
            nnsmith_obs::count("feedback/checkpoints", 1);
        }
    }

    fn feedback_summary(&self) -> Option<FeedbackSummary> {
        if !self.feedback.cfg.enabled {
            return None;
        }
        let mut summary = self.feedback.summary.clone();
        summary.corpus = self.feedback.corpus.len() as u64;
        summary.corpus_digest = self.feedback.corpus.digest();
        Some(summary)
    }
}

/// [`SourceFactory`] for the NNSmith pipeline: every shard of a parallel
/// campaign gets a fresh [`NnSmith`] whose seed is the shard's derived
/// stream (`config.seed` is ignored in favour of [`ShardCtx::seed`]).
#[derive(Debug, Clone, Default)]
pub struct NnSmithFactory {
    /// Pipeline configuration applied to every shard.
    pub config: NnSmithConfig,
}

impl NnSmithFactory {
    /// Creates a factory from a pipeline configuration.
    pub fn new(config: NnSmithConfig) -> Self {
        NnSmithFactory { config }
    }

    /// A factory whose shards generate only cases every backend of the
    /// set supports (see [`NnSmithConfig::restricted_to`]) — the factory
    /// to hand a cross-backend engine run.
    pub fn for_backends(config: NnSmithConfig, backends: &nnsmith_compilers::BackendSet) -> Self {
        NnSmithFactory {
            config: config.restricted_to(backends),
        }
    }

    /// Installs a feedback configuration on every shard's pipeline (the
    /// guided-mode entry point — see [`FeedbackConfig::guided`]).
    pub fn with_feedback(mut self, feedback: FeedbackConfig) -> Self {
        self.config.feedback = feedback;
        self
    }
}

impl SourceFactory for NnSmithFactory {
    fn name(&self) -> &str {
        "NNSmith"
    }

    fn make_source(&self, shard: ShardCtx) -> Box<dyn TestCaseSource + Send> {
        let mut config = self.config.clone();
        config.seed = shard.seed;
        Box::new(NnSmith::new(config))
    }

    fn make_source_in(&self, pool: &InternPool, shard: ShardCtx) -> Box<dyn TestCaseSource + Send> {
        let mut config = self.config.clone();
        config.seed = shard.seed;
        Box::new(NnSmith::new_in(config, pool.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn quick_config(seed: u64) -> NnSmithConfig {
        NnSmithConfig {
            gen: GenConfig {
                target_ops: 6,
                ..GenConfig::default()
            },
            search: SearchConfig {
                budget: Duration::from_millis(200),
                init_lo: -4.0,
                init_hi: 4.0,
                ..SearchConfig::default()
            },
            seed,
            max_attempts_per_case: 8,
            feedback: FeedbackConfig::default(),
        }
    }

    #[test]
    fn produces_numerically_valid_cases() {
        let mut fuzzer = NnSmith::new(quick_config(1));
        for _ in 0..3 {
            let case = fuzzer.next_case().expect("case");
            let exec = nnsmith_ops::execute(&case.graph, &case.all_bindings()).expect("runs");
            assert!(!exec.has_exceptional(), "values must be numerically valid");
        }
        assert!(fuzzer.stats().cases >= 3);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = NnSmith::new(quick_config(42));
        let mut b = NnSmith::new(quick_config(42));
        let ca = a.next_case().expect("case");
        let cb = b.next_case().expect("case");
        assert_eq!(ca.graph, cb.graph);
    }

    #[test]
    fn different_seeds_give_different_models() {
        let mut a = NnSmith::new(quick_config(1));
        let mut b = NnSmith::new(quick_config(2));
        assert_ne!(
            a.next_case().expect("case").graph,
            b.next_case().expect("case").graph
        );
    }

    #[test]
    fn feedback_disabled_leaves_stream_untouched() {
        // The guided knobs must not perturb the blind pipeline: default
        // config (feedback off) still produces the exact same cases.
        let mut blind = NnSmith::new(quick_config(42));
        let mut cfg = quick_config(42);
        cfg.feedback.corpus_cap = 7; // non-default knobs, still disabled
        cfg.feedback.mutation_prob = 0.9;
        let mut tweaked = NnSmith::new(cfg);
        assert_eq!(
            blind.next_case().expect("case").graph,
            tweaked.next_case().expect("case").graph
        );
        assert!(blind.feedback_summary().is_none());
    }

    #[test]
    fn feedback_loop_retains_mutates_and_checkpoints() {
        let mut cfg = quick_config(5);
        cfg.feedback = nnsmith_difftest::FeedbackConfig {
            enabled: true,
            checkpoint_every: 2,
            // High mutation bias: this test pins the mechanism (retention,
            // mutation, checkpoints), not the default exploration balance.
            mutation_prob: 0.9,
            ..nnsmith_difftest::FeedbackConfig::guided()
        };
        let mut fuzzer = NnSmith::new(cfg);
        for i in 0..6usize {
            let _case = fuzzer.next_case().expect("case");
            let mut new_branches = std::collections::BTreeMap::new();
            // Alternate novel / not-novel cases.
            new_branches.insert("tvmsim".to_string(), if i % 2 == 0 { 3 } else { 0 });
            fuzzer.observe(&nnsmith_difftest::CaseFeedback {
                case_index: i + 1,
                new_branches,
                finding: false,
            });
        }
        let s = fuzzer.feedback_summary().expect("guided summary");
        assert_eq!(s.retained, 3, "exactly the novel cases are retained");
        assert_eq!(s.corpus, 3);
        assert_ne!(s.corpus_digest, 0);
        assert_eq!(s.checkpoints, 3, "case-count checkpoints, every 2 cases");
        assert_eq!(s.mutated + s.fresh, 6);
        assert!(s.mutated > 0, "retained cases get mutated");
        assert!(
            !s.op_weights.is_empty(),
            "yielding ops carry boosted weights"
        );
    }

    #[test]
    fn reproducer_seeds_prefill_the_corpus() {
        let seed_case = NnSmith::new(quick_config(9)).next_case().expect("case");
        let mut cfg = quick_config(10);
        cfg.feedback = nnsmith_difftest::FeedbackConfig {
            seeds: vec![seed_case],
            ..nnsmith_difftest::FeedbackConfig::guided()
        };
        let fuzzer = NnSmith::new(cfg);
        let s = fuzzer.feedback_summary().expect("summary");
        assert_eq!(s.seeded, 1);
        assert_eq!(s.corpus, 1);
        assert_ne!(s.corpus_digest, 0);
    }

    #[test]
    fn novel_findings_enqueue_dtype_sibling_probes() {
        let mut cfg = quick_config(11);
        cfg.feedback = nnsmith_difftest::FeedbackConfig {
            // Mutation off so every non-fresh case is a probe; a long
            // checkpoint cadence keeps the schedule out of the way.
            checkpoint_every: 64,
            mutation_prob: 0.0,
            ..nnsmith_difftest::FeedbackConfig::guided()
        };
        let mut fuzzer = NnSmith::new(cfg);
        for i in 0..12usize {
            let _case = fuzzer.next_case().expect("case");
            let mut new_branches = std::collections::BTreeMap::new();
            // The first case is a coverage-novel finding; the rest are
            // plain cases.
            new_branches.insert("tvmsim".to_string(), if i == 0 { 5 } else { 0 });
            fuzzer.observe(&nnsmith_difftest::CaseFeedback {
                case_index: i + 1,
                new_branches,
                finding: i == 0,
            });
        }
        let s = fuzzer.feedback_summary().expect("guided summary");
        assert!(
            s.probes > 0,
            "the novel finding's dtype siblings must be probed (got {:?})",
            s
        );
        assert_eq!(s.mutated, 0, "mutation was disabled");
    }

    #[test]
    fn end_to_end_differential_test_on_clean_compilers() {
        use nnsmith_compilers::{ortsim, BugConfig, CompileOptions, CoverageSet};
        use nnsmith_difftest::{run_case, TestOutcome, Tolerance};
        let mut fuzzer = NnSmith::new(quick_config(3));
        let compiler = ortsim();
        let mut cov = CoverageSet::new();
        let options = CompileOptions {
            bugs: BugConfig::none(),
            ..CompileOptions::default()
        };
        let mut checked = 0;
        for _ in 0..4 {
            let Some(case) = fuzzer.next_case() else {
                continue;
            };
            let outcome = run_case(&compiler, &case, &options, Tolerance::default(), &mut cov);
            match outcome {
                TestOutcome::Pass | TestOutcome::NotImplemented | TestOutcome::NumericInvalid => {
                    checked += 1
                }
                other => panic!("clean compiler must not disagree: {other:?}"),
            }
        }
        assert!(checked >= 3);
        assert!(cov.len() > 100);
    }
}
