//! # nnsmith-core
//!
//! The end-to-end NNSmith pipeline (Figure 3 of the paper): constraint-
//! guided model generation (Algorithms 1–2) → gradient-guided value search
//! (Algorithm 3) → differential testing against the simulated compilers.
//!
//! [`NnSmith`] implements [`nnsmith_difftest::TestCaseSource`], so it plugs
//! into the same campaign driver as the baselines.
//!
//! ## Example
//!
//! ```
//! use nnsmith_core::{NnSmith, NnSmithConfig};
//! use nnsmith_difftest::TestCaseSource;
//!
//! let mut fuzzer = NnSmith::new(NnSmithConfig {
//!     seed: 7,
//!     ..NnSmithConfig::default()
//! });
//! let case = fuzzer.next_case().expect("a numerically-valid test case");
//! assert!(case.graph.operators().len() >= 1);
//! ```

#![warn(missing_docs)]

mod support;

pub use support::infer_supported_dtypes;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use nnsmith_difftest::{ShardCtx, SourceFactory, TestCase, TestCaseSource};
use nnsmith_gen::{GenConfig, Generator};
use nnsmith_ops::OpMemo;
use nnsmith_search::{search_values, SearchConfig};
use nnsmith_solver::InternPool;

/// Configuration for the full pipeline.
#[derive(Debug, Clone)]
pub struct NnSmithConfig {
    /// Graph-generation settings (Algorithms 1–2).
    pub gen: GenConfig,
    /// Value-search settings (Algorithm 3).
    pub search: SearchConfig,
    /// RNG seed (the pipeline is fully deterministic given the seed).
    pub seed: u64,
    /// Attempts to produce one numerically-valid case before giving up.
    pub max_attempts_per_case: usize,
}

impl Default for NnSmithConfig {
    fn default() -> Self {
        NnSmithConfig {
            gen: GenConfig::default(),
            search: SearchConfig::default(),
            seed: 0,
            max_attempts_per_case: 8,
        }
    }
}

impl NnSmithConfig {
    /// Restricts generation to the dtype intersection of `backends`
    /// (§4's support-matrix probing, across the whole set), so every
    /// generated case is legal on every backend of a cross-backend
    /// campaign. A single-backend set with full support leaves the
    /// configuration — and the RNG stream — untouched.
    pub fn restricted_to(mut self, backends: &nnsmith_compilers::BackendSet) -> Self {
        let dtypes = backends.supported_dtypes();
        if dtypes.len() != nnsmith_tensor::DType::ALL.len() {
            self.gen.allowed_dtypes = Some(dtypes);
        }
        self
    }
}

/// Cumulative pipeline statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Models generated.
    pub generated: u64,
    /// Generation failures.
    pub gen_failures: u64,
    /// Value searches that failed within budget.
    pub search_failures: u64,
    /// Test cases emitted.
    pub cases: u64,
}

/// The NNSmith fuzzer: generate → search → emit test cases.
#[derive(Debug)]
pub struct NnSmith {
    generator: Generator,
    search: SearchConfig,
    /// Arena every generated model's constraints and tensor types intern
    /// into. Private by default; a campaign hands every shard the same
    /// pool (see [`NnSmithFactory`]) so the arena is shared during the
    /// run and reclaimed when the campaign drops it.
    pool: InternPool,
    /// Per-source type-transfer memo, kept warm across every case this
    /// source generates. Deliberately *not* shared across shards: each
    /// shard's hit sequence must depend only on its own deterministic
    /// case stream so `workers=1 ≡ workers=N` byte-equality holds for the
    /// exported arena counters.
    memo: OpMemo,
    rng: StdRng,
    max_attempts_per_case: usize,
    stats: PipelineStats,
}

impl NnSmith {
    /// Creates the pipeline with its own private intern pool.
    pub fn new(config: NnSmithConfig) -> Self {
        NnSmith::new_in(config, InternPool::default())
    }

    /// Creates the pipeline interning into `pool` (a campaign's pool).
    pub fn new_in(config: NnSmithConfig, pool: InternPool) -> Self {
        NnSmith {
            generator: Generator::new(config.gen),
            search: config.search,
            memo: OpMemo::new(pool.clone()),
            pool,
            rng: StdRng::seed_from_u64(config.seed),
            max_attempts_per_case: config.max_attempts_per_case,
            stats: PipelineStats::default(),
        }
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> PipelineStats {
        self.stats
    }

    /// The intern pool this pipeline's models live in.
    pub fn pool(&self) -> &InternPool {
        &self.pool
    }

    /// Generates one model and searches values for it; `None` when either
    /// stage fails.
    fn try_once(&mut self) -> Option<TestCase> {
        let seed: u64 = self.rng.gen();
        let mut gen_rng = StdRng::seed_from_u64(seed);
        let model = match self
            .generator
            .generate_with(&self.pool, &self.memo, &mut gen_rng)
        {
            Ok(m) => m,
            Err(_) => {
                self.stats.gen_failures += 1;
                return None;
            }
        };
        self.stats.generated += 1;
        let mut search_rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9);
        let outcome = search_values(&model.graph, &self.search, &mut search_rng);
        match outcome.bindings {
            Some(bindings) => Some(TestCase::from_bindings(model.graph, bindings)),
            None => {
                self.stats.search_failures += 1;
                None
            }
        }
    }
}

impl TestCaseSource for NnSmith {
    fn name(&self) -> &str {
        "NNSmith"
    }

    fn next_case(&mut self) -> Option<TestCase> {
        for _ in 0..self.max_attempts_per_case {
            if let Some(case) = self.try_once() {
                self.stats.cases += 1;
                return Some(case);
            }
        }
        None
    }
}

/// [`SourceFactory`] for the NNSmith pipeline: every shard of a parallel
/// campaign gets a fresh [`NnSmith`] whose seed is the shard's derived
/// stream (`config.seed` is ignored in favour of [`ShardCtx::seed`]).
#[derive(Debug, Clone, Default)]
pub struct NnSmithFactory {
    /// Pipeline configuration applied to every shard.
    pub config: NnSmithConfig,
}

impl NnSmithFactory {
    /// Creates a factory from a pipeline configuration.
    pub fn new(config: NnSmithConfig) -> Self {
        NnSmithFactory { config }
    }

    /// A factory whose shards generate only cases every backend of the
    /// set supports (see [`NnSmithConfig::restricted_to`]) — the factory
    /// to hand a cross-backend engine run.
    pub fn for_backends(config: NnSmithConfig, backends: &nnsmith_compilers::BackendSet) -> Self {
        NnSmithFactory {
            config: config.restricted_to(backends),
        }
    }
}

impl SourceFactory for NnSmithFactory {
    fn name(&self) -> &str {
        "NNSmith"
    }

    fn make_source(&self, shard: ShardCtx) -> Box<dyn TestCaseSource + Send> {
        let mut config = self.config.clone();
        config.seed = shard.seed;
        Box::new(NnSmith::new(config))
    }

    fn make_source_in(&self, pool: &InternPool, shard: ShardCtx) -> Box<dyn TestCaseSource + Send> {
        let mut config = self.config.clone();
        config.seed = shard.seed;
        Box::new(NnSmith::new_in(config, pool.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn quick_config(seed: u64) -> NnSmithConfig {
        NnSmithConfig {
            gen: GenConfig {
                target_ops: 6,
                ..GenConfig::default()
            },
            search: SearchConfig {
                budget: Duration::from_millis(200),
                init_lo: -4.0,
                init_hi: 4.0,
                ..SearchConfig::default()
            },
            seed,
            max_attempts_per_case: 8,
        }
    }

    #[test]
    fn produces_numerically_valid_cases() {
        let mut fuzzer = NnSmith::new(quick_config(1));
        for _ in 0..3 {
            let case = fuzzer.next_case().expect("case");
            let exec = nnsmith_ops::execute(&case.graph, &case.all_bindings()).expect("runs");
            assert!(!exec.has_exceptional(), "values must be numerically valid");
        }
        assert!(fuzzer.stats().cases >= 3);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = NnSmith::new(quick_config(42));
        let mut b = NnSmith::new(quick_config(42));
        let ca = a.next_case().expect("case");
        let cb = b.next_case().expect("case");
        assert_eq!(ca.graph, cb.graph);
    }

    #[test]
    fn different_seeds_give_different_models() {
        let mut a = NnSmith::new(quick_config(1));
        let mut b = NnSmith::new(quick_config(2));
        assert_ne!(
            a.next_case().expect("case").graph,
            b.next_case().expect("case").graph
        );
    }

    #[test]
    fn end_to_end_differential_test_on_clean_compilers() {
        use nnsmith_compilers::{ortsim, BugConfig, CompileOptions, CoverageSet};
        use nnsmith_difftest::{run_case, TestOutcome, Tolerance};
        let mut fuzzer = NnSmith::new(quick_config(3));
        let compiler = ortsim();
        let mut cov = CoverageSet::new();
        let options = CompileOptions {
            bugs: BugConfig::none(),
            ..CompileOptions::default()
        };
        let mut checked = 0;
        for _ in 0..4 {
            let Some(case) = fuzzer.next_case() else {
                continue;
            };
            let outcome = run_case(&compiler, &case, &options, Tolerance::default(), &mut cov);
            match outcome {
                TestOutcome::Pass | TestOutcome::NotImplemented | TestOutcome::NumericInvalid => {
                    checked += 1
                }
                other => panic!("clean compiler must not disagree: {other:?}"),
            }
        }
        assert!(checked >= 3);
        assert!(cov.len() > 100);
    }
}
