//! Compiler support-matrix inference (§4 of the paper).
//!
//! "Since DL compilers vary in operator and data type support, we infer
//! the set of operators supported by the compiler being tested by trying
//! to compile single-operator models with different data types. We use
//! this information when generating graphs, so as to avoid
//! 'Not-Implemented' errors."
//!
//! This module probes a simulated compiler with tiny single-operator
//! models and reports which dtypes survive, so the generator can be
//! restricted accordingly.

use nnsmith_compilers::{BugConfig, CompileError, CompileOptions, Compiler, CoverageSet, OptLevel};
use nnsmith_graph::{Graph, NodeKind, TensorType, ValueRef};
use nnsmith_ops::{BinaryKind, Bindings, Op, UnaryKind};
use nnsmith_tensor::{DType, Tensor};

/// Builds a minimal single-operator probe model for a dtype.
fn probe_model(dtype: DType) -> (Graph<Op>, Bindings) {
    let mut g: Graph<Op> = Graph::new();
    let x = g.add_node(
        NodeKind::Input,
        vec![],
        vec![TensorType::concrete(dtype, &[2, 2])],
    );
    let op = match dtype {
        DType::Bool => Op::Not,
        DType::F32 | DType::F64 => Op::Unary(UnaryKind::Tanh),
        DType::I32 | DType::I64 => Op::Binary(BinaryKind::Add),
    };
    let inputs = match op.arity() {
        1 => vec![ValueRef::output0(x)],
        _ => vec![ValueRef::output0(x), ValueRef::output0(x)],
    };
    g.add_node(
        NodeKind::Operator(op),
        inputs,
        vec![TensorType::concrete(dtype, &[2, 2])],
    );
    (g, Bindings::new())
}

/// Probes which element types the compiler accepts, by compiling
/// single-operator models (bugs disabled so seeded crashes don't skew the
/// support matrix).
pub fn infer_supported_dtypes(compiler: &Compiler) -> Vec<DType> {
    let options = CompileOptions {
        opt_level: OptLevel::O0,
        bugs: BugConfig::none(),
    };
    let mut out = Vec::new();
    for dtype in DType::ALL {
        let (graph, weights) = probe_model(dtype);
        let mut cov = CoverageSet::new();
        match compiler.compile(&graph, &weights, &options, &mut cov) {
            Ok(compiled) => {
                // Also require the probe to run.
                let mut inputs = std::collections::HashMap::new();
                let input_id = compiled.cgraph.inputs[0].0;
                inputs.insert(input_id, Tensor::ones(&[2, 2], dtype));
                if compiled.run(&inputs).is_ok() {
                    out.push(dtype);
                }
            }
            Err(CompileError::NotImplemented(_) | CompileError::UnsupportedDtype(_)) => {}
            Err(_) => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnsmith_compilers::{ortsim, trtsim, tvmsim};

    #[test]
    fn tvm_and_ort_support_everything() {
        for compiler in [tvmsim(), ortsim()] {
            let supported = infer_supported_dtypes(&compiler);
            assert_eq!(
                supported.len(),
                DType::ALL.len(),
                "{} supports {supported:?}",
                compiler.system().name()
            );
        }
    }

    #[test]
    fn trtsim_lacks_f64() {
        let supported = infer_supported_dtypes(&trtsim());
        assert!(!supported.contains(&DType::F64));
        assert!(supported.contains(&DType::F32));
        assert!(supported.contains(&DType::I64));
    }
}
