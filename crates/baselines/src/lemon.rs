//! LEMON reimplementation (Wang et al., ESEC/FSE 2020), per §6.1.
//!
//! LEMON mutates *pre-trained real-world models* and, to guarantee
//! validity without constraint reasoning, only applies mutations built
//! from **shape-preserving unary operators**: inserting such a layer on an
//! edge, deleting one, or duplicating one. It cannot introduce
//! non-shape-preserving operators (no new Conv2d, no broadcasting, no
//! reshape) and uses no input search. This reimplementation seeds the
//! mutator with small fixed CNN/MLP models (the "pre-trained model zoo")
//! and applies the same mutation space.

use rand::seq::SliceRandom;
use rand::Rng;

use nnsmith_difftest::{TestCase, TestCaseSource};
use nnsmith_graph::{Graph, NodeId, NodeKind, TensorType, ValueRef};
use nnsmith_ops::{random_bindings, Op, UnaryKind};
use nnsmith_solver::{IntExpr, InternPool};
use nnsmith_tensor::DType;

/// Shape-preserving unary operators LEMON may insert.
const SAFE_UNARY: [UnaryKind; 8] = [
    UnaryKind::Relu,
    UnaryKind::LeakyRelu,
    UnaryKind::Sigmoid,
    UnaryKind::Tanh,
    UnaryKind::Sin,
    UnaryKind::Cos,
    UnaryKind::Atan,
    UnaryKind::Abs,
];

/// A small fixed "pre-trained" CNN: Input → Conv(3x3) → Relu →
/// MaxPool(2) → Conv(1x1) → Relu. Tensor types intern into `pool` (the
/// campaign arena during engine runs).
fn seed_cnn(pool: &InternPool) -> Graph<Op> {
    let t = |dims: &[i64]| TensorType::concrete_in(pool, DType::F32, dims);
    let mut g: Graph<Op> = Graph::new();
    let x = g.add_node(NodeKind::Input, vec![], vec![t(&[1, 3, 16, 16])]);
    let w1 = g.add_node(NodeKind::Weight, vec![], vec![t(&[8, 3, 3, 3])]);
    let b1 = g.add_node(NodeKind::Weight, vec![], vec![t(&[8])]);
    let conv1 = g.add_node(
        NodeKind::Operator(Op::Conv2d {
            in_channels: IntExpr::Const(3),
            out_channels: IntExpr::Const(8),
            kh: IntExpr::Const(3),
            kw: IntExpr::Const(3),
            stride: IntExpr::Const(1),
            padding: IntExpr::Const(1),
            dilation: IntExpr::Const(1),
        }),
        vec![
            ValueRef::output0(x),
            ValueRef::output0(w1),
            ValueRef::output0(b1),
        ],
        vec![t(&[1, 8, 16, 16])],
    );
    let relu1 = g.add_node(
        NodeKind::Operator(Op::Unary(UnaryKind::Relu)),
        vec![ValueRef::output0(conv1)],
        vec![t(&[1, 8, 16, 16])],
    );
    let mp = g.add_node(
        NodeKind::Operator(Op::MaxPool2d {
            kh: IntExpr::Const(2),
            kw: IntExpr::Const(2),
            stride: IntExpr::Const(2),
            padding: IntExpr::Const(0),
        }),
        vec![ValueRef::output0(relu1)],
        vec![t(&[1, 8, 8, 8])],
    );
    let w2 = g.add_node(NodeKind::Weight, vec![], vec![t(&[8, 8, 1, 1])]);
    let b2 = g.add_node(NodeKind::Weight, vec![], vec![t(&[8])]);
    let conv2 = g.add_node(
        NodeKind::Operator(Op::Conv2d {
            in_channels: IntExpr::Const(8),
            out_channels: IntExpr::Const(8),
            kh: IntExpr::Const(1),
            kw: IntExpr::Const(1),
            stride: IntExpr::Const(1),
            padding: IntExpr::Const(0),
            dilation: IntExpr::Const(1),
        }),
        vec![
            ValueRef::output0(mp),
            ValueRef::output0(w2),
            ValueRef::output0(b2),
        ],
        vec![t(&[1, 8, 8, 8])],
    );
    g.add_node(
        NodeKind::Operator(Op::Unary(UnaryKind::Relu)),
        vec![ValueRef::output0(conv2)],
        vec![t(&[1, 8, 8, 8])],
    );
    g
}

/// A small fixed MLP: Input → Dense → Tanh → Dense.
fn seed_mlp(pool: &InternPool) -> Graph<Op> {
    let t = |dims: &[i64]| TensorType::concrete_in(pool, DType::F32, dims);
    let mut g: Graph<Op> = Graph::new();
    let x = g.add_node(NodeKind::Input, vec![], vec![t(&[2, 16])]);
    let w1 = g.add_node(NodeKind::Weight, vec![], vec![t(&[16, 8])]);
    let b1 = g.add_node(NodeKind::Weight, vec![], vec![t(&[8])]);
    let d1 = g.add_node(
        NodeKind::Operator(Op::Dense {
            in_features: IntExpr::Const(16),
            units: IntExpr::Const(8),
        }),
        vec![
            ValueRef::output0(x),
            ValueRef::output0(w1),
            ValueRef::output0(b1),
        ],
        vec![t(&[2, 8])],
    );
    let tanh = g.add_node(
        NodeKind::Operator(Op::Unary(UnaryKind::Tanh)),
        vec![ValueRef::output0(d1)],
        vec![t(&[2, 8])],
    );
    let w2 = g.add_node(NodeKind::Weight, vec![], vec![t(&[8, 4])]);
    let b2 = g.add_node(NodeKind::Weight, vec![], vec![t(&[4])]);
    g.add_node(
        NodeKind::Operator(Op::Dense {
            in_features: IntExpr::Const(8),
            units: IntExpr::Const(4),
        }),
        vec![
            ValueRef::output0(tanh),
            ValueRef::output0(w2),
            ValueRef::output0(b2),
        ],
        vec![t(&[2, 4])],
    );
    g
}

/// The LEMON-style mutation fuzzer.
#[derive(Debug)]
pub struct Lemon<R: Rng> {
    rng: R,
    corpus: Vec<Graph<Op>>,
    /// Mutations applied per emitted model.
    pub mutations_per_model: usize,
}

impl<R: Rng> Lemon<R> {
    /// Creates the fuzzer with the built-in seed-model zoo, interning into
    /// a private mini-pool (standalone use; campaigns use
    /// [`Lemon::new_in`]).
    pub fn new(rng: R) -> Self {
        Lemon::new_in(rng, &InternPool::small())
    }

    /// Creates the fuzzer with its seed zoo interned into `pool` — the
    /// campaign arena when sharded by
    /// [`crate::LemonFactory::make_source_in`], so engine campaigns never
    /// allocate per-graph mini-pools. Mutations only clone existing types,
    /// so every emitted model stays homed in `pool`.
    pub fn new_in(rng: R, pool: &InternPool) -> Self {
        Lemon {
            rng,
            corpus: vec![seed_cnn(pool), seed_mlp(pool)],
            mutations_per_model: 3,
        }
    }

    /// Applies one random LEMON mutation in place.
    fn mutate(&mut self, g: &mut Graph<Op>) {
        match self.rng.gen_range(0..3) {
            // Layer addition: insert a shape-preserving unary op after a
            // random float value.
            0 => {
                let candidates: Vec<ValueRef> = g
                    .all_values()
                    .into_iter()
                    .filter(|v| g.value_type(*v).dtype.is_float())
                    .collect();
                let Some(&target) = candidates.choose(&mut self.rng) else {
                    return;
                };
                let ttype = g.value_type(target).clone();
                let kind = *SAFE_UNARY.choose(&mut self.rng).expect("nonempty");
                let new_node = g.add_node(
                    NodeKind::Operator(Op::Unary(kind)),
                    vec![target],
                    vec![ttype],
                );
                // Rewire previous consumers of `target` to the new node.
                for i in 0..g.len() {
                    let id = NodeId(i as u32);
                    if id == new_node {
                        continue;
                    }
                    for v in &mut g.node_mut(id).inputs {
                        if *v == target {
                            *v = ValueRef::output0(new_node);
                        }
                    }
                }
            }
            // Layer deletion: bypass a shape-preserving unary operator.
            1 => {
                let deletable: Vec<NodeId> = g
                    .operators()
                    .into_iter()
                    .filter(|&id| matches!(g.node(id).kind.as_operator(), Some(Op::Unary(_))))
                    .collect();
                let Some(&victim) = deletable.choose(&mut self.rng) else {
                    return;
                };
                let src = g.node(victim).inputs[0];
                for i in 0..g.len() {
                    let id = NodeId(i as u32);
                    if id == victim {
                        continue;
                    }
                    for v in &mut g.node_mut(id).inputs {
                        if *v == ValueRef::output0(victim) {
                            *v = src;
                        }
                    }
                }
                // The victim stays as a dangling (extra-output) node —
                // LEMON models keep such residues too.
            }
            // Layer duplication: stack the same unary twice.
            _ => {
                let dup: Vec<NodeId> = g
                    .operators()
                    .into_iter()
                    .filter(|&id| matches!(g.node(id).kind.as_operator(), Some(Op::Unary(_))))
                    .collect();
                let Some(&orig) = dup.choose(&mut self.rng) else {
                    return;
                };
                let op = g.node(orig).kind.as_operator().expect("unary").clone();
                let ttype = g.node(orig).outputs[0].clone();
                let new_node = g.add_node(
                    NodeKind::Operator(op),
                    vec![ValueRef::output0(orig)],
                    vec![ttype],
                );
                for i in 0..g.len() {
                    let id = NodeId(i as u32);
                    if id == new_node {
                        continue;
                    }
                    for v in &mut g.node_mut(id).inputs {
                        if *v == ValueRef::output0(orig) && id != new_node {
                            *v = ValueRef::output0(new_node);
                        }
                    }
                }
                // Fix self-loop: the duplicate must still read the original.
                g.node_mut(new_node).inputs = vec![ValueRef::output0(orig)];
            }
        }
    }
}

impl<R: Rng> TestCaseSource for Lemon<R> {
    fn name(&self) -> &str {
        "LEMON"
    }

    fn next_case(&mut self) -> Option<TestCase> {
        let idx = self.rng.gen_range(0..self.corpus.len());
        let mut graph = self.corpus[idx].clone();
        for _ in 0..self.mutations_per_model {
            self.mutate(&mut graph);
        }
        debug_assert!(graph.validate().is_ok());
        // LEMON has no value search: plain random values.
        let bindings = random_bindings(&graph, -3.0, 3.0, &mut self.rng).ok()?;
        Some(TestCase::from_bindings(graph, bindings))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn seeds_are_valid_and_runnable() {
        let pool = InternPool::small();
        for g in [seed_cnn(&pool), seed_mlp(&pool)] {
            assert!(g.validate().is_ok());
            let mut rng = StdRng::seed_from_u64(0);
            let b = random_bindings(&g, -1.0, 1.0, &mut rng).unwrap();
            assert!(nnsmith_ops::execute(&g, &b).is_ok());
        }
    }

    #[test]
    fn mutants_stay_valid_and_runnable() {
        let mut lemon = Lemon::new(StdRng::seed_from_u64(1));
        for _ in 0..30 {
            let case = lemon.next_case().unwrap();
            assert!(case.graph.validate().is_ok());
            assert!(
                nnsmith_ops::execute(&case.graph, &case.all_bindings()).is_ok(),
                "mutant must execute"
            );
        }
    }

    #[test]
    fn mutants_only_add_shape_preserving_unary_ops() {
        let mut lemon = Lemon::new(StdRng::seed_from_u64(2));
        for _ in 0..20 {
            let case = lemon.next_case().unwrap();
            for id in case.graph.operators() {
                let op = case.graph.node(id).kind.as_operator().unwrap();
                // Only ops from the seeds plus safe unaries can appear.
                let ok = matches!(
                    op,
                    Op::Unary(_) | Op::Conv2d { .. } | Op::MaxPool2d { .. } | Op::Dense { .. }
                );
                assert!(ok, "unexpected op {}", op.name());
            }
        }
    }

    #[test]
    fn never_generates_strided_slice_or_broadcast() {
        // The structural limitation behind LEMON's missed bugs (§2.3).
        let mut lemon = Lemon::new(StdRng::seed_from_u64(3));
        for _ in 0..30 {
            let case = lemon.next_case().unwrap();
            for id in case.graph.operators() {
                let op = case.graph.node(id).kind.as_operator().unwrap();
                assert!(!matches!(
                    op,
                    Op::Slice { .. } | Op::BroadcastTo { .. } | Op::Reshape { .. }
                ));
            }
        }
    }
}
