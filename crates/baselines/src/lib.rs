//! # nnsmith-baselines
//!
//! Reimplementations of the three baseline fuzzers NNSmith is evaluated
//! against (§5.2, §6.1):
//!
//! * [`Lemon`] — mutates fixed "pre-trained" seed models using only
//!   shape-preserving unary operators (no broadcasting, no strided slices,
//!   no attribute exploration);
//! * [`GraphFuzzer`] — wires a restricted operator corpus at random and
//!   repairs shapes syntactically with stride-1 slices and padding (the
//!   Listing-1 `M1` pattern), instantiating shape-changing operators with
//!   shape-preserving attributes;
//! * [`Tzer`] — mutates tvmsim's low-level loop IR directly, reaching
//!   low-level branches graph fuzzing cannot while covering no graph-level
//!   pass.
//!
//! All three implement [`nnsmith_difftest::TestCaseSource`] (Tzer emits
//! IR-payload cases), and their factories ([`LemonFactory`],
//! [`GraphFuzzerFactory`], [`TzerFactory`]) implement
//! [`nnsmith_difftest::SourceFactory`], so the same sharded engine and
//! triage pipeline drive every comparison (Figures 4–8).

#![warn(missing_docs)]

mod factory;
mod graphfuzzer;
mod lemon;
mod tzer;

pub use factory::{GraphFuzzerFactory, LemonFactory, TzerFactory};
pub use graphfuzzer::{GraphFuzzer, GraphFuzzerConfig};
pub use lemon::Lemon;
pub use tzer::{run_tzer_campaign, Tzer, TzerPoint, TzerRetention};
