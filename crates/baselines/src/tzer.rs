//! Tzer reimplementation (Liu et al., OOPSLA 2022), per §5.2 / Fig. 8.
//!
//! Tzer is a coverage-guided fuzzer that mutates TVM's **low-level IR**
//! directly, bypassing the graph level entirely. It therefore reaches
//! low-level branches graph-level fuzzing never produces (wild loop
//! extents, variable divisors in index arithmetic, deep nests) while
//! covering none of the graph-level passes. This module mutates tvmsim's
//! [`LoweredFunc`] IR and drives the low-level pipeline with coverage.

use rand::seq::SliceRandom;
use rand::Rng;

use nnsmith_compilers::{
    codegen_coverage, tir_schedule, tir_simplify, tvmsim, CoverageSet, LExpr, LStmt, LoweredFunc,
};
use nnsmith_difftest::{TestCase, TestCaseSource};

/// The Tzer-style low-level IR fuzzer.
#[derive(Debug)]
pub struct Tzer<R: Rng> {
    rng: R,
    corpus: Vec<LoweredFunc>,
    next_var: u32,
}

fn seed_funcs() -> Vec<LoweredFunc> {
    // Simple seed kernels, as if lowered from tiny graphs.
    let store = |index: LExpr| LStmt::Store { index };
    vec![
        LoweredFunc {
            name: "seed_copy".into(),
            body: vec![LStmt::For {
                var: 0,
                extent: 16,
                body: vec![store(LExpr::Var(0))],
                vectorized: false,
                unrolled: false,
            }],
        },
        LoweredFunc {
            name: "seed_2d".into(),
            body: vec![LStmt::For {
                var: 0,
                extent: 8,
                body: vec![LStmt::For {
                    var: 1,
                    extent: 8,
                    body: vec![store(LExpr::Add(
                        Box::new(LExpr::Mul(
                            Box::new(LExpr::Var(0)),
                            Box::new(LExpr::Const(8)),
                        )),
                        Box::new(LExpr::Var(1)),
                    ))],
                    vectorized: false,
                    unrolled: false,
                }],
                vectorized: false,
                unrolled: false,
            }],
        },
    ]
}

impl<R: Rng> Tzer<R> {
    /// Creates the fuzzer with built-in seed kernels.
    pub fn new(rng: R) -> Self {
        Tzer {
            rng,
            corpus: seed_funcs(),
            next_var: 100,
        }
    }

    fn random_expr(&mut self, depth: usize) -> LExpr {
        if depth == 0 || self.rng.gen_bool(0.4) {
            if self.rng.gen_bool(0.5) {
                LExpr::Const(self.rng.gen_range(-64..=512))
            } else {
                LExpr::Var(self.rng.gen_range(0..8))
            }
        } else {
            let a = Box::new(self.random_expr(depth - 1));
            let b = Box::new(self.random_expr(depth - 1));
            match self.rng.gen_range(0..4) {
                0 => LExpr::Add(a, b),
                1 => LExpr::Mul(a, b),
                // Variable divisors/moduli — index forms graph lowering
                // never emits, giving Tzer its exclusive branches.
                2 => LExpr::Div(a, b),
                _ => LExpr::Mod(a, b),
            }
        }
    }

    fn mutate_stmts(&mut self, stmts: &mut Vec<LStmt>, depth: usize) {
        let choice = self.rng.gen_range(0..4);
        match choice {
            // Wrap in a fresh loop (deepens the nest).
            0 if depth < 8 => {
                let var = self.next_var;
                self.next_var += 1;
                let extent = *[1i64, 2, 3, 5, 7, 11, 100, 1000]
                    .choose(&mut self.rng)
                    .expect("nonempty");
                let body = std::mem::take(stmts);
                stmts.push(LStmt::For {
                    var,
                    extent,
                    body,
                    vectorized: false,
                    unrolled: false,
                });
            }
            // Replace a store index with a random expression.
            1 => {
                if let Some(s) = stmts.choose_mut(&mut self.rng) {
                    match s {
                        LStmt::Store { index } => *index = self.random_expr(3),
                        LStmt::For { body, .. } => self.mutate_stmts(body, depth + 1),
                    }
                }
            }
            // Perturb a loop extent.
            2 => {
                if let Some(LStmt::For { extent, .. }) = stmts
                    .iter_mut()
                    .filter(|s| matches!(s, LStmt::For { .. }))
                    .collect::<Vec<_>>()
                    .choose_mut(&mut self.rng)
                    .map(|s| &mut **s)
                {
                    *extent = (*extent + self.rng.gen_range(-3i64..=37)).max(1);
                }
            }
            // Insert an extra store.
            _ => {
                let idx = self.random_expr(2);
                stmts.push(LStmt::Store { index: idx });
            }
        }
    }

    /// Produces the next mutated kernel.
    pub fn next_func(&mut self) -> LoweredFunc {
        let idx = self.rng.gen_range(0..self.corpus.len());
        let mut f = self.corpus[idx].clone();
        let rounds = self.rng.gen_range(1..=4);
        for _ in 0..rounds {
            self.mutate_stmts(&mut f.body, 0);
        }
        // Coverage-guided corpus growth: keep some mutants as new seeds.
        if self.corpus.len() < 64 && self.rng.gen_bool(0.3) {
            self.corpus.push(f.clone());
        }
        f
    }
}

/// The engine seam: each emitted case wraps one mutated kernel as an
/// IR-payload [`TestCase`], so Tzer campaigns run through the same sharded
/// engine (and triage pipeline) as every graph-level fuzzer. The
/// differential harness drives the TIR pipeline on the payload
/// ([`nnsmith_difftest::run_ir_case`]) and fires the seeded TIR bugs.
impl<R: Rng> TestCaseSource for Tzer<R> {
    fn name(&self) -> &str {
        "Tzer"
    }

    fn next_case(&mut self) -> Option<TestCase> {
        Some(TestCase::from_ir(vec![self.next_func()]))
    }
}

/// A coverage timeline point for the Tzer campaign.
#[derive(Debug, Clone, Copy)]
pub struct TzerPoint {
    /// Milliseconds since start.
    pub elapsed_ms: u64,
    /// Mutants executed.
    pub iterations: usize,
    /// Branches covered (tvmsim manifest).
    pub total_branches: usize,
    /// Pass-file branches covered.
    pub pass_branches: usize,
}

/// Runs a Tzer campaign against tvmsim's low-level pipeline for the given
/// budget, returning the cumulative coverage and a timeline.
///
/// This is the *single-threaded reference loop* (kept for unit tests and
/// coverage-behaviour comparisons). Production campaigns shard Tzer
/// through the engine instead — [`crate::TzerFactory`] +
/// [`nnsmith_difftest::run_engine`] — which also routes findings through
/// triage; this loop reports coverage only.
pub fn run_tzer_campaign<R: Rng>(
    mut tzer: Tzer<R>,
    duration: std::time::Duration,
    max_iterations: Option<usize>,
) -> (CoverageSet, Vec<TzerPoint>) {
    let compiler = tvmsim();
    let manifest = compiler.manifest().clone();
    let mut cov = CoverageSet::new();
    let mut timeline = Vec::new();
    let start = std::time::Instant::now();
    // Loading the framework covers the same baseline branches as any other
    // TVM-based fuzzer (shared with the engine path's `run_ir_case`).
    compiler.record_base_coverage(&mut cov);
    let mut iterations = 0usize;
    while start.elapsed() < duration {
        if max_iterations.is_some_and(|m| iterations >= m) {
            break;
        }
        iterations += 1;
        let mut funcs = vec![tzer.next_func()];
        tir_simplify(&mut funcs, &mut cov, &manifest);
        tir_schedule(&mut funcs, &mut cov, &manifest);
        codegen_coverage(&funcs, &mut cov, &manifest);
        if iterations.is_multiple_of(64) {
            timeline.push(TzerPoint {
                elapsed_ms: start.elapsed().as_millis() as u64,
                iterations,
                total_branches: cov.len(),
                pass_branches: cov.pass_len(&manifest),
            });
        }
    }
    timeline.push(TzerPoint {
        elapsed_ms: start.elapsed().as_millis() as u64,
        iterations,
        total_branches: cov.len(),
        pass_branches: cov.pass_len(&manifest),
    });
    (cov, timeline)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::time::Duration;

    #[test]
    fn mutants_differ_from_seeds() {
        let mut tzer = Tzer::new(StdRng::seed_from_u64(0));
        let seeds = seed_funcs();
        let mut changed = 0;
        for _ in 0..20 {
            let f = tzer.next_func();
            if !seeds.iter().any(|s| s.body == f.body) {
                changed += 1;
            }
        }
        assert!(changed > 10);
    }

    #[test]
    fn campaign_covers_lowlevel_branches_only() {
        let tzer = Tzer::new(StdRng::seed_from_u64(1));
        let (cov, timeline) = run_tzer_campaign(tzer, Duration::from_millis(500), Some(500));
        assert!(cov.len() > 400, "covered {}", cov.len()); // base + tir
        assert!(!timeline.is_empty());
        // Tzer reaches pass branches (the tir files) but cannot exceed the
        // tir + base budget by much — graph passes are out of reach.
        let compiler = tvmsim();
        let pass = cov.pass_len(compiler.manifest());
        assert!(pass > 0);
        assert!(pass < 200, "tzer pass coverage {pass} too broad");
    }

    #[test]
    fn tzer_reaches_variable_divisor_branches() {
        // Simplifying a Div-by-variable is a branch graph lowering never
        // emits; check Tzer's campaign coverage includes tir sites beyond
        // a graph-lowered campaign's typical set by running one graph.
        let tzer = Tzer::new(StdRng::seed_from_u64(2));
        let (cov, _) = run_tzer_campaign(tzer, Duration::from_millis(300), Some(300));
        assert!(!cov.is_empty());
    }
}
