//! Tzer reimplementation (Liu et al., OOPSLA 2022), per §5.2 / Fig. 8.
//!
//! Tzer is a coverage-guided fuzzer that mutates TVM's **low-level IR**
//! directly, bypassing the graph level entirely. It therefore reaches
//! low-level branches graph-level fuzzing never produces (wild loop
//! extents, variable divisors in index arithmetic, deep nests) while
//! covering none of the graph-level passes. This module mutates tvmsim's
//! [`LoweredFunc`] IR and drives the low-level pipeline with coverage.

use std::collections::BTreeMap;

use rand::seq::SliceRandom;
use rand::Rng;

use nnsmith_compilers::{
    codegen_coverage, tir_schedule, tir_simplify, tvmsim, CoverageSet, LExpr, LStmt, LoweredFunc,
};
use nnsmith_difftest::{CaseFeedback, FeedbackCorpus, FeedbackSummary, TestCase, TestCaseSource};

/// How Tzer decides which mutants join the live corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TzerRetention {
    /// AFL-style: a mutant is kept iff executing it covered at least one
    /// branch the campaign had not seen before (fed back through
    /// [`TestCaseSource::observe`]). This is what "coverage-guided"
    /// actually means and is the default.
    #[default]
    CoverageGuided,
    /// The historical behavior, preserved as an escape hatch for baseline
    /// comparisons (`--blind-retention` on the fig8 bin): keep a mutant
    /// with probability 0.3 while the corpus holds fewer than 64 entries,
    /// never consulting coverage. The RNG stream is bit-identical to the
    /// pre-fix fuzzer.
    Blind,
}

/// The Tzer-style low-level IR fuzzer.
#[derive(Debug)]
pub struct Tzer<R: Rng> {
    rng: R,
    retention: TzerRetention,
    /// Blind-mode corpus (historical semantics, probability-grown).
    corpus: Vec<LoweredFunc>,
    /// Guided-mode corpus: seeds frozen, tail grown only on novelty.
    feedback: FeedbackCorpus<LoweredFunc>,
    summary: FeedbackSummary,
    /// The most recent mutant, awaiting its coverage verdict.
    last: Option<LoweredFunc>,
    next_var: u32,
}

fn seed_funcs() -> Vec<LoweredFunc> {
    // Simple seed kernels, as if lowered from tiny graphs.
    let store = |index: LExpr| LStmt::Store { index };
    vec![
        LoweredFunc {
            name: "seed_copy".into(),
            body: vec![LStmt::For {
                var: 0,
                extent: 16,
                body: vec![store(LExpr::Var(0))],
                vectorized: false,
                unrolled: false,
            }],
        },
        LoweredFunc {
            name: "seed_2d".into(),
            body: vec![LStmt::For {
                var: 0,
                extent: 8,
                body: vec![LStmt::For {
                    var: 1,
                    extent: 8,
                    body: vec![store(LExpr::Add(
                        Box::new(LExpr::Mul(
                            Box::new(LExpr::Var(0)),
                            Box::new(LExpr::Const(8)),
                        )),
                        Box::new(LExpr::Var(1)),
                    ))],
                    vectorized: false,
                    unrolled: false,
                }],
                vectorized: false,
                unrolled: false,
            }],
        },
    ]
}

impl<R: Rng> Tzer<R> {
    /// Creates the fuzzer with built-in seed kernels and coverage-guided
    /// retention.
    pub fn new(rng: R) -> Self {
        Tzer::with_retention(rng, TzerRetention::default())
    }

    /// Creates the fuzzer with an explicit retention policy.
    pub fn with_retention(rng: R, retention: TzerRetention) -> Self {
        let mut feedback = FeedbackCorpus::new(64);
        let mut summary = FeedbackSummary::default();
        for f in seed_funcs() {
            let encoding = serde::json::to_string(&f);
            feedback.seed(f, &encoding);
            summary.seeded += 1;
        }
        Tzer {
            rng,
            retention,
            corpus: seed_funcs(),
            feedback,
            summary,
            last: None,
            next_var: 100,
        }
    }

    fn random_expr(&mut self, depth: usize) -> LExpr {
        if depth == 0 || self.rng.gen_bool(0.4) {
            if self.rng.gen_bool(0.5) {
                LExpr::Const(self.rng.gen_range(-64..=512))
            } else {
                LExpr::Var(self.rng.gen_range(0..8))
            }
        } else {
            let a = Box::new(self.random_expr(depth - 1));
            let b = Box::new(self.random_expr(depth - 1));
            match self.rng.gen_range(0..4) {
                0 => LExpr::Add(a, b),
                1 => LExpr::Mul(a, b),
                // Variable divisors/moduli — index forms graph lowering
                // never emits, giving Tzer its exclusive branches.
                2 => LExpr::Div(a, b),
                _ => LExpr::Mod(a, b),
            }
        }
    }

    fn mutate_stmts(&mut self, stmts: &mut Vec<LStmt>, depth: usize) {
        let choice = self.rng.gen_range(0..4);
        match choice {
            // Wrap in a fresh loop (deepens the nest).
            0 if depth < 8 => {
                let var = self.next_var;
                self.next_var += 1;
                let extent = *[1i64, 2, 3, 5, 7, 11, 100, 1000]
                    .choose(&mut self.rng)
                    .expect("nonempty");
                let body = std::mem::take(stmts);
                stmts.push(LStmt::For {
                    var,
                    extent,
                    body,
                    vectorized: false,
                    unrolled: false,
                });
            }
            // Replace a store index with a random expression.
            1 => {
                if let Some(s) = stmts.choose_mut(&mut self.rng) {
                    match s {
                        LStmt::Store { index } => *index = self.random_expr(3),
                        LStmt::For { body, .. } => self.mutate_stmts(body, depth + 1),
                    }
                }
            }
            // Perturb a loop extent.
            2 => {
                if let Some(LStmt::For { extent, .. }) = stmts
                    .iter_mut()
                    .filter(|s| matches!(s, LStmt::For { .. }))
                    .collect::<Vec<_>>()
                    .choose_mut(&mut self.rng)
                    .map(|s| &mut **s)
                {
                    *extent = (*extent + self.rng.gen_range(-3i64..=37)).max(1);
                }
            }
            // Insert an extra store.
            _ => {
                let idx = self.random_expr(2);
                stmts.push(LStmt::Store { index: idx });
            }
        }
    }

    /// Produces the next mutated kernel.
    pub fn next_func(&mut self) -> LoweredFunc {
        let mut f = match self.retention {
            TzerRetention::Blind => {
                let idx = self.rng.gen_range(0..self.corpus.len());
                self.corpus[idx].clone()
            }
            TzerRetention::CoverageGuided => {
                let idx = self.rng.gen_range(0..self.feedback.len());
                self.feedback.get(idx).clone()
            }
        };
        let rounds = self.rng.gen_range(1..=4);
        for _ in 0..rounds {
            self.mutate_stmts(&mut f.body, 0);
        }
        match self.retention {
            // Historical stream, bit-for-bit: the probability draw happens
            // only while below the cap, and coverage is never consulted.
            TzerRetention::Blind => {
                if self.corpus.len() < 64 && self.rng.gen_bool(0.3) {
                    self.corpus.push(f.clone());
                }
            }
            // Guided: park the mutant until `observe` delivers its
            // coverage verdict.
            TzerRetention::CoverageGuided => {
                self.summary.mutated += 1;
                self.last = Some(f.clone());
            }
        }
        f
    }

    /// Live corpus size under the active retention policy.
    pub fn corpus_len(&self) -> usize {
        match self.retention {
            TzerRetention::Blind => self.corpus.len(),
            TzerRetention::CoverageGuided => self.feedback.len(),
        }
    }
}

/// The engine seam: each emitted case wraps one mutated kernel as an
/// IR-payload [`TestCase`], so Tzer campaigns run through the same sharded
/// engine (and triage pipeline) as every graph-level fuzzer. The
/// differential harness drives the TIR pipeline on the payload
/// ([`nnsmith_difftest::run_ir_case`]) and fires the seeded TIR bugs.
impl<R: Rng> TestCaseSource for Tzer<R> {
    fn name(&self) -> &str {
        "Tzer"
    }

    fn next_case(&mut self) -> Option<TestCase> {
        Some(TestCase::from_ir(vec![self.next_func()]))
    }

    fn observe(&mut self, feedback: &CaseFeedback) {
        if self.retention == TzerRetention::Blind {
            return;
        }
        let Some(f) = self.last.take() else {
            return;
        };
        let novel = feedback.total_new() > 0;
        let encoding = serde::json::to_string(&f);
        if self.feedback.offer(f, &encoding, novel) {
            self.summary.retained += 1;
        }
    }

    fn feedback_summary(&self) -> Option<FeedbackSummary> {
        if self.retention == TzerRetention::Blind {
            return None;
        }
        let mut s = self.summary.clone();
        s.corpus = self.feedback.len() as u64;
        s.corpus_digest = self.feedback.digest();
        Some(s)
    }
}

/// A coverage timeline point for the Tzer campaign.
#[derive(Debug, Clone, Copy)]
pub struct TzerPoint {
    /// Milliseconds since start.
    pub elapsed_ms: u64,
    /// Mutants executed.
    pub iterations: usize,
    /// Branches covered (tvmsim manifest).
    pub total_branches: usize,
    /// Pass-file branches covered.
    pub pass_branches: usize,
}

/// Runs a Tzer campaign against tvmsim's low-level pipeline for the given
/// budget, returning the cumulative coverage and a timeline.
///
/// This is the *single-threaded reference loop* (kept for unit tests and
/// coverage-behaviour comparisons). Production campaigns shard Tzer
/// through the engine instead — [`crate::TzerFactory`] +
/// [`nnsmith_difftest::run_engine`] — which also routes findings through
/// triage; this loop reports coverage only.
///
/// Wall-clock discipline audit: the only wall-clock reads are the overall
/// budget check (`start.elapsed() < duration`, disabled by case-budgeted
/// callers passing a huge duration plus `max_iterations`) and the
/// `elapsed_ms` *data* field on timeline points, which deterministic
/// consumers strip. Timeline cadence is iteration-count based
/// (`iterations.is_multiple_of(64)`) and retention consults only the
/// per-case coverage delta — no decision in this loop derives from
/// elapsed time.
pub fn run_tzer_campaign<R: Rng>(
    mut tzer: Tzer<R>,
    duration: std::time::Duration,
    max_iterations: Option<usize>,
) -> (CoverageSet, Vec<TzerPoint>) {
    let compiler = tvmsim();
    let manifest = compiler.manifest().clone();
    let mut cov = CoverageSet::new();
    let mut timeline = Vec::new();
    let start = std::time::Instant::now();
    // Loading the framework covers the same baseline branches as any other
    // TVM-based fuzzer (shared with the engine path's `run_ir_case`).
    compiler.record_base_coverage(&mut cov);
    let mut iterations = 0usize;
    while start.elapsed() < duration {
        if max_iterations.is_some_and(|m| iterations >= m) {
            break;
        }
        iterations += 1;
        let mut funcs = vec![tzer.next_func()];
        // A per-case scratch set keeps the folded union identical while
        // exposing the marginal delta retention needs.
        let mut case_cov = CoverageSet::new();
        tir_simplify(&mut funcs, &mut case_cov, &manifest);
        tir_schedule(&mut funcs, &mut case_cov, &manifest);
        codegen_coverage(&funcs, &mut case_cov, &manifest);
        let new_branches = cov.merge_counting(&case_cov);
        let mut delta = BTreeMap::new();
        delta.insert("tvmsim".to_string(), new_branches);
        tzer.observe(&CaseFeedback {
            case_index: iterations,
            new_branches: delta,
            finding: false,
        });
        if iterations.is_multiple_of(64) {
            timeline.push(TzerPoint {
                elapsed_ms: start.elapsed().as_millis() as u64,
                iterations,
                total_branches: cov.len(),
                pass_branches: cov.pass_len(&manifest),
            });
        }
    }
    timeline.push(TzerPoint {
        elapsed_ms: start.elapsed().as_millis() as u64,
        iterations,
        total_branches: cov.len(),
        pass_branches: cov.pass_len(&manifest),
    });
    (cov, timeline)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::time::Duration;

    #[test]
    fn mutants_differ_from_seeds() {
        let mut tzer = Tzer::new(StdRng::seed_from_u64(0));
        let seeds = seed_funcs();
        let mut changed = 0;
        for _ in 0..20 {
            let f = tzer.next_func();
            if !seeds.iter().any(|s| s.body == f.body) {
                changed += 1;
            }
        }
        assert!(changed > 10);
    }

    #[test]
    fn campaign_covers_lowlevel_branches_only() {
        let tzer = Tzer::new(StdRng::seed_from_u64(1));
        let (cov, timeline) = run_tzer_campaign(tzer, Duration::from_millis(500), Some(500));
        assert!(cov.len() > 400, "covered {}", cov.len()); // base + tir
        assert!(!timeline.is_empty());
        // Tzer reaches pass branches (the tir files) but cannot exceed the
        // tir + base budget by much — graph passes are out of reach.
        let compiler = tvmsim();
        let pass = cov.pass_len(compiler.manifest());
        assert!(pass > 0);
        assert!(pass < 200, "tzer pass coverage {pass} too broad");
    }

    #[test]
    fn blind_retention_pins_the_historical_corpus_behavior() {
        // Pre-fix behavior, pinned: the corpus grows with probability 0.3
        // per mutant (cap 64) even when *nothing* is coverage-novel — the
        // "coverage-guided" comment was a lie. --blind-retention keeps
        // this stream available for fig8 comparisons.
        let mut tzer = Tzer::with_retention(StdRng::seed_from_u64(7), TzerRetention::Blind);
        for i in 0..200 {
            let _ = tzer.next_func();
            // Report zero novelty every time; blind mode must not care.
            tzer.observe(&CaseFeedback {
                case_index: i,
                new_branches: BTreeMap::new(),
                finding: false,
            });
        }
        assert!(
            tzer.corpus_len() > 2,
            "blind retention grows the corpus without any coverage signal \
             (got {})",
            tzer.corpus_len()
        );
        assert!(
            tzer.feedback_summary().is_none(),
            "blind mode opts out of feedback reporting"
        );
    }

    #[test]
    fn guided_retention_keeps_only_coverage_novel_mutants() {
        let mut tzer = Tzer::new(StdRng::seed_from_u64(7));
        for i in 0..200 {
            let _ = tzer.next_func();
            tzer.observe(&CaseFeedback {
                case_index: i,
                new_branches: BTreeMap::new(),
                finding: false,
            });
        }
        let s = tzer.feedback_summary().expect("guided summary");
        assert_eq!(s.retained, 0, "no novelty, no retention");
        assert_eq!(s.corpus, 2, "corpus stays at the frozen seeds");
        assert_eq!(s.seeded, 2);
        assert_eq!(s.mutated, 200);

        let _ = tzer.next_func();
        let mut novel = BTreeMap::new();
        novel.insert("tvmsim".to_string(), 3usize);
        tzer.observe(&CaseFeedback {
            case_index: 201,
            new_branches: novel,
            finding: false,
        });
        let s = tzer.feedback_summary().expect("guided summary");
        assert_eq!(s.retained, 1, "a novel mutant is kept");
        assert_eq!(s.corpus, 3);
        assert_ne!(s.corpus_digest, 0);
    }

    #[test]
    fn guided_reference_campaign_retains_through_coverage() {
        let tzer = Tzer::new(StdRng::seed_from_u64(3));
        let (cov, _) = run_tzer_campaign(tzer, Duration::from_millis(500), Some(256));
        assert!(cov.len() > 400, "covered {}", cov.len());
    }

    #[test]
    fn tzer_reaches_variable_divisor_branches() {
        // Simplifying a Div-by-variable is a branch graph lowering never
        // emits; check Tzer's campaign coverage includes tir sites beyond
        // a graph-lowered campaign's typical set by running one graph.
        let tzer = Tzer::new(StdRng::seed_from_u64(2));
        let (cov, _) = run_tzer_campaign(tzer, Duration::from_millis(300), Some(300));
        assert!(!cov.is_empty());
    }
}
