//! GraphFuzzer reimplementation (Luo et al., ICSE 2021), per §6.1.
//!
//! GraphFuzzer wires operators from a block corpus at random and restores
//! validity *syntactically*: mismatched tensor shapes are aligned by
//! **slicing** (stride 1) and **padding**, and shape-changing operators are
//! instantiated with shape-preserving attributes (e.g. `Conv2d` with
//! kernel/stride 1). Consequently its graphs are biased toward
//! slice/pad glue (the `M1` pattern of Listing 1), never contain
//! broadcasting, strided slices, reshapes or scalars, and explore almost
//! no attribute space. The paper reimplemented GraphFuzzer the same way
//! (its code is not public); this module follows that description.

use rand::seq::SliceRandom;
use rand::Rng;

use nnsmith_difftest::{TestCase, TestCaseSource};
use nnsmith_graph::{Graph, NodeKind, TensorType, ValueRef};
use nnsmith_ops::{random_bindings, BinaryKind, Op, UnaryKind};
use nnsmith_solver::{IntExpr, InternPool};
use nnsmith_tensor::DType;

/// Configuration for the GraphFuzzer generator.
#[derive(Debug, Clone)]
pub struct GraphFuzzerConfig {
    /// Operators per generated model.
    pub target_ops: usize,
    /// Tensor dtype palette (GraphFuzzer supports both float widths).
    pub dtypes: Vec<DType>,
}

impl Default for GraphFuzzerConfig {
    fn default() -> Self {
        GraphFuzzerConfig {
            target_ops: 10,
            dtypes: vec![DType::F32, DType::F64],
        }
    }
}

/// The GraphFuzzer-style generator.
#[derive(Debug)]
pub struct GraphFuzzer<R: Rng> {
    rng: R,
    config: GraphFuzzerConfig,
    /// Arena the generated tensor types intern into (the campaign pool
    /// during engine runs).
    pool: InternPool,
}

impl<R: Rng> GraphFuzzer<R> {
    /// Creates the generator with a private mini-pool (standalone use;
    /// campaigns use [`GraphFuzzer::new_in`]).
    pub fn new(rng: R, config: GraphFuzzerConfig) -> Self {
        GraphFuzzer::new_in(rng, config, &InternPool::small())
    }

    /// Creates the generator interning into `pool` — the campaign arena
    /// when sharded by [`crate::GraphFuzzerFactory::make_source_in`], so
    /// engine campaigns never allocate per-graph mini-pools.
    pub fn new_in(rng: R, config: GraphFuzzerConfig, pool: &InternPool) -> Self {
        GraphFuzzer {
            rng,
            config,
            pool: pool.clone(),
        }
    }

    fn dims_of(g: &Graph<Op>, v: ValueRef) -> Vec<usize> {
        g.value_type(v).concrete_dims().expect("concrete")
    }

    /// Aligns `v` (shape `from`) to shape `to` by slicing larger dims
    /// (stride 1) and zero-padding smaller ones — the M1-style glue.
    fn align(arena: &InternPool, g: &mut Graph<Op>, mut v: ValueRef, to: &[usize]) -> ValueRef {
        let from = Self::dims_of(g, v);
        debug_assert_eq!(from.len(), to.len());
        let dtype = g.value_type(v).dtype;
        // Slice down dims that are too large.
        if from.iter().zip(to).any(|(f, t)| f > t) {
            let starts = vec![IntExpr::Const(0); from.len()];
            let ends: Vec<IntExpr> = from
                .iter()
                .zip(to)
                .map(|(&f, &t)| IntExpr::Const(f.min(t) as i64))
                .collect();
            let steps = vec![1i64; from.len()];
            let mid: Vec<i64> = from
                .iter()
                .zip(to)
                .map(|(&f, &t)| f.min(t) as i64)
                .collect();
            let node = g.add_node(
                NodeKind::Operator(Op::Slice {
                    starts,
                    ends,
                    steps,
                }),
                vec![v],
                vec![TensorType::concrete_in(arena, dtype, &mid)],
            );
            v = ValueRef::output0(node);
        }
        // Pad up dims that are too small.
        let cur = Self::dims_of(g, v);
        if cur.iter().zip(to).any(|(c, t)| c < t) {
            let pads: Vec<(IntExpr, IntExpr)> = cur
                .iter()
                .zip(to)
                .map(|(&c, &t)| (IntExpr::Const(0), IntExpr::Const(t as i64 - c as i64)))
                .collect();
            let target: Vec<i64> = to.iter().map(|&t| t as i64).collect();
            let node = g.add_node(
                NodeKind::Operator(Op::Pad {
                    pads,
                    kind: nnsmith_ops::PadKind::Constant,
                }),
                vec![v],
                vec![TensorType::concrete_in(arena, dtype, &target)],
            );
            v = ValueRef::output0(node);
        }
        v
    }

    fn generate(&mut self) -> Graph<Op> {
        let arena = self.pool.clone();
        let t = |dtype: DType, dims: &[i64]| TensorType::concrete_in(&arena, dtype, dims);
        let mut g: Graph<Op> = Graph::new();
        let dtype = *self.config.dtypes.choose(&mut self.rng).expect("nonempty");
        // GraphFuzzer uses fixed-rank featuremap-style tensors.
        let base_shape: Vec<usize> = vec![
            1,
            *[2usize, 3, 4].choose(&mut self.rng).expect("nonempty"),
            *[8usize, 12, 16].choose(&mut self.rng).expect("nonempty"),
            *[8usize, 12, 16].choose(&mut self.rng).expect("nonempty"),
        ];
        let dims_i: Vec<i64> = base_shape.iter().map(|&d| d as i64).collect();
        let input = g.add_node(NodeKind::Input, vec![], vec![t(dtype, &dims_i)]);
        let mut pool: Vec<ValueRef> = vec![ValueRef::output0(input)];
        // A second input with different spatial dims, so cross-input binary
        // operators need the slice/pad alignment glue.
        let alt_shape: Vec<i64> = vec![
            1,
            base_shape[1] as i64,
            *[6i64, 10, 14].choose(&mut self.rng).expect("nonempty"),
            *[6i64, 10, 14].choose(&mut self.rng).expect("nonempty"),
        ];
        let input2 = g.add_node(NodeKind::Input, vec![], vec![t(dtype, &alt_shape)]);
        pool.push(ValueRef::output0(input2));

        for _ in 0..self.config.target_ops {
            let choice = self.rng.gen_range(0..6);
            let a = *pool.choose(&mut self.rng).expect("nonempty");
            match choice {
                // Shape-preserving unary (incl. the Clip that pairs with
                // ReLU for the known ortsim fusion bug).
                0 | 1 => {
                    let kind = *[
                        UnaryKind::Relu,
                        UnaryKind::Sigmoid,
                        UnaryKind::Tanh,
                        UnaryKind::Sin,
                        UnaryKind::Abs,
                        UnaryKind::LeakyRelu,
                    ]
                    .choose(&mut self.rng)
                    .expect("nonempty");
                    let t = g.value_type(a).clone();
                    let n = g.add_node(NodeKind::Operator(Op::Unary(kind)), vec![a], vec![t]);
                    pool.push(ValueRef::output0(n));
                }
                // Clip (element-wise, shape-preserving).
                2 => {
                    let t = g.value_type(a).clone();
                    let n = g.add_node(
                        NodeKind::Operator(Op::Clip { lo: -1, hi: 1 }),
                        vec![a],
                        vec![t],
                    );
                    pool.push(ValueRef::output0(n));
                }
                // Binary with slice/pad shape alignment (NO broadcasting).
                3 => {
                    let b = *pool.choose(&mut self.rng).expect("nonempty");
                    if g.value_type(b).dtype != g.value_type(a).dtype {
                        continue;
                    }
                    let to = Self::dims_of(&g, a);
                    let b = Self::align(&arena, &mut g, b, &to);
                    let kind = *[BinaryKind::Add, BinaryKind::Mul, BinaryKind::Sub]
                        .choose(&mut self.rng)
                        .expect("nonempty");
                    let t = g.value_type(a).clone();
                    let n = g.add_node(NodeKind::Operator(Op::Binary(kind)), vec![a, b], vec![t]);
                    pool.push(ValueRef::output0(n));
                }
                // Shape-preserving Conv2d instance: kernel 1, stride 1,
                // pad 0 (the attribute restriction of §6.1).
                4 => {
                    let dims = Self::dims_of(&g, a);
                    if dims.len() != 4 {
                        continue;
                    }
                    let c = dims[1];
                    let w = g.add_node(
                        NodeKind::Weight,
                        vec![],
                        vec![t(g.value_type(a).dtype, &[c as i64, c as i64, 1, 1])],
                    );
                    let bias = g.add_node(
                        NodeKind::Weight,
                        vec![],
                        vec![t(g.value_type(a).dtype, &[c as i64])],
                    );
                    let t = g.value_type(a).clone();
                    let n = g.add_node(
                        NodeKind::Operator(Op::Conv2d {
                            in_channels: IntExpr::Const(c as i64),
                            out_channels: IntExpr::Const(c as i64),
                            kh: IntExpr::Const(1),
                            kw: IntExpr::Const(1),
                            stride: IntExpr::Const(1),
                            padding: IntExpr::Const(0),
                            dilation: IntExpr::Const(1),
                        }),
                        vec![a, ValueRef::output0(w), ValueRef::output0(bias)],
                        vec![t],
                    );
                    pool.push(ValueRef::output0(n));
                }
                // Shape-preserving pooling instance: kernel/stride 1.
                _ => {
                    let dims = Self::dims_of(&g, a);
                    if dims.len() != 4 {
                        continue;
                    }
                    let t = g.value_type(a).clone();
                    let n = g.add_node(
                        NodeKind::Operator(Op::MaxPool2d {
                            kh: IntExpr::Const(1),
                            kw: IntExpr::Const(1),
                            stride: IntExpr::Const(1),
                            padding: IntExpr::Const(0),
                        }),
                        vec![a],
                        vec![t],
                    );
                    pool.push(ValueRef::output0(n));
                }
            }
        }
        g
    }
}

impl<R: Rng> TestCaseSource for GraphFuzzer<R> {
    fn name(&self) -> &str {
        "GraphFuzzer"
    }

    fn next_case(&mut self) -> Option<TestCase> {
        let graph = self.generate();
        debug_assert!(graph.validate().is_ok());
        let bindings = random_bindings(&graph, -3.0, 3.0, &mut self.rng).ok()?;
        Some(TestCase::from_bindings(graph, bindings))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generated_models_are_valid_and_runnable() {
        let mut gf = GraphFuzzer::new(StdRng::seed_from_u64(0), GraphFuzzerConfig::default());
        for _ in 0..20 {
            let case = gf.next_case().unwrap();
            assert!(case.graph.validate().is_ok());
            assert!(nnsmith_ops::execute(&case.graph, &case.all_bindings()).is_ok());
        }
    }

    #[test]
    fn slices_always_have_stride_one() {
        // The property that makes GraphFuzzer miss the TVM layout bug
        // (§5.4): its alignment slices never use a stride > 1.
        let mut gf = GraphFuzzer::new(StdRng::seed_from_u64(1), GraphFuzzerConfig::default());
        let mut saw_slice = false;
        for _ in 0..50 {
            let case = gf.next_case().unwrap();
            for id in case.graph.operators() {
                if let Some(Op::Slice { steps, .. }) = case.graph.node(id).kind.as_operator() {
                    saw_slice = true;
                    assert!(steps.iter().all(|&s| s == 1));
                }
            }
        }
        assert!(saw_slice, "alignment should have produced slices");
    }

    #[test]
    fn convs_are_shape_preserving_instances() {
        let mut gf = GraphFuzzer::new(StdRng::seed_from_u64(2), GraphFuzzerConfig::default());
        for _ in 0..30 {
            let case = gf.next_case().unwrap();
            for id in case.graph.operators() {
                if let Some(Op::Conv2d { kh, kw, stride, .. }) =
                    case.graph.node(id).kind.as_operator()
                {
                    assert_eq!(kh.as_const(), Some(1));
                    assert_eq!(kw.as_const(), Some(1));
                    assert_eq!(stride.as_const(), Some(1));
                }
            }
        }
    }

    #[test]
    fn no_broadcasting_or_scalars() {
        let mut gf = GraphFuzzer::new(StdRng::seed_from_u64(3), GraphFuzzerConfig::default());
        for _ in 0..30 {
            let case = gf.next_case().unwrap();
            for id in case.graph.operators() {
                let node = case.graph.node(id);
                // Binary inputs always share a shape (aligned, not
                // broadcast).
                if matches!(node.kind.as_operator(), Some(Op::Binary(_))) {
                    let a = case.graph.value_type(node.inputs[0]);
                    let b = case.graph.value_type(node.inputs[1]);
                    assert_eq!(a.concrete_shape(), b.concrete_shape());
                }
                for v in &node.inputs {
                    assert!(case.graph.value_type(*v).rank() > 0, "no scalars");
                }
            }
        }
    }
}
