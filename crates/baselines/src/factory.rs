//! [`SourceFactory`] implementations for the baseline fuzzers, so the
//! parallel engine ([`nnsmith_difftest::run_engine`]) can shard LEMON and
//! GraphFuzzer campaigns exactly like NNSmith ones.

use rand::rngs::StdRng;
use rand::SeedableRng;

use nnsmith_difftest::{ShardCtx, SourceFactory, TestCaseSource};

use crate::graphfuzzer::{GraphFuzzer, GraphFuzzerConfig};
use crate::lemon::Lemon;

/// Shards LEMON campaigns: each shard mutates the seed-model zoo with its
/// own RNG stream.
#[derive(Debug, Clone, Copy, Default)]
pub struct LemonFactory;

impl SourceFactory for LemonFactory {
    fn name(&self) -> &str {
        "LEMON"
    }

    fn make_source(&self, shard: ShardCtx) -> Box<dyn TestCaseSource + Send> {
        Box::new(Lemon::new(StdRng::seed_from_u64(shard.seed)))
    }
}

/// Shards GraphFuzzer campaigns with a shared configuration.
#[derive(Debug, Clone, Default)]
pub struct GraphFuzzerFactory {
    /// Configuration applied to every shard's fuzzer.
    pub config: GraphFuzzerConfig,
}

impl SourceFactory for GraphFuzzerFactory {
    fn name(&self) -> &str {
        "GraphFuzzer"
    }

    fn make_source(&self, shard: ShardCtx) -> Box<dyn TestCaseSource + Send> {
        Box::new(GraphFuzzer::new(
            StdRng::seed_from_u64(shard.seed),
            self.config.clone(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factories_build_named_sources() {
        let ctx = ShardCtx {
            index: 0,
            count: 2,
            seed: 9,
        };
        assert_eq!(LemonFactory.make_source(ctx).name(), "LEMON");
        assert_eq!(
            GraphFuzzerFactory::default().make_source(ctx).name(),
            "GraphFuzzer"
        );
    }

    #[test]
    fn shard_sources_differ_by_seed() {
        let f = GraphFuzzerFactory::default();
        let mut a = f.make_source(ShardCtx {
            index: 0,
            count: 2,
            seed: nnsmith_difftest::shard_seed(1, 0),
        });
        let mut b = f.make_source(ShardCtx {
            index: 1,
            count: 2,
            seed: nnsmith_difftest::shard_seed(1, 1),
        });
        let ca = a.next_case().expect("case");
        let cb = b.next_case().expect("case");
        assert_ne!(ca.graph, cb.graph, "shard streams must be independent");
    }
}
