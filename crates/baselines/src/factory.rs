//! [`SourceFactory`] implementations for the baseline fuzzers, so the
//! parallel engine ([`nnsmith_difftest::run_engine`]) can shard LEMON,
//! GraphFuzzer and Tzer campaigns exactly like NNSmith ones.
//!
//! The graph-level factories override
//! [`SourceFactory::make_source_in`] (mirroring `NnSmithFactory`) so every
//! shard interns its tensor types into the campaign pool instead of a
//! per-graph private mini-pool; Tzer mutates low-level IR and interns
//! nothing.

use rand::rngs::StdRng;
use rand::SeedableRng;

use nnsmith_compilers::BackendSet;
use nnsmith_difftest::{ShardCtx, SourceFactory, TestCaseSource};
use nnsmith_solver::InternPool;

use crate::graphfuzzer::{GraphFuzzer, GraphFuzzerConfig};
use crate::lemon::Lemon;
use crate::tzer::{Tzer, TzerRetention};

/// Shards LEMON campaigns: each shard mutates the seed-model zoo with its
/// own RNG stream.
///
/// LEMON's seed zoo is f32-only, which every simulated backend supports,
/// so a cross-backend set needs no restriction: [`LemonFactory`] is
/// already legal on any [`BackendSet`].
///
/// LEMON is *deliberately blind*: it never overrides the no-op
/// [`TestCaseSource::observe`] default, because the published baseline has
/// no coverage feedback — keeping it blind preserves the comparison the
/// figures make against the guided loop.
#[derive(Debug, Clone, Copy, Default)]
pub struct LemonFactory;

impl SourceFactory for LemonFactory {
    fn name(&self) -> &str {
        "LEMON"
    }

    fn make_source(&self, shard: ShardCtx) -> Box<dyn TestCaseSource + Send> {
        Box::new(Lemon::new(StdRng::seed_from_u64(shard.seed)))
    }

    fn make_source_in(&self, pool: &InternPool, shard: ShardCtx) -> Box<dyn TestCaseSource + Send> {
        Box::new(Lemon::new_in(StdRng::seed_from_u64(shard.seed), pool))
    }
}

/// Shards GraphFuzzer campaigns with a shared configuration.
///
/// Like LEMON, GraphFuzzer stays *deliberately blind* to coverage — the
/// baseline it reimplements has no feedback loop, so it keeps the default
/// no-op [`TestCaseSource::observe`].
#[derive(Debug, Clone, Default)]
pub struct GraphFuzzerFactory {
    /// Configuration applied to every shard's fuzzer.
    pub config: GraphFuzzerConfig,
}

impl GraphFuzzerFactory {
    /// A factory whose shards draw only dtypes every backend of the set
    /// supports (GraphFuzzer's palette intersected with the set's
    /// support matrix), so a cross-backend campaign never generates a
    /// case some backend must reject.
    pub fn for_backends(mut config: GraphFuzzerConfig, backends: &BackendSet) -> Self {
        let supported = backends.supported_dtypes();
        config.dtypes.retain(|d| supported.contains(d));
        assert!(
            !config.dtypes.is_empty(),
            "backend set supports none of GraphFuzzer's dtypes"
        );
        GraphFuzzerFactory { config }
    }
}

impl SourceFactory for GraphFuzzerFactory {
    fn name(&self) -> &str {
        "GraphFuzzer"
    }

    fn make_source(&self, shard: ShardCtx) -> Box<dyn TestCaseSource + Send> {
        Box::new(GraphFuzzer::new(
            StdRng::seed_from_u64(shard.seed),
            self.config.clone(),
        ))
    }

    fn make_source_in(&self, pool: &InternPool, shard: ShardCtx) -> Box<dyn TestCaseSource + Send> {
        Box::new(GraphFuzzer::new_in(
            StdRng::seed_from_u64(shard.seed),
            self.config.clone(),
            pool,
        ))
    }
}

/// Shards Tzer campaigns: each shard runs an independent IR mutator from
/// its own RNG stream, emitting IR-payload cases the engine drives through
/// the TIR pipeline. Nothing is interned, so the default `make_source_in`
/// (which ignores the pool) is already correct. IR cases carry no tensor
/// dtypes, so backend sets need no restriction either — backends without
/// a low-level pipeline simply answer `NotImplemented` per case.
///
/// Unlike LEMON and GraphFuzzer, Tzer *is* a coverage-guided fuzzer, so
/// its shards default to [`TzerRetention::CoverageGuided`]; `retention`
/// selects [`TzerRetention::Blind`] for historical comparisons.
#[derive(Debug, Clone, Copy, Default)]
pub struct TzerFactory {
    /// Retention policy applied to every shard's fuzzer.
    pub retention: TzerRetention,
}

impl TzerFactory {
    /// A factory whose shards keep the pre-fix blind retention stream.
    pub fn blind() -> Self {
        TzerFactory {
            retention: TzerRetention::Blind,
        }
    }
}

impl SourceFactory for TzerFactory {
    fn name(&self) -> &str {
        "Tzer"
    }

    fn make_source(&self, shard: ShardCtx) -> Box<dyn TestCaseSource + Send> {
        Box::new(Tzer::with_retention(
            StdRng::seed_from_u64(shard.seed),
            self.retention,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factories_build_named_sources() {
        let ctx = ShardCtx {
            index: 0,
            count: 2,
            seed: 9,
        };
        assert_eq!(LemonFactory.make_source(ctx).name(), "LEMON");
        assert_eq!(
            GraphFuzzerFactory::default().make_source(ctx).name(),
            "GraphFuzzer"
        );
        assert_eq!(TzerFactory::default().make_source(ctx).name(), "Tzer");
    }

    #[test]
    fn shard_sources_differ_by_seed() {
        let f = GraphFuzzerFactory::default();
        let mut a = f.make_source(ShardCtx {
            index: 0,
            count: 2,
            seed: nnsmith_difftest::shard_seed(1, 0),
        });
        let mut b = f.make_source(ShardCtx {
            index: 1,
            count: 2,
            seed: nnsmith_difftest::shard_seed(1, 1),
        });
        let ca = a.next_case().expect("case");
        let cb = b.next_case().expect("case");
        assert_ne!(ca.graph, cb.graph, "shard streams must be independent");
    }

    #[test]
    fn pooled_sources_home_types_in_the_campaign_pool() {
        let pool = InternPool::default();
        let ctx = |index| ShardCtx {
            index,
            count: 2,
            seed: nnsmith_difftest::shard_seed(5, index),
        };
        for factory in [
            &LemonFactory as &dyn SourceFactory,
            &GraphFuzzerFactory::default(),
        ] {
            let mut src = factory.make_source_in(&pool, ctx(0));
            let case = src.next_case().expect("case");
            for v in case.graph.all_values() {
                assert!(
                    case.graph.value_type(v).pool().same_pool(&pool),
                    "{}: type homed in a private mini-pool",
                    factory.name()
                );
            }
        }
        // Zoo dims are canonical small constants, so they may resolve
        // entirely in the shared base segment without growing the private
        // node count — the per-pool base counters still prove the sources
        // interned through the campaign pool and not a mini-pool.
        let stats = pool.stats();
        assert!(
            stats.int_nodes + stats.base_hits + stats.base_misses > 0,
            "campaign pool saw no intern traffic"
        );
    }

    #[test]
    fn tzer_sources_emit_ir_cases() {
        let mut src = TzerFactory::default().make_source(ShardCtx {
            index: 0,
            count: 1,
            seed: 3,
        });
        let case = src.next_case().expect("case");
        assert!(case.is_ir());
        assert_eq!(case.graph.len(), 0);
    }
}
