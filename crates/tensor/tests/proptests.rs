//! Property-based tests of the tensor runtime's algebraic invariants.

use proptest::prelude::*;

use nnsmith_tensor::{
    broadcast_shapes, Conv2dParams, DType, PadMode, Pool2dParams, ReduceKind, Tensor,
};

fn small_shape() -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(1usize..5, 1..4)
}

fn tensor_for(shape: Vec<usize>) -> impl Strategy<Value = Tensor> {
    let n: usize = shape.iter().product();
    proptest::collection::vec(-50.0f64..50.0, n..=n)
        .prop_map(move |data| Tensor::from_f64(&shape, data).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// a + b == b + a elementwise.
    #[test]
    fn add_commutative(shape in small_shape(), seed in 0u64..1000) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = Tensor::uniform(&shape, DType::F64, -10.0, 10.0, &mut rng);
        let b = Tensor::uniform(&shape, DType::F64, -10.0, 10.0, &mut rng);
        prop_assert_eq!(a.add(&b).unwrap(), b.add(&a).unwrap());
    }

    /// (a - b) + b ≈ a for f64 within rounding.
    #[test]
    fn sub_add_inverse(t in small_shape().prop_flat_map(tensor_for)) {
        let b = Tensor::full(t.shape(), DType::F64, 3.25);
        let roundtrip = t.sub(&b).unwrap().add(&b).unwrap();
        prop_assert!(t.max_abs_diff(&roundtrip).unwrap() < 1e-9);
    }

    /// Transpose twice with the same 2-perm is identity.
    #[test]
    fn transpose_involution(t in small_shape().prop_flat_map(tensor_for)) {
        if t.rank() == 2 {
            let tt = t.transpose(&[1, 0]).unwrap().transpose(&[1, 0]).unwrap();
            prop_assert_eq!(tt, t);
        }
    }

    /// Reshape preserves element order.
    #[test]
    fn reshape_preserves_values(t in small_shape().prop_flat_map(tensor_for)) {
        let n = t.numel();
        let flat = t.reshaped(&[n]).unwrap();
        prop_assert_eq!(flat.to_f64_vec(), t.to_f64_vec());
    }

    /// Broadcasting add against a scalar equals elementwise shift.
    #[test]
    fn scalar_broadcast_is_uniform_shift(t in small_shape().prop_flat_map(tensor_for)) {
        let s = Tensor::scalar(DType::F64, 2.5);
        let shifted = t.add(&s).unwrap();
        for i in 0..t.numel() {
            prop_assert!((shifted.lin_f64(i) - t.lin_f64(i) - 2.5).abs() < 1e-12);
        }
    }

    /// broadcast_to then sum_to returns (count × original).
    #[test]
    fn broadcast_sum_adjoint(t in small_shape().prop_flat_map(tensor_for), lead in 1usize..4) {
        let mut target = vec![lead];
        target.extend_from_slice(t.shape());
        let big = t.broadcast_to(&target).unwrap();
        let back = big.sum_to(t.shape()).unwrap();
        for i in 0..t.numel() {
            prop_assert!((back.lin_f64(i) - lead as f64 * t.lin_f64(i)).abs() < 1e-9);
        }
    }

    /// ReduceSum over all axes equals the sum of elements.
    #[test]
    fn reduce_sum_total(t in small_shape().prop_flat_map(tensor_for)) {
        let s = t.reduce(ReduceKind::Sum, &[], false).unwrap();
        let manual: f64 = t.to_f64_vec().iter().sum();
        prop_assert!((s.lin_f64(0) - manual).abs() < 1e-6 * (1.0 + manual.abs()));
    }

    /// Max reduction bounds every element; min likewise.
    #[test]
    fn reduce_extremes_bound(t in small_shape().prop_flat_map(tensor_for)) {
        let mx = t.reduce(ReduceKind::Max, &[], false).unwrap().lin_f64(0);
        let mn = t.reduce(ReduceKind::Min, &[], false).unwrap().lin_f64(0);
        for v in t.to_f64_vec() {
            prop_assert!(v <= mx && v >= mn);
        }
    }

    /// Slice then slice_scatter reconstructs the sliced region exactly and
    /// zeros elsewhere.
    #[test]
    fn slice_scatter_adjoint(seed in 0u64..500) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let dim = rng.gen_range(2usize..8);
        let t = Tensor::uniform(&[dim], DType::F64, -5.0, 5.0, &mut rng);
        let start = rng.gen_range(0..dim - 1);
        let end = rng.gen_range(start + 1..=dim);
        let step = rng.gen_range(1usize..=2);
        let sl = t.slice(&[start], &[end], &[step]).unwrap();
        let back = sl.slice_scatter(&[dim], &[start], &[end], &[step]).unwrap();
        let sl2 = back.slice(&[start], &[end], &[step]).unwrap();
        prop_assert_eq!(sl2, sl);
    }

    /// Constant pad then inverse crop is the identity.
    #[test]
    fn pad_crop_inverse(t in small_shape().prop_flat_map(tensor_for), b in 0i64..3, a in 0i64..3) {
        let pads: Vec<(i64, i64)> = t.shape().iter().map(|_| (b, a)).collect();
        let padded = t.pad(&pads, PadMode::Constant(0.0)).unwrap();
        let inverse: Vec<(i64, i64)> = pads.iter().map(|(x, y)| (-x, -y)).collect();
        let cropped = padded.pad(&inverse, PadMode::Constant(0.0)).unwrap();
        prop_assert_eq!(cropped, t);
    }

    /// Softmax outputs are a probability distribution along the axis.
    #[test]
    fn softmax_is_distribution(seed in 0u64..500) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let rows = rng.gen_range(1usize..4);
        let cols = rng.gen_range(1usize..6);
        let t = Tensor::uniform(&[rows, cols], DType::F64, -30.0, 30.0, &mut rng);
        let s = t.softmax(1).unwrap();
        prop_assert!(!s.has_non_finite());
        let sums = s.reduce(ReduceKind::Sum, &[1], false).unwrap();
        for r in 0..rows {
            prop_assert!((sums.lin_f64(r) - 1.0).abs() < 1e-9);
        }
        for v in s.to_f64_vec() {
            prop_assert!((0.0..=1.0).contains(&v));
        }
    }

    /// Conv2d output shape always matches the closed-form formula.
    #[test]
    fn conv_shape_formula(
        h in 3usize..10, w in 3usize..10,
        kh in 1usize..4, kw in 1usize..4,
        stride in 1usize..3, pad in 0usize..2,
    ) {
        let x = Tensor::ones(&[1, 1, h, w], DType::F32);
        let k = Tensor::ones(&[1, 1, kh, kw], DType::F32);
        let params = Conv2dParams {
            stride: (stride, stride),
            padding: (pad, pad),
            ..Conv2dParams::default()
        };
        match x.conv2d(&k, None, &params) {
            Ok(out) => {
                let oh = (h + 2 * pad - kh) / stride + 1;
                let ow = (w + 2 * pad - kw) / stride + 1;
                prop_assert_eq!(out.shape(), &[1, 1, oh, ow]);
            }
            Err(_) => {
                prop_assert!(kh > h + 2 * pad || kw > w + 2 * pad);
            }
        }
    }

    /// Max pooling dominates average pooling elementwise.
    #[test]
    fn maxpool_dominates_avgpool(seed in 0u64..300) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let x = Tensor::uniform(&[1, 2, 6, 6], DType::F64, 0.0, 10.0, &mut rng);
        let p = Pool2dParams { kernel: (2, 2), stride: (2, 2), padding: (0, 0) };
        let mx = x.max_pool2d(&p).unwrap();
        let av = x.avg_pool2d(&p).unwrap();
        for i in 0..mx.numel() {
            prop_assert!(mx.lin_f64(i) >= av.lin_f64(i) - 1e-12);
        }
    }

    /// MatMul distributes over addition: A(B + C) == AB + AC (f64 tolerance).
    #[test]
    fn matmul_distributes(seed in 0u64..300) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = Tensor::uniform(&[3, 4], DType::F64, -2.0, 2.0, &mut rng);
        let b = Tensor::uniform(&[4, 2], DType::F64, -2.0, 2.0, &mut rng);
        let c = Tensor::uniform(&[4, 2], DType::F64, -2.0, 2.0, &mut rng);
        let lhs = a.matmul(&b.add(&c).unwrap()).unwrap();
        let rhs = a.matmul(&b).unwrap().add(&a.matmul(&c).unwrap()).unwrap();
        prop_assert!(lhs.max_abs_diff(&rhs).unwrap() < 1e-9);
    }

    /// broadcast_shapes agrees with materialized broadcast_to.
    #[test]
    fn broadcast_shapes_consistent(
        a in proptest::collection::vec(1usize..4, 1..4),
        b in proptest::collection::vec(1usize..4, 1..4),
    ) {
        if let Ok(out) = broadcast_shapes(&a, &b) {
            let ta = Tensor::ones(&a, DType::F32);
            let tb = Tensor::ones(&b, DType::F32);
            let summed = ta.add(&tb).unwrap();
            prop_assert_eq!(summed.shape(), out.as_slice());
        }
    }
}
