//! 2-D convolution (NCHW) forward and backward kernels.

use crate::error::{Result, TensorError};
use crate::shape::strides_of;
use crate::tensor::Tensor;

/// Convolution hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Conv2dParams {
    /// Stride `(sh, sw)`.
    pub stride: (usize, usize),
    /// Zero padding `(ph, pw)` applied to both sides.
    pub padding: (usize, usize),
    /// Dilation `(dh, dw)`.
    pub dilation: (usize, usize),
    /// Number of groups (`c_in` and `c_out` must be divisible by it).
    pub groups: usize,
}

impl Default for Conv2dParams {
    fn default() -> Self {
        Conv2dParams {
            stride: (1, 1),
            padding: (0, 0),
            dilation: (1, 1),
            groups: 1,
        }
    }
}

impl Conv2dParams {
    /// Output spatial size for an input of `(h, w)` with kernel `(kh, kw)`.
    ///
    /// Returns `None` when the kernel does not fit.
    pub fn out_hw(&self, h: usize, w: usize, kh: usize, kw: usize) -> Option<(usize, usize)> {
        let eff_kh = self.dilation.0 * (kh - 1) + 1;
        let eff_kw = self.dilation.1 * (kw - 1) + 1;
        let ph = h + 2 * self.padding.0;
        let pw = w + 2 * self.padding.1;
        if eff_kh > ph || eff_kw > pw {
            return None;
        }
        Some((
            (ph - eff_kh) / self.stride.0 + 1,
            (pw - eff_kw) / self.stride.1 + 1,
        ))
    }
}

fn check_conv_args(
    input: &Tensor,
    weight: &Tensor,
    params: &Conv2dParams,
) -> Result<(
    usize,
    usize,
    usize,
    usize,
    usize,
    usize,
    usize,
    usize,
    usize,
)> {
    if !input.dtype().is_float() || input.dtype() != weight.dtype() {
        return Err(TensorError::dtype("conv2d requires matching float dtypes"));
    }
    if input.rank() != 4 || weight.rank() != 4 {
        return Err(TensorError::shape(
            "conv2d requires NCHW input and OIHW weight",
        ));
    }
    let (n, c_in, h, w) = (
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    );
    let (c_out, c_in_g, kh, kw) = (
        weight.shape()[0],
        weight.shape()[1],
        weight.shape()[2],
        weight.shape()[3],
    );
    let g = params.groups;
    if g == 0 || c_in % g != 0 || c_out % g != 0 || c_in_g != c_in / g {
        return Err(TensorError::shape(format!(
            "conv2d group mismatch: c_in={c_in} c_out={c_out} groups={g} weight_cin={c_in_g}"
        )));
    }
    if params.stride.0 == 0
        || params.stride.1 == 0
        || params.dilation.0 == 0
        || params.dilation.1 == 0
    {
        return Err(TensorError::shape("conv2d stride/dilation must be >= 1"));
    }
    let (oh, ow) = params
        .out_hw(h, w, kh, kw)
        .ok_or_else(|| TensorError::shape("conv2d kernel larger than padded input"))?;
    Ok((n, c_in, h, w, c_out, kh, kw, oh, ow))
}

impl Tensor {
    /// 2-D convolution over an NCHW input with an OIHW weight and an
    /// optional per-output-channel bias.
    ///
    /// # Errors
    ///
    /// Fails on non-float or mismatched dtypes, wrong ranks, incompatible
    /// group configuration, or a kernel that does not fit the padded input.
    pub fn conv2d(
        &self,
        weight: &Tensor,
        bias: Option<&Tensor>,
        params: &Conv2dParams,
    ) -> Result<Tensor> {
        let (n, c_in, h, w, c_out, kh, kw, oh, ow) = check_conv_args(self, weight, params)?;
        if let Some(b) = bias {
            if b.rank() != 1 || b.shape()[0] != c_out {
                return Err(TensorError::shape("conv2d bias must be rank-1 of c_out"));
            }
        }
        let g = params.groups;
        let cin_g = c_in / g;
        let cout_g = c_out / g;
        let istr = strides_of(self.shape());
        let wstr = strides_of(weight.shape());
        let out_shape = [n, c_out, oh, ow];
        let mut out = Tensor::zeros(&out_shape, self.dtype());
        let mut lin = 0usize;
        for ni in 0..n {
            for co in 0..c_out {
                let grp = co / cout_g;
                let bias_v = bias.map(|b| b.lin_f64(co)).unwrap_or(0.0);
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = 0.0f64;
                        for ci in 0..cin_g {
                            let ic = grp * cin_g + ci;
                            for ky in 0..kh {
                                let iy = (oy * params.stride.0 + ky * params.dilation.0) as i64
                                    - params.padding.0 as i64;
                                if iy < 0 || iy >= h as i64 {
                                    continue;
                                }
                                for kx in 0..kw {
                                    let ix = (ox * params.stride.1 + kx * params.dilation.1) as i64
                                        - params.padding.1 as i64;
                                    if ix < 0 || ix >= w as i64 {
                                        continue;
                                    }
                                    let iv = self.lin_f64(
                                        ni * istr[0]
                                            + ic * istr[1]
                                            + iy as usize * istr[2]
                                            + ix as usize * istr[3],
                                    );
                                    let wv = weight.lin_f64(
                                        co * wstr[0] + ci * wstr[1] + ky * wstr[2] + kx * wstr[3],
                                    );
                                    acc += iv * wv;
                                }
                            }
                        }
                        out.set_lin_f64(lin, acc + bias_v);
                        lin += 1;
                    }
                }
            }
        }
        Ok(out)
    }

    /// Gradient of `conv2d` with respect to its input: given `grad_out` of
    /// shape `[n, c_out, oh, ow]`, returns a tensor of this input's shape.
    ///
    /// # Errors
    ///
    /// Fails under the same conditions as [`Tensor::conv2d`] or when
    /// `grad_out` has the wrong shape.
    pub fn conv2d_grad_input(
        &self,
        weight: &Tensor,
        grad_out: &Tensor,
        params: &Conv2dParams,
    ) -> Result<Tensor> {
        let (n, c_in, h, w, c_out, kh, kw, oh, ow) = check_conv_args(self, weight, params)?;
        if grad_out.shape() != [n, c_out, oh, ow] {
            return Err(TensorError::shape("conv2d_grad_input: bad grad_out shape"));
        }
        let g = params.groups;
        let cin_g = c_in / g;
        let cout_g = c_out / g;
        let istr = strides_of(self.shape());
        let wstr = strides_of(weight.shape());
        let gstr = strides_of(grad_out.shape());
        let mut grad_in = Tensor::zeros(self.shape(), self.dtype());
        for ni in 0..n {
            for co in 0..c_out {
                let grp = co / cout_g;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let go = grad_out.lin_f64(ni * gstr[0] + co * gstr[1] + oy * gstr[2] + ox);
                        if go == 0.0 {
                            continue;
                        }
                        for ci in 0..cin_g {
                            let ic = grp * cin_g + ci;
                            for ky in 0..kh {
                                let iy = (oy * params.stride.0 + ky * params.dilation.0) as i64
                                    - params.padding.0 as i64;
                                if iy < 0 || iy >= h as i64 {
                                    continue;
                                }
                                for kx in 0..kw {
                                    let ix = (ox * params.stride.1 + kx * params.dilation.1) as i64
                                        - params.padding.1 as i64;
                                    if ix < 0 || ix >= w as i64 {
                                        continue;
                                    }
                                    let off = ni * istr[0]
                                        + ic * istr[1]
                                        + iy as usize * istr[2]
                                        + ix as usize * istr[3];
                                    let wv = weight.lin_f64(
                                        co * wstr[0] + ci * wstr[1] + ky * wstr[2] + kx * wstr[3],
                                    );
                                    grad_in.set_lin_f64(off, grad_in.lin_f64(off) + go * wv);
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok(grad_in)
    }

    /// Gradient of `conv2d` with respect to the weight.
    ///
    /// # Errors
    ///
    /// Fails under the same conditions as [`Tensor::conv2d`] or when
    /// `grad_out` has the wrong shape.
    pub fn conv2d_grad_weight(
        &self,
        weight: &Tensor,
        grad_out: &Tensor,
        params: &Conv2dParams,
    ) -> Result<Tensor> {
        let (n, c_in, h, w, c_out, kh, kw, oh, ow) = check_conv_args(self, weight, params)?;
        if grad_out.shape() != [n, c_out, oh, ow] {
            return Err(TensorError::shape("conv2d_grad_weight: bad grad_out shape"));
        }
        let g = params.groups;
        let cin_g = c_in / g;
        let cout_g = c_out / g;
        let istr = strides_of(self.shape());
        let wstr = strides_of(weight.shape());
        let gstr = strides_of(grad_out.shape());
        let mut grad_w = Tensor::zeros(weight.shape(), weight.dtype());
        for ni in 0..n {
            for co in 0..c_out {
                let grp = co / cout_g;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let go = grad_out.lin_f64(ni * gstr[0] + co * gstr[1] + oy * gstr[2] + ox);
                        if go == 0.0 {
                            continue;
                        }
                        for ci in 0..cin_g {
                            let ic = grp * cin_g + ci;
                            for ky in 0..kh {
                                let iy = (oy * params.stride.0 + ky * params.dilation.0) as i64
                                    - params.padding.0 as i64;
                                if iy < 0 || iy >= h as i64 {
                                    continue;
                                }
                                for kx in 0..kw {
                                    let ix = (ox * params.stride.1 + kx * params.dilation.1) as i64
                                        - params.padding.1 as i64;
                                    if ix < 0 || ix >= w as i64 {
                                        continue;
                                    }
                                    let iv = self.lin_f64(
                                        ni * istr[0]
                                            + ic * istr[1]
                                            + iy as usize * istr[2]
                                            + ix as usize * istr[3],
                                    );
                                    let woff =
                                        co * wstr[0] + ci * wstr[1] + ky * wstr[2] + kx * wstr[3];
                                    grad_w.set_lin_f64(woff, grad_w.lin_f64(woff) + go * iv);
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok(grad_w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtype::DType;

    fn iota(shape: &[usize]) -> Tensor {
        let n: usize = shape.iter().product();
        Tensor::from_f32(shape, (0..n).map(|i| i as f32).collect()).unwrap()
    }

    #[test]
    fn identity_kernel() {
        let x = iota(&[1, 1, 3, 3]);
        let w = Tensor::from_f32(&[1, 1, 1, 1], vec![1.0]).unwrap();
        let y = x.conv2d(&w, None, &Conv2dParams::default()).unwrap();
        assert_eq!(y.shape(), &[1, 1, 3, 3]);
        assert!(x.max_abs_diff(&y).unwrap() < 1e-6);
    }

    #[test]
    fn box_filter() {
        let x = Tensor::ones(&[1, 1, 3, 3], DType::F32);
        let w = Tensor::ones(&[1, 1, 2, 2], DType::F32);
        let y = x.conv2d(&w, None, &Conv2dParams::default()).unwrap();
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert!(y.as_f32().unwrap().iter().all(|&v| v == 4.0));
    }

    #[test]
    fn stride_and_padding() {
        let x = Tensor::ones(&[1, 1, 4, 4], DType::F32);
        let w = Tensor::ones(&[1, 1, 3, 3], DType::F32);
        let p = Conv2dParams {
            stride: (2, 2),
            padding: (1, 1),
            ..Conv2dParams::default()
        };
        let y = x.conv2d(&w, None, &p).unwrap();
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        // Top-left window covers 2x2 of ones (padded corner).
        assert_eq!(y.at(&[0, 0, 0, 0]), 4.0);
    }

    #[test]
    fn bias_added() {
        let x = Tensor::zeros(&[1, 2, 2, 2], DType::F32);
        let w = Tensor::zeros(&[2, 2, 1, 1], DType::F32);
        let b = Tensor::from_f32(&[2], vec![1.5, -2.0]).unwrap();
        let y = x.conv2d(&w, Some(&b), &Conv2dParams::default()).unwrap();
        assert_eq!(y.at(&[0, 0, 0, 0]), 1.5);
        assert_eq!(y.at(&[0, 1, 1, 1]), -2.0);
    }

    #[test]
    fn grouped_conv() {
        // groups=2: each output channel sees only its half of the input.
        let x = Tensor::from_f32(&[1, 2, 1, 1], vec![3.0, 5.0]).unwrap();
        let w = Tensor::ones(&[2, 1, 1, 1], DType::F32);
        let p = Conv2dParams {
            groups: 2,
            ..Conv2dParams::default()
        };
        let y = x.conv2d(&w, None, &p).unwrap();
        assert_eq!(y.as_f32().unwrap(), &[3.0, 5.0]);
    }

    #[test]
    fn kernel_too_big_rejected() {
        let x = Tensor::ones(&[1, 1, 2, 2], DType::F32);
        let w = Tensor::ones(&[1, 1, 3, 3], DType::F32);
        assert!(x.conv2d(&w, None, &Conv2dParams::default()).is_err());
    }

    #[test]
    fn dilation() {
        let x = iota(&[1, 1, 3, 3]);
        let w = Tensor::ones(&[1, 1, 2, 2], DType::F32);
        let p = Conv2dParams {
            dilation: (2, 2),
            ..Conv2dParams::default()
        };
        let y = x.conv2d(&w, None, &p).unwrap();
        assert_eq!(y.shape(), &[1, 1, 1, 1]);
        // Samples corners 0, 2, 6, 8.
        assert_eq!(y.at(&[0, 0, 0, 0]), 0.0 + 2.0 + 6.0 + 8.0);
    }

    #[test]
    fn grad_input_numeric_check() {
        // Finite-difference check on a tiny conv.
        let x = Tensor::from_f64(&[1, 1, 3, 3], (0..9).map(|i| i as f64 * 0.1).collect()).unwrap();
        let w = Tensor::from_f64(&[1, 1, 2, 2], vec![0.5, -0.25, 0.75, 1.0]).unwrap();
        let p = Conv2dParams::default();
        let ones = Tensor::ones(&[1, 1, 2, 2], DType::F64);
        let gin = x.conv2d_grad_input(&w, &ones, &p).unwrap();
        let eps = 1e-5;
        for i in 0..x.numel() {
            let mut xp = x.clone();
            xp.set_lin_f64(i, x.lin_f64(i) + eps);
            let mut xm = x.clone();
            xm.set_lin_f64(i, x.lin_f64(i) - eps);
            let f = |t: &Tensor| -> f64 {
                t.conv2d(&w, None, &p)
                    .unwrap()
                    .to_f64_vec()
                    .iter()
                    .sum::<f64>()
            };
            let num = (f(&xp) - f(&xm)) / (2.0 * eps);
            assert!(
                (num - gin.lin_f64(i)).abs() < 1e-4,
                "grad mismatch at {i}: {num} vs {}",
                gin.lin_f64(i)
            );
        }
    }

    #[test]
    fn grad_weight_numeric_check() {
        let x = Tensor::from_f64(&[1, 1, 3, 3], (0..9).map(|i| i as f64 * 0.2).collect()).unwrap();
        let w = Tensor::from_f64(&[1, 1, 2, 2], vec![0.5, -0.25, 0.75, 1.0]).unwrap();
        let p = Conv2dParams::default();
        let ones = Tensor::ones(&[1, 1, 2, 2], DType::F64);
        let gw = x.conv2d_grad_weight(&w, &ones, &p).unwrap();
        let eps = 1e-5;
        for i in 0..w.numel() {
            let mut wp = w.clone();
            wp.set_lin_f64(i, w.lin_f64(i) + eps);
            let mut wm = w.clone();
            wm.set_lin_f64(i, w.lin_f64(i) - eps);
            let f = |wt: &Tensor| -> f64 {
                x.conv2d(wt, None, &p)
                    .unwrap()
                    .to_f64_vec()
                    .iter()
                    .sum::<f64>()
            };
            let num = (f(&wp) - f(&wm)) / (2.0 * eps);
            assert!((num - gw.lin_f64(i)).abs() < 1e-4);
        }
    }
}
