//! Data-movement kernels: transpose, slice, pad, concat, broadcast,
//! squeeze/unsqueeze and nearest-neighbour resize.

use crate::error::{Result, TensorError};
use crate::shape::{broadcast_strides, dot_index, strides_of, IndexIter};
use crate::tensor::Tensor;

/// Padding modes for [`Tensor::pad`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PadMode {
    /// Pad with a constant value.
    Constant(f64),
    /// Mirror the tensor without repeating the edge element.
    Reflect,
    /// Repeat the edge element.
    Replicate,
}

impl Tensor {
    /// Permutes dimensions.
    ///
    /// # Errors
    ///
    /// Fails if `perm` is not a permutation of `0..rank`.
    pub fn transpose(&self, perm: &[usize]) -> Result<Tensor> {
        if perm.len() != self.rank() {
            return Err(TensorError::shape(format!(
                "transpose perm rank {} vs tensor rank {}",
                perm.len(),
                self.rank()
            )));
        }
        let mut seen = vec![false; perm.len()];
        for &p in perm {
            if p >= perm.len() || seen[p] {
                return Err(TensorError::shape(format!("invalid permutation {perm:?}")));
            }
            seen[p] = true;
        }
        let in_shape = self.shape();
        let out_shape: Vec<usize> = perm.iter().map(|&p| in_shape[p]).collect();
        let in_strides = strides_of(in_shape);
        let mut out = Tensor::zeros(&out_shape, self.dtype());
        for (lin, idx) in IndexIter::new(&out_shape).enumerate() {
            let mut src = 0usize;
            for (d, &p) in perm.iter().enumerate() {
                src += idx[d] * in_strides[p];
            }
            out.set_lin_f64(lin, self.lin_f64(src));
        }
        Ok(out)
    }

    /// Strided slice: for each dimension, takes elements
    /// `start, start+step, …` while `< end`. All bounds must already be
    /// valid (`start <= end <= dim`, `step >= 1`).
    ///
    /// # Errors
    ///
    /// Fails on rank mismatch or out-of-range bounds.
    pub fn slice(&self, starts: &[usize], ends: &[usize], steps: &[usize]) -> Result<Tensor> {
        let r = self.rank();
        if starts.len() != r || ends.len() != r || steps.len() != r {
            return Err(TensorError::shape("slice parameter rank mismatch"));
        }
        let mut out_shape = Vec::with_capacity(r);
        for d in 0..r {
            if steps[d] == 0 {
                return Err(TensorError::shape("slice step must be >= 1"));
            }
            if starts[d] > ends[d] || ends[d] > self.shape()[d] {
                return Err(TensorError::shape(format!(
                    "slice bounds [{}, {}) invalid for dim {} of size {}",
                    starts[d],
                    ends[d],
                    d,
                    self.shape()[d]
                )));
            }
            out_shape.push((ends[d] - starts[d]).div_ceil(steps[d]));
        }
        let in_strides = strides_of(self.shape());
        let mut out = Tensor::zeros(&out_shape, self.dtype());
        for (lin, idx) in IndexIter::new(&out_shape).enumerate() {
            let mut src = 0usize;
            for d in 0..r {
                src += (starts[d] + idx[d] * steps[d]) * in_strides[d];
            }
            out.set_lin_f64(lin, self.lin_f64(src));
        }
        Ok(out)
    }

    /// Scatters this tensor back into a zero tensor of shape `full`, at the
    /// positions a [`Tensor::slice`] with the same parameters would have
    /// read. This is the adjoint of `slice`, used by autodiff.
    ///
    /// # Errors
    ///
    /// Fails if the parameters are inconsistent with `self`/`full`.
    pub fn slice_scatter(
        &self,
        full: &[usize],
        starts: &[usize],
        ends: &[usize],
        steps: &[usize],
    ) -> Result<Tensor> {
        let probe = Tensor::zeros(full, self.dtype()).slice(starts, ends, steps)?;
        if probe.shape() != self.shape() {
            return Err(TensorError::shape(format!(
                "slice_scatter: slice of {full:?} gives {:?}, have {:?}",
                probe.shape(),
                self.shape()
            )));
        }
        let full_strides = strides_of(full);
        let mut out = Tensor::zeros(full, self.dtype());
        for (lin, idx) in IndexIter::new(self.shape()).enumerate() {
            let mut dst = 0usize;
            for d in 0..full.len() {
                dst += (starts[d] + idx[d] * steps[d]) * full_strides[d];
            }
            out.set_lin_f64(dst, self.lin_f64(lin));
        }
        Ok(out)
    }

    /// Pads each dimension by `(before, after)` using the given mode.
    /// Negative padding (cropping) is allowed for [`PadMode::Constant`].
    ///
    /// # Errors
    ///
    /// Fails on rank mismatch, on reflect padding wider than `dim - 1`, or
    /// on negative padding that crops more than the whole dimension.
    pub fn pad(&self, pads: &[(i64, i64)], mode: PadMode) -> Result<Tensor> {
        let r = self.rank();
        if pads.len() != r {
            return Err(TensorError::shape("pad parameter rank mismatch"));
        }
        let mut out_shape = Vec::with_capacity(r);
        for d in 0..r {
            let (b, a) = pads[d];
            if !matches!(mode, PadMode::Constant(_)) && (b < 0 || a < 0) {
                return Err(TensorError::shape(
                    "negative padding only valid in constant mode",
                ));
            }
            if matches!(mode, PadMode::Reflect)
                && (b as usize >= self.shape()[d].max(1) || a as usize >= self.shape()[d].max(1))
            {
                return Err(TensorError::shape(
                    "reflect padding must be smaller than the dimension",
                ));
            }
            let new = self.shape()[d] as i64 + b + a;
            if new < 0 {
                return Err(TensorError::shape("padding crops below zero size"));
            }
            out_shape.push(new as usize);
        }
        let in_strides = strides_of(self.shape());
        let fill = match mode {
            PadMode::Constant(v) => v,
            _ => 0.0,
        };
        let mut out = Tensor::full(&out_shape, self.dtype(), fill);
        for (lin, idx) in IndexIter::new(&out_shape).enumerate() {
            let mut src = 0usize;
            let mut inside = true;
            for d in 0..r {
                let pos = idx[d] as i64 - pads[d].0;
                let dim = self.shape()[d] as i64;
                let mapped = match mode {
                    PadMode::Constant(_) => {
                        if pos < 0 || pos >= dim {
                            inside = false;
                            break;
                        }
                        pos
                    }
                    PadMode::Replicate => pos.clamp(0, dim - 1),
                    PadMode::Reflect => {
                        if dim == 1 {
                            0
                        } else {
                            let period = 2 * (dim - 1);
                            let mut p = pos.rem_euclid(period);
                            if p >= dim {
                                p = period - p;
                            }
                            p
                        }
                    }
                };
                src += mapped as usize * in_strides[d];
            }
            if inside {
                out.set_lin_f64(lin, self.lin_f64(src));
            }
        }
        Ok(out)
    }

    /// Concatenates tensors along `axis`.
    ///
    /// # Errors
    ///
    /// Fails on an empty list, dtype/rank mismatch, non-matching off-axis
    /// dims, or an out-of-range axis.
    pub fn concat(tensors: &[&Tensor], axis: usize) -> Result<Tensor> {
        let first = tensors
            .first()
            .ok_or_else(|| TensorError::shape("concat of zero tensors"))?;
        let r = first.rank();
        if axis >= r {
            return Err(TensorError::shape(format!(
                "concat axis {axis} out of range for rank {r}"
            )));
        }
        let mut axis_total = 0usize;
        for t in tensors {
            if t.dtype() != first.dtype() {
                return Err(TensorError::dtype("concat dtype mismatch"));
            }
            if t.rank() != r {
                return Err(TensorError::shape("concat rank mismatch"));
            }
            for d in 0..r {
                if d != axis && t.shape()[d] != first.shape()[d] {
                    return Err(TensorError::shape(format!(
                        "concat dim {d} mismatch: {} vs {}",
                        t.shape()[d],
                        first.shape()[d]
                    )));
                }
            }
            axis_total += t.shape()[axis];
        }
        let mut out_shape = first.shape().to_vec();
        out_shape[axis] = axis_total;
        let out_strides = strides_of(&out_shape);
        let mut out = Tensor::zeros(&out_shape, first.dtype());
        let mut offset = 0usize;
        for t in tensors {
            for (lin, idx) in IndexIter::new(t.shape()).enumerate() {
                let mut dst_idx = idx.clone();
                dst_idx[axis] += offset;
                out.set_lin_f64(dot_index(&dst_idx, &out_strides), t.lin_f64(lin));
            }
            offset += t.shape()[axis];
        }
        Ok(out)
    }

    /// Materializes a broadcast of this tensor to `shape`.
    ///
    /// # Errors
    ///
    /// Fails if the shapes are not broadcast-compatible.
    pub fn broadcast_to(&self, shape: &[usize]) -> Result<Tensor> {
        let strides = broadcast_strides(self.shape(), shape)?;
        let mut out = Tensor::zeros(shape, self.dtype());
        for (lin, idx) in IndexIter::new(shape).enumerate() {
            out.set_lin_f64(lin, self.lin_f64(dot_index(&idx, &strides)));
        }
        Ok(out)
    }

    /// Reduces this tensor by summation so that it has shape `shape`
    /// (the adjoint of [`Tensor::broadcast_to`], used for gradients of
    /// broadcasting operators). Only float tensors are supported.
    ///
    /// # Errors
    ///
    /// Fails if `shape` does not broadcast to `self.shape()` or the dtype is
    /// not float.
    pub fn sum_to(&self, shape: &[usize]) -> Result<Tensor> {
        if !self.dtype().is_float() {
            return Err(TensorError::dtype("sum_to requires float"));
        }
        if self.shape() == shape {
            return Ok(self.clone());
        }
        let strides = broadcast_strides(shape, self.shape())?;
        let mut out = Tensor::zeros(shape, self.dtype());
        for (lin, idx) in IndexIter::new(self.shape()).enumerate() {
            // Position in the reduced tensor this element folds into
            // (broadcast dims have stride 0, so they collapse).
            let dst: usize = idx.iter().zip(&strides).map(|(i, s)| i * s).sum();
            let cur = out.lin_f64(dst);
            out.set_lin_f64(dst, cur + self.lin_f64(lin));
        }
        Ok(out)
    }

    /// Removes size-1 dimensions at the given axes (all size-1 dims when
    /// `axes` is empty).
    ///
    /// # Errors
    ///
    /// Fails if an axis is out of range or not of size 1.
    pub fn squeeze(&self, axes: &[usize]) -> Result<Tensor> {
        let mut keep = vec![true; self.rank()];
        if axes.is_empty() {
            for (d, &s) in self.shape().iter().enumerate() {
                if s == 1 {
                    keep[d] = false;
                }
            }
        } else {
            for &a in axes {
                if a >= self.rank() {
                    return Err(TensorError::shape("squeeze axis out of range"));
                }
                if self.shape()[a] != 1 {
                    return Err(TensorError::shape(format!(
                        "squeeze axis {a} has size {}",
                        self.shape()[a]
                    )));
                }
                keep[a] = false;
            }
        }
        let new_shape: Vec<usize> = self
            .shape()
            .iter()
            .zip(&keep)
            .filter(|(_, &k)| k)
            .map(|(&s, _)| s)
            .collect();
        self.reshaped(&new_shape)
    }

    /// Inserts a size-1 dimension before `axis` (`axis` may equal rank).
    ///
    /// # Errors
    ///
    /// Fails if `axis > rank`.
    pub fn unsqueeze(&self, axis: usize) -> Result<Tensor> {
        if axis > self.rank() {
            return Err(TensorError::shape("unsqueeze axis out of range"));
        }
        let mut new_shape = self.shape().to_vec();
        new_shape.insert(axis, 1);
        self.reshaped(&new_shape)
    }

    /// Flattens to 2-D: dims before `axis` are collapsed into the first
    /// output dim, the rest into the second (ONNX `Flatten`).
    ///
    /// # Errors
    ///
    /// Fails if `axis > rank`.
    pub fn flatten(&self, axis: usize) -> Result<Tensor> {
        if axis > self.rank() {
            return Err(TensorError::shape("flatten axis out of range"));
        }
        let first: usize = self.shape()[..axis].iter().product();
        let second: usize = self.shape()[axis..].iter().product();
        self.reshaped(&[first, second])
    }

    /// Nearest-neighbour 2-D upsampling of an NCHW tensor by integer scale
    /// factors.
    ///
    /// # Errors
    ///
    /// Fails for non-rank-4 tensors or zero scales.
    pub fn resize_nearest_2d(&self, scale_h: usize, scale_w: usize) -> Result<Tensor> {
        if self.rank() != 4 {
            return Err(TensorError::shape("resize_nearest_2d requires NCHW"));
        }
        if scale_h == 0 || scale_w == 0 {
            return Err(TensorError::shape("resize scale must be >= 1"));
        }
        let (n, c, h, w) = (
            self.shape()[0],
            self.shape()[1],
            self.shape()[2],
            self.shape()[3],
        );
        let out_shape = [n, c, h * scale_h, w * scale_w];
        let in_strides = strides_of(self.shape());
        let mut out = Tensor::zeros(&out_shape, self.dtype());
        for (lin, idx) in IndexIter::new(&out_shape).enumerate() {
            let src = idx[0] * in_strides[0]
                + idx[1] * in_strides[1]
                + (idx[2] / scale_h) * in_strides[2]
                + (idx[3] / scale_w) * in_strides[3];
            out.set_lin_f64(lin, self.lin_f64(src));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtype::DType;
    use crate::shape::numel;

    fn iota(shape: &[usize]) -> Tensor {
        let n = numel(shape);
        Tensor::from_f32(shape, (0..n).map(|i| i as f32).collect()).unwrap()
    }

    #[test]
    fn transpose_2d() {
        let t = iota(&[2, 3]);
        let tt = t.transpose(&[1, 0]).unwrap();
        assert_eq!(tt.shape(), &[3, 2]);
        assert_eq!(tt.as_f32().unwrap(), &[0., 3., 1., 4., 2., 5.]);
    }

    #[test]
    fn transpose_invalid_perm() {
        let t = iota(&[2, 3]);
        assert!(t.transpose(&[0, 0]).is_err());
        assert!(t.transpose(&[0]).is_err());
    }

    #[test]
    fn transpose_nchw_to_nhwc() {
        let t = iota(&[1, 2, 3, 4]);
        let tt = t.transpose(&[0, 2, 3, 1]).unwrap();
        assert_eq!(tt.shape(), &[1, 3, 4, 2]);
        assert_eq!(tt.at(&[0, 0, 0, 1]), t.at(&[0, 1, 0, 0]));
    }

    #[test]
    fn slice_basic() {
        let t = iota(&[4, 4]);
        let s = t.slice(&[1, 0], &[3, 4], &[1, 2]).unwrap();
        assert_eq!(s.shape(), &[2, 2]);
        assert_eq!(s.as_f32().unwrap(), &[4., 6., 8., 10.]);
    }

    #[test]
    fn slice_with_stride_gt_one_on_channel() {
        // The TVM layout-bug trigger: stride > 1 on the channel dim.
        let t = iota(&[1, 4, 2, 2]);
        let s = t
            .slice(&[0, 0, 0, 0], &[1, 4, 2, 2], &[1, 2, 1, 1])
            .unwrap();
        assert_eq!(s.shape(), &[1, 2, 2, 2]);
        assert_eq!(s.at(&[0, 1, 0, 0]), t.at(&[0, 2, 0, 0]));
    }

    #[test]
    fn slice_invalid() {
        let t = iota(&[4]);
        assert!(t.slice(&[2], &[1], &[1]).is_err());
        assert!(t.slice(&[0], &[5], &[1]).is_err());
        assert!(t.slice(&[0], &[4], &[0]).is_err());
    }

    #[test]
    fn slice_scatter_adjoint() {
        let t = iota(&[4]);
        let s = t.slice(&[1], &[4], &[2]).unwrap(); // [1., 3.]
        let g = s.slice_scatter(&[4], &[1], &[4], &[2]).unwrap();
        assert_eq!(g.as_f32().unwrap(), &[0., 1., 0., 3.]);
    }

    #[test]
    fn pad_constant() {
        let t = iota(&[2, 2]);
        let p = t.pad(&[(1, 0), (0, 1)], PadMode::Constant(9.0)).unwrap();
        assert_eq!(p.shape(), &[3, 3]);
        assert_eq!(p.as_f32().unwrap(), &[9., 9., 9., 0., 1., 9., 2., 3., 9.]);
    }

    #[test]
    fn pad_negative_crops() {
        let t = iota(&[4]);
        let p = t.pad(&[(-1, -1)], PadMode::Constant(0.0)).unwrap();
        assert_eq!(p.as_f32().unwrap(), &[1., 2.]);
    }

    #[test]
    fn pad_reflect() {
        let t = iota(&[4]); // 0 1 2 3
        let p = t.pad(&[(2, 1)], PadMode::Reflect).unwrap();
        assert_eq!(p.as_f32().unwrap(), &[2., 1., 0., 1., 2., 3., 2.]);
    }

    #[test]
    fn pad_reflect_too_wide_rejected() {
        let t = iota(&[3]);
        assert!(t.pad(&[(3, 0)], PadMode::Reflect).is_err());
    }

    #[test]
    fn pad_replicate() {
        let t = iota(&[3]); // 0 1 2
        let p = t.pad(&[(2, 2)], PadMode::Replicate).unwrap();
        assert_eq!(p.as_f32().unwrap(), &[0., 0., 0., 1., 2., 2., 2.]);
    }

    #[test]
    fn concat_axis0_and_1() {
        let a = iota(&[2, 2]);
        let b = iota(&[1, 2]);
        let c = Tensor::concat(&[&a, &b], 0).unwrap();
        assert_eq!(c.shape(), &[3, 2]);
        assert_eq!(c.as_f32().unwrap(), &[0., 1., 2., 3., 0., 1.]);
        let d = Tensor::concat(&[&a, &a], 1).unwrap();
        assert_eq!(d.shape(), &[2, 4]);
        assert_eq!(d.as_f32().unwrap(), &[0., 1., 0., 1., 2., 3., 2., 3.]);
    }

    #[test]
    fn concat_mismatch_rejected() {
        let a = iota(&[2, 2]);
        let b = iota(&[2, 3]);
        assert!(Tensor::concat(&[&a, &b], 0).is_err());
        assert!(Tensor::concat(&[], 0).is_err());
    }

    #[test]
    fn broadcast_to_materializes() {
        let t = iota(&[1, 3]);
        let b = t.broadcast_to(&[2, 3]).unwrap();
        assert_eq!(b.as_f32().unwrap(), &[0., 1., 2., 0., 1., 2.]);
        assert!(t.broadcast_to(&[2, 4]).is_err());
    }

    #[test]
    fn sum_to_reduces_broadcast_dims() {
        let t = Tensor::ones(&[2, 3], DType::F32);
        let s = t.sum_to(&[1, 3]).unwrap();
        assert_eq!(s.as_f32().unwrap(), &[2., 2., 2.]);
        let s2 = t.sum_to(&[3]).unwrap();
        assert_eq!(s2.as_f32().unwrap(), &[2., 2., 2.]);
    }

    #[test]
    fn squeeze_unsqueeze_roundtrip() {
        let t = iota(&[2, 1, 3]);
        let s = t.squeeze(&[1]).unwrap();
        assert_eq!(s.shape(), &[2, 3]);
        let u = s.unsqueeze(1).unwrap();
        assert_eq!(u.shape(), &[2, 1, 3]);
        assert!(t.squeeze(&[0]).is_err());
        let all = t.squeeze(&[]).unwrap();
        assert_eq!(all.shape(), &[2, 3]);
    }

    #[test]
    fn flatten_axis() {
        let t = iota(&[2, 3, 4]);
        assert_eq!(t.flatten(1).unwrap().shape(), &[2, 12]);
        assert_eq!(t.flatten(0).unwrap().shape(), &[1, 24]);
        assert_eq!(t.flatten(3).unwrap().shape(), &[24, 1]);
    }

    #[test]
    fn resize_nearest() {
        let t = iota(&[1, 1, 2, 2]);
        let r = t.resize_nearest_2d(2, 2).unwrap();
        assert_eq!(r.shape(), &[1, 1, 4, 4]);
        assert_eq!(r.at(&[0, 0, 0, 0]), 0.0);
        assert_eq!(r.at(&[0, 0, 1, 1]), 0.0);
        assert_eq!(r.at(&[0, 0, 2, 3]), 3.0);
    }
}
