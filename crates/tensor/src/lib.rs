//! # nnsmith-tensor
//!
//! A from-scratch tensor runtime — the stand-in for PyTorch in this Rust
//! reproduction of NNSmith (ASPLOS 2023).
//!
//! The crate plays two roles in the pipeline:
//!
//! 1. **Reference backend.** Generated models are executed operator by
//!    operator on these kernels, and the results are the oracle for
//!    differential testing against the simulated compilers.
//! 2. **Gradient engine.** The paper's gradient-guided value search
//!    (Algorithm 3) backpropagates per-operator loss functions through the
//!    model prefix; the backward kernels here (`conv2d_grad_*`,
//!    `max_pool2d_grad`, `sum_to`, `slice_scatter`, …) are what the operator
//!    VJPs in `nnsmith-ops` compose.
//!
//! Kernels are dtype-faithful: `f32` math rounds like `f32` (observable in
//! the differential-testing tolerance logic), integers wrap like compiled
//! kernels, and every operator validates shapes/dtypes and returns
//! [`TensorError`] instead of panicking — an invalid combination is a test
//! result, not a crash of the fuzzer.
//!
//! ## Example
//!
//! ```
//! use nnsmith_tensor::{Conv2dParams, DType, Tensor};
//!
//! let image = Tensor::ones(&[1, 3, 8, 8], DType::F32);
//! let kernel = Tensor::ones(&[2, 3, 3, 3], DType::F32);
//! let out = image.conv2d(&kernel, None, &Conv2dParams::default())?;
//! assert_eq!(out.shape(), &[1, 2, 6, 6]);
//! # Ok::<(), nnsmith_tensor::TensorError>(())
//! ```

#![warn(missing_docs)]
#![allow(clippy::needless_range_loop)] // index loops mirror the reference shape algebra
#![allow(clippy::type_complexity)] // conv geometry helpers return wide tuples

mod conv;
mod dtype;
mod elementwise;
mod error;
mod linalg;
mod movement;
mod pool;
mod reduce;
mod shape;
mod tensor;

pub use conv::Conv2dParams;
pub use dtype::DType;
pub use error::{Result, TensorError};
pub use movement::PadMode;
pub use pool::Pool2dParams;
pub use reduce::{reduced_shape, ReduceKind};
pub use shape::{
    broadcast_shapes, broadcast_strides, dot_index, numel, strides_of, unravel, IndexIter,
};
pub use tensor::{Data, Tensor};
