//! The dense tensor type and its storage.

use std::fmt;

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::dtype::DType;
use crate::error::{Result, TensorError};
use crate::shape::{dot_index, numel, strides_of};

/// Typed, contiguous, row-major storage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Data {
    /// 32-bit floats.
    F32(Vec<f32>),
    /// 64-bit floats.
    F64(Vec<f64>),
    /// 32-bit signed integers.
    I32(Vec<i32>),
    /// 64-bit signed integers.
    I64(Vec<i64>),
    /// Booleans.
    Bool(Vec<bool>),
}

impl Data {
    /// Element type of this storage.
    pub fn dtype(&self) -> DType {
        match self {
            Data::F32(_) => DType::F32,
            Data::F64(_) => DType::F64,
            Data::I32(_) => DType::I32,
            Data::I64(_) => DType::I64,
            Data::Bool(_) => DType::Bool,
        }
    }

    /// Number of stored elements.
    pub fn len(&self) -> usize {
        match self {
            Data::F32(v) => v.len(),
            Data::F64(v) => v.len(),
            Data::I32(v) => v.len(),
            Data::I64(v) => v.len(),
            Data::Bool(v) => v.len(),
        }
    }

    /// True if no elements are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A dense row-major tensor.
///
/// # Examples
///
/// ```
/// use nnsmith_tensor::{DType, Tensor};
///
/// let t = Tensor::from_f32(&[2, 2], vec![1.0, 2.0, 3.0, 4.0])?;
/// assert_eq!(t.dtype(), DType::F32);
/// assert_eq!(t.shape(), &[2, 2]);
/// assert_eq!(t.get_f64(&[1, 0])?, 3.0);
/// # Ok::<(), nnsmith_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Data,
}

impl Tensor {
    /// Creates a tensor from raw parts.
    ///
    /// # Errors
    ///
    /// Fails if the data length does not match the shape's element count.
    pub fn from_data(shape: &[usize], data: Data) -> Result<Tensor> {
        if numel(shape) != data.len() {
            return Err(TensorError::shape(format!(
                "data length {} does not match shape {:?} ({} elements)",
                data.len(),
                shape,
                numel(shape)
            )));
        }
        Ok(Tensor {
            shape: shape.to_vec(),
            data,
        })
    }

    /// Creates an `f32` tensor.
    ///
    /// # Errors
    ///
    /// Fails if the data length does not match the shape.
    pub fn from_f32(shape: &[usize], data: Vec<f32>) -> Result<Tensor> {
        Tensor::from_data(shape, Data::F32(data))
    }

    /// Creates an `f64` tensor.
    ///
    /// # Errors
    ///
    /// Fails if the data length does not match the shape.
    pub fn from_f64(shape: &[usize], data: Vec<f64>) -> Result<Tensor> {
        Tensor::from_data(shape, Data::F64(data))
    }

    /// Creates an `i32` tensor.
    ///
    /// # Errors
    ///
    /// Fails if the data length does not match the shape.
    pub fn from_i32(shape: &[usize], data: Vec<i32>) -> Result<Tensor> {
        Tensor::from_data(shape, Data::I32(data))
    }

    /// Creates an `i64` tensor.
    ///
    /// # Errors
    ///
    /// Fails if the data length does not match the shape.
    pub fn from_i64(shape: &[usize], data: Vec<i64>) -> Result<Tensor> {
        Tensor::from_data(shape, Data::I64(data))
    }

    /// Creates a `bool` tensor.
    ///
    /// # Errors
    ///
    /// Fails if the data length does not match the shape.
    pub fn from_bool(shape: &[usize], data: Vec<bool>) -> Result<Tensor> {
        Tensor::from_data(shape, Data::Bool(data))
    }

    /// An all-zeros (or all-false) tensor of the given shape and dtype.
    pub fn zeros(shape: &[usize], dtype: DType) -> Tensor {
        Tensor::full(shape, dtype, 0.0)
    }

    /// An all-ones (or all-true) tensor of the given shape and dtype.
    pub fn ones(shape: &[usize], dtype: DType) -> Tensor {
        Tensor::full(shape, dtype, 1.0)
    }

    /// A constant tensor; `value` is converted to the target dtype
    /// (non-zero becomes `true` for booleans).
    pub fn full(shape: &[usize], dtype: DType, value: f64) -> Tensor {
        let n = numel(shape);
        let data = match dtype {
            DType::F32 => Data::F32(vec![value as f32; n]),
            DType::F64 => Data::F64(vec![value; n]),
            DType::I32 => Data::I32(vec![value as i32; n]),
            DType::I64 => Data::I64(vec![value as i64; n]),
            DType::Bool => Data::Bool(vec![value != 0.0; n]),
        };
        Tensor {
            shape: shape.to_vec(),
            data,
        }
    }

    /// A scalar (rank-0) tensor.
    pub fn scalar(dtype: DType, value: f64) -> Tensor {
        Tensor::full(&[], dtype, value)
    }

    /// A tensor with elements sampled uniformly from `[lo, hi)` (floats) or
    /// `[lo, hi]` as integers; booleans are fair coin flips.
    pub fn uniform<R: Rng + ?Sized>(
        shape: &[usize],
        dtype: DType,
        lo: f64,
        hi: f64,
        rng: &mut R,
    ) -> Tensor {
        let n = numel(shape);
        let data = match dtype {
            DType::F32 => Data::F32((0..n).map(|_| rng.gen_range(lo..hi) as f32).collect()),
            DType::F64 => Data::F64((0..n).map(|_| rng.gen_range(lo..hi)).collect()),
            DType::I32 => Data::I32(
                (0..n)
                    .map(|_| rng.gen_range(lo as i32..=hi as i32))
                    .collect(),
            ),
            DType::I64 => Data::I64(
                (0..n)
                    .map(|_| rng.gen_range(lo as i64..=hi as i64))
                    .collect(),
            ),
            DType::Bool => Data::Bool((0..n).map(|_| rng.gen_bool(0.5)).collect()),
        };
        Tensor {
            shape: shape.to_vec(),
            data,
        }
    }

    /// The element type.
    pub fn dtype(&self) -> DType {
        self.data.dtype()
    }

    /// The shape (dimensions).
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Number of elements.
    pub fn numel(&self) -> usize {
        numel(&self.shape)
    }

    /// Borrows the underlying storage.
    pub fn data(&self) -> &Data {
        &self.data
    }

    /// Mutably borrows the underlying storage.
    pub fn data_mut(&mut self) -> &mut Data {
        &mut self.data
    }

    /// Consumes the tensor, returning shape and storage.
    pub fn into_parts(self) -> (Vec<usize>, Data) {
        (self.shape, self.data)
    }

    /// Typed view of `f32` storage.
    pub fn as_f32(&self) -> Option<&[f32]> {
        match &self.data {
            Data::F32(v) => Some(v),
            _ => None,
        }
    }

    /// Typed view of `f64` storage.
    pub fn as_f64(&self) -> Option<&[f64]> {
        match &self.data {
            Data::F64(v) => Some(v),
            _ => None,
        }
    }

    /// Typed view of `i32` storage.
    pub fn as_i32(&self) -> Option<&[i32]> {
        match &self.data {
            Data::I32(v) => Some(v),
            _ => None,
        }
    }

    /// Typed view of `i64` storage.
    pub fn as_i64(&self) -> Option<&[i64]> {
        match &self.data {
            Data::I64(v) => Some(v),
            _ => None,
        }
    }

    /// Typed view of `bool` storage.
    pub fn as_bool(&self) -> Option<&[bool]> {
        match &self.data {
            Data::Bool(v) => Some(v),
            _ => None,
        }
    }

    /// Mutable typed view of `f32` storage.
    pub fn as_f32_mut(&mut self) -> Option<&mut [f32]> {
        match &mut self.data {
            Data::F32(v) => Some(v),
            _ => None,
        }
    }

    /// Mutable typed view of `f64` storage.
    pub fn as_f64_mut(&mut self) -> Option<&mut [f64]> {
        match &mut self.data {
            Data::F64(v) => Some(v),
            _ => None,
        }
    }

    /// Element at `linear` offset converted to `f64` (`true` → 1.0).
    ///
    /// # Panics
    ///
    /// Panics if `linear` is out of bounds.
    pub fn lin_f64(&self, linear: usize) -> f64 {
        match &self.data {
            Data::F32(v) => v[linear] as f64,
            Data::F64(v) => v[linear],
            Data::I32(v) => v[linear] as f64,
            Data::I64(v) => v[linear] as f64,
            Data::Bool(v) => {
                if v[linear] {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }

    /// Sets the element at `linear` offset from an `f64` value.
    ///
    /// # Panics
    ///
    /// Panics if `linear` is out of bounds.
    pub fn set_lin_f64(&mut self, linear: usize, value: f64) {
        match &mut self.data {
            Data::F32(v) => v[linear] = value as f32,
            Data::F64(v) => v[linear] = value,
            Data::I32(v) => v[linear] = value as i32,
            Data::I64(v) => v[linear] = value as i64,
            Data::Bool(v) => v[linear] = value != 0.0,
        }
    }

    /// Element at a multi-index, converted to `f64`.
    ///
    /// # Errors
    ///
    /// Fails when the index rank or any coordinate is out of range.
    pub fn get_f64(&self, index: &[usize]) -> Result<f64> {
        if index.len() != self.rank() {
            return Err(TensorError::shape(format!(
                "index rank {} does not match tensor rank {}",
                index.len(),
                self.rank()
            )));
        }
        for (i, (&x, &d)) in index.iter().zip(&self.shape).enumerate() {
            if x >= d {
                return Err(TensorError::shape(format!(
                    "index {x} out of bounds for dim {i} of size {d}"
                )));
            }
        }
        let strides = strides_of(&self.shape);
        Ok(self.lin_f64(dot_index(index, &strides)))
    }

    /// Copies all elements into an `f64` vector (booleans become 0/1).
    pub fn to_f64_vec(&self) -> Vec<f64> {
        (0..self.numel()).map(|i| self.lin_f64(i)).collect()
    }

    /// Converts the tensor to another dtype.
    ///
    /// Float → int truncates toward zero (NaN becomes 0, like a C cast with
    /// saturation); anything → bool is a non-zero test.
    pub fn cast(&self, dtype: DType) -> Tensor {
        if dtype == self.dtype() {
            return self.clone();
        }
        let n = self.numel();
        let data = match dtype {
            DType::F32 => Data::F32((0..n).map(|i| self.lin_f64(i) as f32).collect()),
            DType::F64 => Data::F64((0..n).map(|i| self.lin_f64(i)).collect()),
            DType::I32 => Data::I32(
                (0..n)
                    .map(|i| {
                        let v = self.lin_f64(i);
                        if v.is_nan() {
                            0
                        } else {
                            v.clamp(i32::MIN as f64, i32::MAX as f64) as i32
                        }
                    })
                    .collect(),
            ),
            DType::I64 => Data::I64(
                (0..n)
                    .map(|i| {
                        let v = self.lin_f64(i);
                        if v.is_nan() {
                            0
                        } else {
                            v.clamp(i64::MIN as f64, i64::MAX as f64) as i64
                        }
                    })
                    .collect(),
            ),
            DType::Bool => Data::Bool((0..n).map(|i| self.lin_f64(i) != 0.0).collect()),
        };
        Tensor {
            shape: self.shape.clone(),
            data,
        }
    }

    /// True if the tensor holds any `NaN` or infinity. Always false for
    /// integer and boolean tensors.
    pub fn has_non_finite(&self) -> bool {
        match &self.data {
            Data::F32(v) => v.iter().any(|x| !x.is_finite()),
            Data::F64(v) => v.iter().any(|x| !x.is_finite()),
            _ => false,
        }
    }

    /// Returns a reshaped view (copy) with the same data.
    ///
    /// # Errors
    ///
    /// Fails if the new shape has a different element count.
    pub fn reshaped(&self, new_shape: &[usize]) -> Result<Tensor> {
        if numel(new_shape) != self.numel() {
            return Err(TensorError::shape(format!(
                "cannot reshape {:?} ({} elems) to {:?} ({} elems)",
                self.shape,
                self.numel(),
                new_shape,
                numel(new_shape)
            )));
        }
        Ok(Tensor {
            shape: new_shape.to_vec(),
            data: self.data.clone(),
        })
    }

    /// Maximum elementwise absolute difference between two same-shaped
    /// tensors, computed in `f64`. `NaN` yields `f64::INFINITY`.
    ///
    /// # Errors
    ///
    /// Fails on shape mismatch.
    pub fn max_abs_diff(&self, other: &Tensor) -> Result<f64> {
        if self.shape != other.shape {
            return Err(TensorError::shape(format!(
                "max_abs_diff shapes {:?} vs {:?}",
                self.shape, other.shape
            )));
        }
        let mut worst = 0.0f64;
        for i in 0..self.numel() {
            let a = self.lin_f64(i);
            let b = other.lin_f64(i);
            let d = (a - b).abs();
            if d.is_nan() {
                return Ok(f64::INFINITY);
            }
            worst = worst.max(d);
        }
        Ok(worst)
    }

    /// Element at multi-index for tests: like [`Tensor::get_f64`] but panics.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds indices.
    pub fn at(&self, index: &[usize]) -> f64 {
        self.get_f64(index).expect("index in bounds")
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor<{}>{:?}[", self.dtype(), self.shape)?;
        let n = self.numel().min(8);
        for i in 0..n {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{:.4}", self.lin_f64(i))?;
        }
        if self.numel() > 8 {
            write!(f, ", …")?;
        }
        write!(f, "]")
    }
}

/// Internal trait unifying the numeric element types for generic kernels.
pub(crate) trait Element: Copy + PartialOrd + 'static {
    #[allow(dead_code)]
    const DTYPE: DType;
    fn from_f64(v: f64) -> Self;
    #[allow(dead_code)]
    fn to_f64(self) -> f64;
    fn slice(t: &Tensor) -> Option<&[Self]>;
    fn into_data(v: Vec<Self>) -> Data;
}

impl Element for f32 {
    const DTYPE: DType = DType::F32;
    fn from_f64(v: f64) -> Self {
        v as f32
    }
    fn to_f64(self) -> f64 {
        self as f64
    }
    fn slice(t: &Tensor) -> Option<&[f32]> {
        t.as_f32()
    }
    fn into_data(v: Vec<f32>) -> Data {
        Data::F32(v)
    }
}

impl Element for f64 {
    const DTYPE: DType = DType::F64;
    fn from_f64(v: f64) -> Self {
        v
    }
    fn to_f64(self) -> f64 {
        self
    }
    fn slice(t: &Tensor) -> Option<&[f64]> {
        t.as_f64()
    }
    fn into_data(v: Vec<f64>) -> Data {
        Data::F64(v)
    }
}

impl Element for i32 {
    const DTYPE: DType = DType::I32;
    fn from_f64(v: f64) -> Self {
        v as i32
    }
    fn to_f64(self) -> f64 {
        self as f64
    }
    fn slice(t: &Tensor) -> Option<&[i32]> {
        t.as_i32()
    }
    fn into_data(v: Vec<i32>) -> Data {
        Data::I32(v)
    }
}

impl Element for i64 {
    const DTYPE: DType = DType::I64;
    fn from_f64(v: f64) -> Self {
        v as i64
    }
    fn to_f64(self) -> f64 {
        self as f64
    }
    fn slice(t: &Tensor) -> Option<&[i64]> {
        t.as_i64()
    }
    fn into_data(v: Vec<i64>) -> Data {
        Data::I64(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn construction_and_access() {
        let t = Tensor::from_f32(&[2, 3], vec![1., 2., 3., 4., 5., 6.]).unwrap();
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.rank(), 2);
        assert_eq!(t.numel(), 6);
        assert_eq!(t.at(&[0, 0]), 1.0);
        assert_eq!(t.at(&[1, 2]), 6.0);
    }

    #[test]
    fn length_mismatch_rejected() {
        assert!(Tensor::from_f32(&[2, 3], vec![1.0]).is_err());
    }

    #[test]
    fn scalar_tensor() {
        let s = Tensor::scalar(DType::F64, 3.5);
        assert_eq!(s.rank(), 0);
        assert_eq!(s.numel(), 1);
        assert_eq!(s.lin_f64(0), 3.5);
    }

    #[test]
    fn zeros_ones_full() {
        let z = Tensor::zeros(&[4], DType::I32);
        assert_eq!(z.as_i32().unwrap(), &[0, 0, 0, 0]);
        let o = Tensor::ones(&[2], DType::Bool);
        assert_eq!(o.as_bool().unwrap(), &[true, true]);
        let f = Tensor::full(&[3], DType::I64, 7.0);
        assert_eq!(f.as_i64().unwrap(), &[7, 7, 7]);
    }

    #[test]
    fn cast_float_to_int_truncates() {
        let t = Tensor::from_f32(&[3], vec![1.9, -2.9, f32::NAN]).unwrap();
        let c = t.cast(DType::I32);
        assert_eq!(c.as_i32().unwrap(), &[1, -2, 0]);
    }

    #[test]
    fn cast_to_bool() {
        let t = Tensor::from_i64(&[3], vec![0, 5, -1]).unwrap();
        let c = t.cast(DType::Bool);
        assert_eq!(c.as_bool().unwrap(), &[false, true, true]);
    }

    #[test]
    fn cast_same_dtype_is_identity() {
        let t = Tensor::from_f64(&[2], vec![1.0, 2.0]).unwrap();
        assert_eq!(t.cast(DType::F64), t);
    }

    #[test]
    fn non_finite_detection() {
        let ok = Tensor::from_f32(&[2], vec![1.0, -2.0]).unwrap();
        assert!(!ok.has_non_finite());
        let bad = Tensor::from_f32(&[2], vec![1.0, f32::INFINITY]).unwrap();
        assert!(bad.has_non_finite());
        let nan = Tensor::from_f64(&[1], vec![f64::NAN]).unwrap();
        assert!(nan.has_non_finite());
        let ints = Tensor::from_i32(&[2], vec![i32::MAX, i32::MIN]).unwrap();
        assert!(!ints.has_non_finite());
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_i32(&[2, 3], vec![1, 2, 3, 4, 5, 6]).unwrap();
        let r = t.reshaped(&[3, 2]).unwrap();
        assert_eq!(r.shape(), &[3, 2]);
        assert_eq!(r.as_i32().unwrap(), t.as_i32().unwrap());
        assert!(t.reshaped(&[4, 2]).is_err());
    }

    #[test]
    fn uniform_within_bounds() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let t = Tensor::uniform(&[100], DType::F32, 1.0, 9.0, &mut rng);
        for &v in t.as_f32().unwrap() {
            assert!((1.0..9.0).contains(&v));
        }
        let ti = Tensor::uniform(&[100], DType::I64, 0.0, 5.0, &mut rng);
        for &v in ti.as_i64().unwrap() {
            assert!((0..=5).contains(&v));
        }
    }

    #[test]
    fn max_abs_diff_works() {
        let a = Tensor::from_f32(&[3], vec![1.0, 2.0, 3.0]).unwrap();
        let b = Tensor::from_f32(&[3], vec![1.0, 2.5, 3.0]).unwrap();
        assert_eq!(a.max_abs_diff(&b).unwrap(), 0.5);
        let n = Tensor::from_f32(&[3], vec![1.0, f32::NAN, 3.0]).unwrap();
        assert_eq!(a.max_abs_diff(&n).unwrap(), f64::INFINITY);
    }

    #[test]
    fn display_truncates() {
        let t = Tensor::zeros(&[100], DType::F32);
        let s = format!("{t}");
        assert!(s.contains('…'));
    }
}
