//! 2-D pooling (NCHW) forward and backward kernels.

use crate::error::{Result, TensorError};
use crate::shape::strides_of;
use crate::tensor::Tensor;

/// Pooling hyper-parameters (shared by max and average pooling).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Pool2dParams {
    /// Kernel size `(kh, kw)`.
    pub kernel: (usize, usize),
    /// Stride `(sh, sw)`.
    pub stride: (usize, usize),
    /// Padding `(ph, pw)` on both sides. Max pooling pads with `-inf`,
    /// average pooling includes padding in the divisor
    /// (`count_include_pad = true`).
    pub padding: (usize, usize),
}

impl Pool2dParams {
    /// Output spatial size for input `(h, w)`; `None` if the kernel does not
    /// fit the padded input.
    pub fn out_hw(&self, h: usize, w: usize) -> Option<(usize, usize)> {
        let ph = h + 2 * self.padding.0;
        let pw = w + 2 * self.padding.1;
        if self.kernel.0 > ph || self.kernel.1 > pw || self.kernel.0 == 0 || self.kernel.1 == 0 {
            return None;
        }
        if self.stride.0 == 0 || self.stride.1 == 0 {
            return None;
        }
        Some((
            (ph - self.kernel.0) / self.stride.0 + 1,
            (pw - self.kernel.1) / self.stride.1 + 1,
        ))
    }
}

fn check_pool_args(
    input: &Tensor,
    params: &Pool2dParams,
) -> Result<(usize, usize, usize, usize, usize, usize)> {
    if !input.dtype().is_float() {
        return Err(TensorError::dtype("pool2d requires float"));
    }
    if input.rank() != 4 {
        return Err(TensorError::shape("pool2d requires NCHW"));
    }
    let (n, c, h, w) = (
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    );
    let (oh, ow) = params
        .out_hw(h, w)
        .ok_or_else(|| TensorError::shape("pool2d kernel larger than padded input"))?;
    // Padding larger than the kernel would make windows that see only
    // padding, which is rejected by real frameworks too.
    if params.padding.0 >= params.kernel.0.max(1) || params.padding.1 >= params.kernel.1.max(1) {
        return Err(TensorError::shape("pool2d padding must be < kernel"));
    }
    Ok((n, c, h, w, oh, ow))
}

impl Tensor {
    /// 2-D max pooling.
    ///
    /// # Errors
    ///
    /// Fails for non-float input, wrong rank, or a kernel/padding
    /// configuration that does not fit.
    pub fn max_pool2d(&self, params: &Pool2dParams) -> Result<Tensor> {
        let (n, c, h, w, oh, ow) = check_pool_args(self, params)?;
        let istr = strides_of(self.shape());
        let mut out = Tensor::zeros(&[n, c, oh, ow], self.dtype());
        let mut lin = 0usize;
        for ni in 0..n {
            for ci in 0..c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f64::NEG_INFINITY;
                        for ky in 0..params.kernel.0 {
                            let iy = (oy * params.stride.0 + ky) as i64 - params.padding.0 as i64;
                            if iy < 0 || iy >= h as i64 {
                                continue;
                            }
                            for kx in 0..params.kernel.1 {
                                let ix =
                                    (ox * params.stride.1 + kx) as i64 - params.padding.1 as i64;
                                if ix < 0 || ix >= w as i64 {
                                    continue;
                                }
                                let v = self.lin_f64(
                                    ni * istr[0]
                                        + ci * istr[1]
                                        + iy as usize * istr[2]
                                        + ix as usize,
                                );
                                if v > best || best.is_nan() {
                                    best = v;
                                }
                                if v.is_nan() {
                                    best = f64::NAN;
                                }
                            }
                        }
                        out.set_lin_f64(lin, best);
                        lin += 1;
                    }
                }
            }
        }
        Ok(out)
    }

    /// 2-D average pooling (`count_include_pad = true`).
    ///
    /// # Errors
    ///
    /// Fails for non-float input, wrong rank, or a kernel/padding
    /// configuration that does not fit.
    pub fn avg_pool2d(&self, params: &Pool2dParams) -> Result<Tensor> {
        let (n, c, h, w, oh, ow) = check_pool_args(self, params)?;
        let istr = strides_of(self.shape());
        let divisor = (params.kernel.0 * params.kernel.1) as f64;
        let mut out = Tensor::zeros(&[n, c, oh, ow], self.dtype());
        let mut lin = 0usize;
        for ni in 0..n {
            for ci in 0..c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = 0.0f64;
                        for ky in 0..params.kernel.0 {
                            let iy = (oy * params.stride.0 + ky) as i64 - params.padding.0 as i64;
                            if iy < 0 || iy >= h as i64 {
                                continue;
                            }
                            for kx in 0..params.kernel.1 {
                                let ix =
                                    (ox * params.stride.1 + kx) as i64 - params.padding.1 as i64;
                                if ix < 0 || ix >= w as i64 {
                                    continue;
                                }
                                acc += self.lin_f64(
                                    ni * istr[0]
                                        + ci * istr[1]
                                        + iy as usize * istr[2]
                                        + ix as usize,
                                );
                            }
                        }
                        out.set_lin_f64(lin, acc / divisor);
                        lin += 1;
                    }
                }
            }
        }
        Ok(out)
    }

    /// Gradient of [`Tensor::max_pool2d`] with respect to the input: routes
    /// each output gradient to the (first) position that attained the max.
    ///
    /// # Errors
    ///
    /// Fails under the same conditions as the forward pass or on a
    /// mis-shaped `grad_out`.
    pub fn max_pool2d_grad(&self, grad_out: &Tensor, params: &Pool2dParams) -> Result<Tensor> {
        let (n, c, h, w, oh, ow) = check_pool_args(self, params)?;
        if grad_out.shape() != [n, c, oh, ow] {
            return Err(TensorError::shape("max_pool2d_grad: bad grad_out shape"));
        }
        let istr = strides_of(self.shape());
        let mut grad_in = Tensor::zeros(self.shape(), self.dtype());
        let mut lin = 0usize;
        for ni in 0..n {
            for ci in 0..c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f64::NEG_INFINITY;
                        let mut best_off: Option<usize> = None;
                        for ky in 0..params.kernel.0 {
                            let iy = (oy * params.stride.0 + ky) as i64 - params.padding.0 as i64;
                            if iy < 0 || iy >= h as i64 {
                                continue;
                            }
                            for kx in 0..params.kernel.1 {
                                let ix =
                                    (ox * params.stride.1 + kx) as i64 - params.padding.1 as i64;
                                if ix < 0 || ix >= w as i64 {
                                    continue;
                                }
                                let off = ni * istr[0]
                                    + ci * istr[1]
                                    + iy as usize * istr[2]
                                    + ix as usize;
                                let v = self.lin_f64(off);
                                if v > best || best_off.is_none() {
                                    best = v;
                                    best_off = Some(off);
                                }
                            }
                        }
                        if let Some(off) = best_off {
                            grad_in.set_lin_f64(off, grad_in.lin_f64(off) + grad_out.lin_f64(lin));
                        }
                        lin += 1;
                    }
                }
            }
        }
        Ok(grad_in)
    }

    /// Gradient of [`Tensor::avg_pool2d`] with respect to the input.
    ///
    /// # Errors
    ///
    /// Fails under the same conditions as the forward pass or on a
    /// mis-shaped `grad_out`.
    pub fn avg_pool2d_grad(&self, grad_out: &Tensor, params: &Pool2dParams) -> Result<Tensor> {
        let (n, c, h, w, oh, ow) = check_pool_args(self, params)?;
        if grad_out.shape() != [n, c, oh, ow] {
            return Err(TensorError::shape("avg_pool2d_grad: bad grad_out shape"));
        }
        let istr = strides_of(self.shape());
        let divisor = (params.kernel.0 * params.kernel.1) as f64;
        let mut grad_in = Tensor::zeros(self.shape(), self.dtype());
        let mut lin = 0usize;
        for ni in 0..n {
            for ci in 0..c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let share = grad_out.lin_f64(lin) / divisor;
                        for ky in 0..params.kernel.0 {
                            let iy = (oy * params.stride.0 + ky) as i64 - params.padding.0 as i64;
                            if iy < 0 || iy >= h as i64 {
                                continue;
                            }
                            for kx in 0..params.kernel.1 {
                                let ix =
                                    (ox * params.stride.1 + kx) as i64 - params.padding.1 as i64;
                                if ix < 0 || ix >= w as i64 {
                                    continue;
                                }
                                let off = ni * istr[0]
                                    + ci * istr[1]
                                    + iy as usize * istr[2]
                                    + ix as usize;
                                grad_in.set_lin_f64(off, grad_in.lin_f64(off) + share);
                            }
                        }
                        lin += 1;
                    }
                }
            }
        }
        Ok(grad_in)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtype::DType;

    fn iota(shape: &[usize]) -> Tensor {
        let n: usize = shape.iter().product();
        Tensor::from_f32(shape, (0..n).map(|i| i as f32).collect()).unwrap()
    }

    fn params(k: usize, s: usize, p: usize) -> Pool2dParams {
        Pool2dParams {
            kernel: (k, k),
            stride: (s, s),
            padding: (p, p),
        }
    }

    #[test]
    fn max_pool_basic() {
        let x = iota(&[1, 1, 4, 4]);
        let y = x.max_pool2d(&params(2, 2, 0)).unwrap();
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.as_f32().unwrap(), &[5., 7., 13., 15.]);
    }

    #[test]
    fn avg_pool_basic() {
        let x = iota(&[1, 1, 2, 2]);
        let y = x.avg_pool2d(&params(2, 2, 0)).unwrap();
        assert_eq!(y.as_f32().unwrap(), &[1.5]);
    }

    #[test]
    fn avg_pool_counts_padding() {
        // count_include_pad: the corner window of a padded pool divides by
        // kernel area even though part of it is padding.
        let x = Tensor::ones(&[1, 1, 2, 2], DType::F32);
        let y = x.avg_pool2d(&params(2, 2, 1)).unwrap();
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.at(&[0, 0, 0, 0]), 0.25);
    }

    #[test]
    fn max_pool_padding_ignores_pad_values() {
        let x = Tensor::full(&[1, 1, 2, 2], DType::F32, -5.0);
        let y = x.max_pool2d(&params(2, 1, 1)).unwrap();
        // All windows should still pick -5, not the 0/-inf padding.
        assert!(y.as_f32().unwrap().iter().all(|&v| v == -5.0));
    }

    #[test]
    fn pool_invalid_config_rejected() {
        let x = iota(&[1, 1, 2, 2]);
        assert!(x.max_pool2d(&params(3, 1, 0)).is_err()); // kernel too big
        assert!(x.max_pool2d(&params(2, 0, 0)).is_err()); // zero stride
        assert!(x
            .max_pool2d(&Pool2dParams {
                kernel: (2, 2),
                stride: (1, 1),
                padding: (2, 2),
            })
            .is_err()); // padding >= kernel
    }

    #[test]
    fn pool_requires_float_nchw() {
        let xi = Tensor::ones(&[1, 1, 2, 2], DType::I32);
        assert!(xi.max_pool2d(&params(2, 1, 0)).is_err());
        let x3 = Tensor::ones(&[1, 2, 2], DType::F32);
        assert!(x3.max_pool2d(&params(2, 1, 0)).is_err());
    }

    #[test]
    fn max_pool_grad_routes_to_argmax() {
        let x = iota(&[1, 1, 2, 2]); // max at index 3
        let g = Tensor::ones(&[1, 1, 1, 1], DType::F32);
        let gi = x.max_pool2d_grad(&g, &params(2, 1, 0)).unwrap();
        assert_eq!(gi.as_f32().unwrap(), &[0., 0., 0., 1.]);
    }

    #[test]
    fn avg_pool_grad_uniform() {
        let x = iota(&[1, 1, 2, 2]);
        let g = Tensor::ones(&[1, 1, 1, 1], DType::F32);
        let gi = x.avg_pool2d_grad(&g, &params(2, 1, 0)).unwrap();
        assert!(gi.as_f32().unwrap().iter().all(|&v| v == 0.25));
    }

    #[test]
    fn avg_pool_grad_numeric_check() {
        let x = Tensor::from_f64(&[1, 1, 3, 3], (0..9).map(|i| i as f64 * 0.3).collect()).unwrap();
        let p = params(2, 1, 0);
        let ones = Tensor::ones(&[1, 1, 2, 2], DType::F64);
        let gi = x.avg_pool2d_grad(&ones, &p).unwrap();
        let eps = 1e-5;
        for i in 0..x.numel() {
            let mut xp = x.clone();
            xp.set_lin_f64(i, x.lin_f64(i) + eps);
            let mut xm = x.clone();
            xm.set_lin_f64(i, x.lin_f64(i) - eps);
            let f =
                |t: &Tensor| -> f64 { t.avg_pool2d(&p).unwrap().to_f64_vec().iter().sum::<f64>() };
            let num = (f(&xp) - f(&xm)) / (2.0 * eps);
            assert!((num - gi.lin_f64(i)).abs() < 1e-4);
        }
    }
}
