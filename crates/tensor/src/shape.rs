//! Shape utilities: element counts, row-major strides, and NumPy-style
//! broadcasting.

use crate::error::{Result, TensorError};

/// Number of elements described by a shape. The empty shape (a scalar) has
/// one element.
pub fn numel(shape: &[usize]) -> usize {
    shape.iter().product()
}

/// Row-major (C-order) strides for a shape, in elements.
pub fn strides_of(shape: &[usize]) -> Vec<usize> {
    let mut strides = vec![0; shape.len()];
    let mut acc = 1usize;
    for (i, &d) in shape.iter().enumerate().rev() {
        strides[i] = acc;
        acc *= d;
    }
    strides
}

/// Broadcasts two shapes following NumPy/ONNX rules.
///
/// Trailing dimensions must be equal or one of them must be 1; the shorter
/// shape is implicitly left-padded with 1s.
///
/// # Errors
///
/// Returns [`TensorError::Shape`] when a dimension pair is incompatible.
///
/// # Examples
///
/// ```
/// use nnsmith_tensor::broadcast_shapes;
/// assert_eq!(broadcast_shapes(&[1, 2, 1, 48], &[1, 1, 48]).unwrap(), vec![1, 2, 1, 48]);
/// assert!(broadcast_shapes(&[3, 2], &[4, 2]).is_err());
/// ```
pub fn broadcast_shapes(a: &[usize], b: &[usize]) -> Result<Vec<usize>> {
    let rank = a.len().max(b.len());
    let mut out = vec![0usize; rank];
    for i in 0..rank {
        let da = if i < rank - a.len() {
            1
        } else {
            a[i - (rank - a.len())]
        };
        let db = if i < rank - b.len() {
            1
        } else {
            b[i - (rank - b.len())]
        };
        out[i] = if da == db {
            da
        } else if da == 1 {
            db
        } else if db == 1 {
            da
        } else {
            return Err(TensorError::shape(format!(
                "cannot broadcast {a:?} with {b:?} (dim {i}: {da} vs {db})"
            )));
        };
    }
    Ok(out)
}

/// Broadcast-aware strides: strides for reading a tensor of shape `from` as
/// if it had shape `to` (broadcast dimensions get stride 0).
///
/// # Errors
///
/// Returns [`TensorError::Shape`] when `from` does not broadcast to `to`.
pub fn broadcast_strides(from: &[usize], to: &[usize]) -> Result<Vec<usize>> {
    if from.len() > to.len() {
        return Err(TensorError::shape(format!(
            "cannot broadcast rank {} to rank {}",
            from.len(),
            to.len()
        )));
    }
    let base = strides_of(from);
    let offset = to.len() - from.len();
    let mut out = vec![0usize; to.len()];
    for i in 0..to.len() {
        if i < offset {
            out[i] = 0;
        } else {
            let d = from[i - offset];
            if d == to[i] {
                out[i] = base[i - offset];
            } else if d == 1 {
                out[i] = 0;
            } else {
                return Err(TensorError::shape(format!(
                    "cannot broadcast {from:?} to {to:?} (dim {i})"
                )));
            }
        }
    }
    Ok(out)
}

/// Converts a linear index into a multi-index for `shape`.
pub fn unravel(mut linear: usize, shape: &[usize]) -> Vec<usize> {
    let mut idx = vec![0usize; shape.len()];
    for i in (0..shape.len()).rev() {
        let d = shape[i].max(1);
        idx[i] = linear % d;
        linear /= d;
    }
    idx
}

/// Converts a multi-index into a linear offset given strides.
pub fn dot_index(idx: &[usize], strides: &[usize]) -> usize {
    idx.iter().zip(strides).map(|(i, s)| i * s).sum()
}

/// Iterator over all multi-indices of a shape in row-major order.
///
/// For fuzz-scale tensors (thousands of elements) this simple iterator is
/// plenty fast and keeps the kernels readable.
#[derive(Debug, Clone)]
pub struct IndexIter {
    shape: Vec<usize>,
    current: Vec<usize>,
    remaining: usize,
}

impl IndexIter {
    /// Creates an iterator over every index of `shape`.
    pub fn new(shape: &[usize]) -> Self {
        IndexIter {
            shape: shape.to_vec(),
            current: vec![0; shape.len()],
            remaining: numel(shape),
        }
    }
}

impl Iterator for IndexIter {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        if self.remaining == 0 {
            return None;
        }
        let out = self.current.clone();
        self.remaining -= 1;
        for i in (0..self.shape.len()).rev() {
            self.current[i] += 1;
            if self.current[i] < self.shape[i] {
                break;
            }
            self.current[i] = 0;
        }
        Some(out)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for IndexIter {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_scalar() {
        assert_eq!(numel(&[]), 1);
        assert_eq!(numel(&[2, 3, 4]), 24);
        assert_eq!(numel(&[5, 0, 2]), 0);
    }

    #[test]
    fn strides_row_major() {
        assert_eq!(strides_of(&[2, 3, 4]), vec![12, 4, 1]);
        assert_eq!(strides_of(&[]), Vec::<usize>::new());
    }

    #[test]
    fn broadcast_basic() {
        assert_eq!(broadcast_shapes(&[2, 3], &[2, 3]).unwrap(), vec![2, 3]);
        assert_eq!(broadcast_shapes(&[2, 1], &[1, 3]).unwrap(), vec![2, 3]);
        assert_eq!(broadcast_shapes(&[3], &[2, 3]).unwrap(), vec![2, 3]);
        assert_eq!(broadcast_shapes(&[], &[4]).unwrap(), vec![4]);
    }

    #[test]
    fn broadcast_m0_pattern() {
        // The Listing-1 M0 pattern: (1,2,1,48) + (1,1,48).
        assert_eq!(
            broadcast_shapes(&[1, 2, 1, 48], &[1, 1, 48]).unwrap(),
            vec![1, 2, 1, 48]
        );
    }

    #[test]
    fn broadcast_incompatible() {
        assert!(broadcast_shapes(&[3, 2], &[4, 2]).is_err());
    }

    #[test]
    fn broadcast_strides_zero_on_expanded() {
        let s = broadcast_strides(&[1, 3], &[2, 3]).unwrap();
        assert_eq!(s, vec![0, 1]);
        let s = broadcast_strides(&[3], &[2, 3]).unwrap();
        assert_eq!(s, vec![0, 1]);
    }

    #[test]
    fn unravel_roundtrip() {
        let shape = [2, 3, 4];
        let strides = strides_of(&shape);
        for linear in 0..numel(&shape) {
            let idx = unravel(linear, &shape);
            assert_eq!(dot_index(&idx, &strides), linear);
        }
    }

    #[test]
    fn index_iter_counts() {
        let all: Vec<_> = IndexIter::new(&[2, 3]).collect();
        assert_eq!(all.len(), 6);
        assert_eq!(all[0], vec![0, 0]);
        assert_eq!(all[5], vec![1, 2]);
        // Scalar shape yields exactly one (empty) index.
        let scalar: Vec<_> = IndexIter::new(&[]).collect();
        assert_eq!(scalar, vec![Vec::<usize>::new()]);
    }
}
