//! Error type for tensor operations.

use std::error::Error;
use std::fmt;

/// Errors produced by tensor kernels.
///
/// Kernels validate their inputs (shapes, dtypes, attribute ranges) and
/// return an error rather than panicking, because in a fuzzing pipeline an
/// invalid intermediate combination must be reported, not abort the process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two tensors (or a tensor and an expectation) disagree on dtype.
    DType {
        /// Human-readable description of the mismatch.
        context: String,
    },
    /// Shapes are incompatible for the requested operation.
    Shape {
        /// Human-readable description of the mismatch.
        context: String,
    },
    /// An arithmetic fault (integer division by zero, overflow).
    Arith {
        /// Human-readable description of the fault.
        context: String,
    },
    /// The operation is not supported for the given dtype/configuration.
    Unsupported {
        /// Human-readable description of the unsupported case.
        context: String,
    },
}

impl TensorError {
    /// Builds a dtype-mismatch error.
    pub fn dtype(context: impl Into<String>) -> Self {
        TensorError::DType {
            context: context.into(),
        }
    }

    /// Builds a shape-mismatch error.
    pub fn shape(context: impl Into<String>) -> Self {
        TensorError::Shape {
            context: context.into(),
        }
    }

    /// Builds an arithmetic-fault error.
    pub fn arith(context: impl Into<String>) -> Self {
        TensorError::Arith {
            context: context.into(),
        }
    }

    /// Builds an unsupported-operation error.
    pub fn unsupported(context: impl Into<String>) -> Self {
        TensorError::Unsupported {
            context: context.into(),
        }
    }
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::DType { context } => write!(f, "dtype mismatch: {context}"),
            TensorError::Shape { context } => write!(f, "shape mismatch: {context}"),
            TensorError::Arith { context } => write!(f, "arithmetic fault: {context}"),
            TensorError::Unsupported { context } => write!(f, "unsupported: {context}"),
        }
    }
}

impl Error for TensorError {}

/// Convenience result alias for tensor operations.
pub type Result<T> = std::result::Result<T, TensorError>;
