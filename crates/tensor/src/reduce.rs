//! Reduction kernels: sum/mean/prod/max/min, argmax/argmin, softmax and
//! batch normalization.

use crate::dtype::DType;
use crate::error::{Result, TensorError};
use crate::shape::{dot_index, strides_of, IndexIter};
use crate::tensor::Tensor;

/// Reduction kinds for [`Tensor::reduce`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum ReduceKind {
    /// Sum of elements.
    Sum,
    /// Arithmetic mean.
    Mean,
    /// Product of elements.
    Prod,
    /// Maximum element.
    Max,
    /// Minimum element.
    Min,
}

fn normalize_axes(axes: &[usize], rank: usize) -> Result<Vec<usize>> {
    let mut out: Vec<usize> = if axes.is_empty() {
        (0..rank).collect()
    } else {
        axes.to_vec()
    };
    out.sort_unstable();
    out.dedup();
    if out.iter().any(|&a| a >= rank) {
        return Err(TensorError::shape(format!(
            "reduce axis out of range for rank {rank}: {axes:?}"
        )));
    }
    Ok(out)
}

/// Shape after reducing `axes` of `shape` (empty `axes` means all).
pub fn reduced_shape(shape: &[usize], axes: &[usize], keepdims: bool) -> Vec<usize> {
    let axes: Vec<usize> = if axes.is_empty() {
        (0..shape.len()).collect()
    } else {
        axes.to_vec()
    };
    let mut out = Vec::new();
    for (d, &s) in shape.iter().enumerate() {
        if axes.contains(&d) {
            if keepdims {
                out.push(1);
            }
        } else {
            out.push(s);
        }
    }
    out
}

impl Tensor {
    /// Reduces over `axes` (all axes when empty).
    ///
    /// `Sum`/`Mean`/`Prod` require numeric inputs and keep the input dtype
    /// (float accumulation happens at native precision). `Max`/`Min` work
    /// for any numeric dtype.
    ///
    /// # Errors
    ///
    /// Fails for bool inputs, out-of-range axes, or reducing an empty
    /// tensor with `Max`/`Min`.
    pub fn reduce(&self, kind: ReduceKind, axes: &[usize], keepdims: bool) -> Result<Tensor> {
        if self.dtype() == DType::Bool {
            return Err(TensorError::dtype("reduce does not support bool"));
        }
        let axes = normalize_axes(axes, self.rank())?;
        let out_shape = reduced_shape(self.shape(), &axes, keepdims);
        if self.numel() == 0 && matches!(kind, ReduceKind::Max | ReduceKind::Min) {
            return Err(TensorError::shape("max/min reduction of empty tensor"));
        }
        let out_strides = strides_of(&out_shape);
        let mut acc = vec![
            match kind {
                ReduceKind::Sum | ReduceKind::Mean => 0.0f64,
                ReduceKind::Prod => 1.0,
                ReduceKind::Max => f64::NEG_INFINITY,
                ReduceKind::Min => f64::INFINITY,
            };
            out_shape.iter().product::<usize>().max(1)
        ];
        let mut counts = vec![0usize; acc.len()];
        for (lin, idx) in IndexIter::new(self.shape()).enumerate() {
            // Output index: drop (or pin to zero) the reduced axes.
            let mut out_idx = Vec::with_capacity(out_shape.len());
            for (d, &i) in idx.iter().enumerate() {
                if axes.contains(&d) {
                    if keepdims {
                        out_idx.push(0);
                    }
                } else {
                    out_idx.push(i);
                }
            }
            let dst = dot_index(&out_idx, &out_strides);
            let v = self.lin_f64(lin);
            match kind {
                ReduceKind::Sum | ReduceKind::Mean => acc[dst] += v,
                ReduceKind::Prod => acc[dst] *= v,
                ReduceKind::Max => acc[dst] = acc[dst].max(v),
                ReduceKind::Min => acc[dst] = acc[dst].min(v),
            }
            counts[dst] += 1;
        }
        if kind == ReduceKind::Mean {
            for (a, &c) in acc.iter_mut().zip(&counts) {
                *a /= c.max(1) as f64;
            }
        }
        let mut out = Tensor::zeros(&out_shape, self.dtype());
        for (i, v) in acc.into_iter().enumerate() {
            out.set_lin_f64(i, v);
        }
        Ok(out)
    }

    /// Index of the maximum (`largest = true`) or minimum element along
    /// `axis`, as an `i64` tensor. Ties resolve to the first occurrence.
    ///
    /// # Errors
    ///
    /// Fails for bool inputs or an out-of-range axis.
    pub fn arg_extreme(&self, axis: usize, keepdims: bool, largest: bool) -> Result<Tensor> {
        if self.dtype() == DType::Bool {
            return Err(TensorError::dtype("argmax/argmin does not support bool"));
        }
        if axis >= self.rank() {
            return Err(TensorError::shape("argmax axis out of range"));
        }
        let out_shape = reduced_shape(self.shape(), &[axis], keepdims);
        let out_strides = strides_of(&out_shape);
        let n_out: usize = out_shape.iter().product::<usize>().max(1);
        let mut best = vec![f64::NEG_INFINITY; n_out];
        if !largest {
            best.iter_mut().for_each(|b| *b = f64::INFINITY);
        }
        let mut arg = vec![0i64; n_out];
        let mut seen = vec![false; n_out];
        for (lin, idx) in IndexIter::new(self.shape()).enumerate() {
            let mut out_idx = Vec::with_capacity(out_shape.len());
            for (d, &i) in idx.iter().enumerate() {
                if d == axis {
                    if keepdims {
                        out_idx.push(0);
                    }
                } else {
                    out_idx.push(i);
                }
            }
            let dst = dot_index(&out_idx, &out_strides);
            let v = self.lin_f64(lin);
            let better = if largest {
                v > best[dst]
            } else {
                v < best[dst]
            };
            if better || !seen[dst] {
                best[dst] = v;
                arg[dst] = idx[axis] as i64;
                seen[dst] = true;
            }
        }
        Tensor::from_i64(&out_shape, arg)
    }

    /// Numerically-stable softmax along `axis`.
    ///
    /// # Errors
    ///
    /// Fails for non-float inputs or an out-of-range axis.
    pub fn softmax(&self, axis: usize) -> Result<Tensor> {
        if !self.dtype().is_float() {
            return Err(TensorError::dtype("softmax requires float"));
        }
        if axis >= self.rank() {
            return Err(TensorError::shape("softmax axis out of range"));
        }
        let maxed = self.reduce(ReduceKind::Max, &[axis], true)?;
        let shifted = self.sub(&maxed.broadcast_to(self.shape())?)?;
        let exp = shifted.exp()?;
        let denom = exp.reduce(ReduceKind::Sum, &[axis], true)?;
        exp.div(&denom.broadcast_to(self.shape())?)
    }

    /// Inference-mode batch normalization for an `N C ...` tensor:
    /// `(x - mean) / sqrt(var + eps) * scale + bias`, with per-channel
    /// rank-1 statistics of length `C`.
    ///
    /// # Errors
    ///
    /// Fails for non-float inputs, rank < 2, or statistics whose length is
    /// not `C`.
    pub fn batch_norm(
        &self,
        scale: &Tensor,
        bias: &Tensor,
        mean: &Tensor,
        var: &Tensor,
        eps: f64,
    ) -> Result<Tensor> {
        if !self.dtype().is_float() {
            return Err(TensorError::dtype("batch_norm requires float"));
        }
        if self.rank() < 2 {
            return Err(TensorError::shape("batch_norm requires rank >= 2"));
        }
        let c = self.shape()[1];
        for (name, t) in [
            ("scale", scale),
            ("bias", bias),
            ("mean", mean),
            ("var", var),
        ] {
            if t.rank() != 1 || t.shape()[0] != c {
                return Err(TensorError::shape(format!(
                    "batch_norm {name} must be rank-1 of length {c}, got {:?}",
                    t.shape()
                )));
            }
            if t.dtype() != self.dtype() {
                return Err(TensorError::dtype(format!("batch_norm {name} dtype")));
            }
        }
        // Reshape the stats to [1, C, 1, 1, ...] so elementwise broadcasting
        // does the channel alignment.
        let mut stat_shape = vec![1usize; self.rank()];
        stat_shape[1] = c;
        let scale_b = scale.reshaped(&stat_shape)?;
        let bias_b = bias.reshaped(&stat_shape)?;
        let mean_b = mean.reshaped(&stat_shape)?;
        let var_b = var.reshaped(&stat_shape)?;
        let eps_t = Tensor::full(&stat_shape, self.dtype(), eps);
        let denom = var_b.add(&eps_t)?.sqrt()?;
        self.sub(&mean_b)?.div(&denom)?.mul(&scale_b)?.add(&bias_b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iota(shape: &[usize]) -> Tensor {
        let n: usize = shape.iter().product();
        Tensor::from_f32(shape, (0..n).map(|i| i as f32).collect()).unwrap()
    }

    #[test]
    fn sum_all() {
        let t = iota(&[2, 3]);
        let s = t.reduce(ReduceKind::Sum, &[], false).unwrap();
        assert_eq!(s.rank(), 0);
        assert_eq!(s.lin_f64(0), 15.0);
    }

    #[test]
    fn sum_axis_keepdims() {
        let t = iota(&[2, 3]);
        let s = t.reduce(ReduceKind::Sum, &[1], true).unwrap();
        assert_eq!(s.shape(), &[2, 1]);
        assert_eq!(s.as_f32().unwrap(), &[3.0, 12.0]);
        let s2 = t.reduce(ReduceKind::Sum, &[1], false).unwrap();
        assert_eq!(s2.shape(), &[2]);
    }

    #[test]
    fn mean_max_min_prod() {
        let t = Tensor::from_f64(&[4], vec![1., 2., 3., 4.]).unwrap();
        assert_eq!(
            t.reduce(ReduceKind::Mean, &[], false).unwrap().lin_f64(0),
            2.5
        );
        assert_eq!(
            t.reduce(ReduceKind::Max, &[], false).unwrap().lin_f64(0),
            4.0
        );
        assert_eq!(
            t.reduce(ReduceKind::Min, &[], false).unwrap().lin_f64(0),
            1.0
        );
        assert_eq!(
            t.reduce(ReduceKind::Prod, &[], false).unwrap().lin_f64(0),
            24.0
        );
    }

    #[test]
    fn reduce_scalar_input() {
        // Reduce of a rank-0 tensor — the §5.4 "scalar handling" pattern.
        let t = Tensor::scalar(DType::F32, 5.0);
        let s = t.reduce(ReduceKind::Sum, &[], false).unwrap();
        assert_eq!(s.rank(), 0);
        assert_eq!(s.lin_f64(0), 5.0);
    }

    #[test]
    fn reduce_int_dtype_preserved() {
        let t = Tensor::from_i32(&[3], vec![1, 2, 3]).unwrap();
        let s = t.reduce(ReduceKind::Sum, &[], false).unwrap();
        assert_eq!(s.dtype(), DType::I32);
        assert_eq!(s.as_i32().unwrap(), &[6]);
    }

    #[test]
    fn argmax_basic() {
        let t = Tensor::from_f32(&[2, 3], vec![1., 9., 2., 8., 0., 3.]).unwrap();
        let a = t.arg_extreme(1, false, true).unwrap();
        assert_eq!(a.as_i64().unwrap(), &[1, 0]);
        let a0 = t.arg_extreme(0, true, true).unwrap();
        assert_eq!(a0.shape(), &[1, 3]);
        assert_eq!(a0.as_i64().unwrap(), &[1, 0, 1]);
    }

    #[test]
    fn argmin_ties_first() {
        let t = Tensor::from_f32(&[4], vec![2., 1., 1., 3.]).unwrap();
        let a = t.arg_extreme(0, false, false).unwrap();
        assert_eq!(a.as_i64().unwrap(), &[1]);
    }

    #[test]
    fn argmax_passes_nan_through_normally() {
        // ArgMax of a NaN-containing tensor produces a *normal* output —
        // the subtlety in §2.3 challenge 3.
        let t = Tensor::from_f32(&[3], vec![1.0, f32::NAN, 2.0]).unwrap();
        let a = t.arg_extreme(0, false, true).unwrap();
        assert!(!a.has_non_finite());
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let t = iota(&[2, 4]);
        let s = t.softmax(1).unwrap();
        let rows = s.reduce(ReduceKind::Sum, &[1], false).unwrap();
        for &r in rows.as_f32().unwrap() {
            assert!((r - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_stable_for_large_inputs() {
        let t = Tensor::from_f32(&[3], vec![1000.0, 1000.0, 1000.0]).unwrap();
        let s = t.softmax(0).unwrap();
        assert!(!s.has_non_finite());
        for &v in s.as_f32().unwrap() {
            assert!((v - 1.0 / 3.0).abs() < 1e-5);
        }
    }

    #[test]
    fn batch_norm_identity() {
        let x = iota(&[1, 2, 2, 2]);
        let ones = Tensor::ones(&[2], DType::F32);
        let zeros = Tensor::zeros(&[2], DType::F32);
        let y = x.batch_norm(&ones, &zeros, &zeros, &ones, 0.0).unwrap();
        assert!(x.max_abs_diff(&y).unwrap() < 1e-6);
    }

    #[test]
    fn batch_norm_shifts_scale() {
        let x = Tensor::from_f32(&[1, 1, 1, 2], vec![4.0, 8.0]).unwrap();
        let scale = Tensor::from_f32(&[1], vec![2.0]).unwrap();
        let bias = Tensor::from_f32(&[1], vec![1.0]).unwrap();
        let mean = Tensor::from_f32(&[1], vec![4.0]).unwrap();
        let var = Tensor::from_f32(&[1], vec![1.0]).unwrap();
        let y = x.batch_norm(&scale, &bias, &mean, &var, 0.0).unwrap();
        assert_eq!(y.as_f32().unwrap(), &[1.0, 9.0]);
    }

    #[test]
    fn batch_norm_bad_stats_rejected() {
        let x = iota(&[1, 2, 2, 2]);
        let wrong = Tensor::ones(&[3], DType::F32);
        let ok = Tensor::ones(&[2], DType::F32);
        assert!(x.batch_norm(&wrong, &ok, &ok, &ok, 0.0).is_err());
    }

    #[test]
    fn reduce_axis_out_of_range() {
        let t = iota(&[2, 2]);
        assert!(t.reduce(ReduceKind::Sum, &[5], false).is_err());
        assert!(t.arg_extreme(5, false, true).is_err());
    }
}
