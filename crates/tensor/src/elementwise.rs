//! Broadcasting elementwise kernels: arithmetic, comparisons, logic,
//! activation functions.

use crate::dtype::DType;
use crate::error::{Result, TensorError};
use crate::shape::{broadcast_shapes, broadcast_strides, numel};
use crate::tensor::{Data, Element, Tensor};

impl Element for bool {
    const DTYPE: DType = DType::Bool;
    fn from_f64(v: f64) -> Self {
        v != 0.0
    }
    fn to_f64(self) -> f64 {
        if self {
            1.0
        } else {
            0.0
        }
    }
    fn slice(t: &Tensor) -> Option<&[bool]> {
        t.as_bool()
    }
    fn into_data(v: Vec<bool>) -> Data {
        Data::Bool(v)
    }
}

/// Numeric element operations with dtype-faithful semantics: floats follow
/// IEEE-754 (overflow produces infinities), integers wrap like typical
/// compiled kernels, and integer division by zero is reported as an error.
pub(crate) trait NumElem: Element {
    fn add_e(a: Self, b: Self) -> Self;
    fn sub_e(a: Self, b: Self) -> Self;
    fn mul_e(a: Self, b: Self) -> Self;
    fn div_e(a: Self, b: Self) -> Result<Self>;
    fn neg_e(a: Self) -> Self;
    fn abs_e(a: Self) -> Self;
}

macro_rules! float_num_elem {
    ($t:ty) => {
        impl NumElem for $t {
            fn add_e(a: Self, b: Self) -> Self {
                a + b
            }
            fn sub_e(a: Self, b: Self) -> Self {
                a - b
            }
            fn mul_e(a: Self, b: Self) -> Self {
                a * b
            }
            fn div_e(a: Self, b: Self) -> Result<Self> {
                Ok(a / b)
            }
            fn neg_e(a: Self) -> Self {
                -a
            }
            fn abs_e(a: Self) -> Self {
                a.abs()
            }
        }
    };
}

macro_rules! int_num_elem {
    ($t:ty) => {
        impl NumElem for $t {
            fn add_e(a: Self, b: Self) -> Self {
                a.wrapping_add(b)
            }
            fn sub_e(a: Self, b: Self) -> Self {
                a.wrapping_sub(b)
            }
            fn mul_e(a: Self, b: Self) -> Self {
                a.wrapping_mul(b)
            }
            fn div_e(a: Self, b: Self) -> Result<Self> {
                if b == 0 {
                    Err(TensorError::arith("integer division by zero"))
                } else {
                    Ok(a.wrapping_div(b))
                }
            }
            fn neg_e(a: Self) -> Self {
                a.wrapping_neg()
            }
            fn abs_e(a: Self) -> Self {
                a.wrapping_abs()
            }
        }
    };
}

float_num_elem!(f32);
float_num_elem!(f64);
int_num_elem!(i32);
int_num_elem!(i64);

/// Floating-point element operations at the element's native precision
/// (an `f32` kernel rounds like an `f32` kernel would on real hardware).
pub(crate) trait FloatElem: NumElem {
    fn sqrt_e(self) -> Self;
    fn sin_e(self) -> Self;
    fn cos_e(self) -> Self;
    fn asin_e(self) -> Self;
    fn acos_e(self) -> Self;
    fn atan_e(self) -> Self;
    fn tan_e(self) -> Self;
    fn tanh_e(self) -> Self;
    fn exp_e(self) -> Self;
    fn ln_e(self) -> Self;
    fn log2_e(self) -> Self;
    fn floor_e(self) -> Self;
    fn ceil_e(self) -> Self;
    fn round_e(self) -> Self;
    fn pow_e(self, other: Self) -> Self;
}

macro_rules! float_elem {
    ($t:ty) => {
        impl FloatElem for $t {
            fn sqrt_e(self) -> Self {
                self.sqrt()
            }
            fn sin_e(self) -> Self {
                self.sin()
            }
            fn cos_e(self) -> Self {
                self.cos()
            }
            fn asin_e(self) -> Self {
                self.asin()
            }
            fn acos_e(self) -> Self {
                self.acos()
            }
            fn atan_e(self) -> Self {
                self.atan()
            }
            fn tan_e(self) -> Self {
                self.tan()
            }
            fn tanh_e(self) -> Self {
                self.tanh()
            }
            fn exp_e(self) -> Self {
                self.exp()
            }
            fn ln_e(self) -> Self {
                self.ln()
            }
            fn log2_e(self) -> Self {
                self.log2()
            }
            fn floor_e(self) -> Self {
                self.floor()
            }
            fn ceil_e(self) -> Self {
                self.ceil()
            }
            fn round_e(self) -> Self {
                self.round()
            }
            fn pow_e(self, other: Self) -> Self {
                self.powf(other)
            }
        }
    };
}

float_elem!(f32);
float_elem!(f64);

/// Incremental broadcast walker: maintains per-input linear offsets while
/// stepping through the output shape in row-major order.
pub(crate) struct BroadcastWalker {
    shape: Vec<usize>,
    idx: Vec<usize>,
    strides: Vec<Vec<usize>>,
    offsets: Vec<usize>,
}

impl BroadcastWalker {
    pub(crate) fn new(out_shape: &[usize], input_shapes: &[&[usize]]) -> Result<Self> {
        let strides: Result<Vec<Vec<usize>>> = input_shapes
            .iter()
            .map(|s| broadcast_strides(s, out_shape))
            .collect();
        Ok(BroadcastWalker {
            shape: out_shape.to_vec(),
            idx: vec![0; out_shape.len()],
            strides: strides?,
            offsets: vec![0; input_shapes.len()],
        })
    }

    /// Current linear offset into input `i`.
    pub(crate) fn offset(&self, i: usize) -> usize {
        self.offsets[i]
    }

    /// Advances to the next output element.
    pub(crate) fn advance(&mut self) {
        for d in (0..self.shape.len()).rev() {
            self.idx[d] += 1;
            if self.idx[d] < self.shape[d] {
                for (k, s) in self.strides.iter().enumerate() {
                    self.offsets[k] += s[d];
                }
                return;
            }
            self.idx[d] = 0;
            for (k, s) in self.strides.iter().enumerate() {
                self.offsets[k] -= s[d] * (self.shape[d] - 1);
            }
        }
    }
}

pub(crate) fn zip2<T: Element, U: Element>(
    a: &Tensor,
    b: &Tensor,
    f: impl Fn(T, T) -> Result<U>,
) -> Result<Tensor> {
    let out_shape = broadcast_shapes(a.shape(), b.shape())?;
    let da = T::slice(a).ok_or_else(|| TensorError::dtype("unexpected lhs dtype"))?;
    let db = T::slice(b).ok_or_else(|| TensorError::dtype("unexpected rhs dtype"))?;
    let n = numel(&out_shape);
    let mut walker = BroadcastWalker::new(&out_shape, &[a.shape(), b.shape()])?;
    let mut out: Vec<U> = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(f(da[walker.offset(0)], db[walker.offset(1)])?);
        walker.advance();
    }
    Tensor::from_data(&out_shape, U::into_data(out))
}

pub(crate) fn map1<T: Element, U: Element>(
    a: &Tensor,
    f: impl Fn(T) -> Result<U>,
) -> Result<Tensor> {
    let da = T::slice(a).ok_or_else(|| TensorError::dtype("unexpected dtype"))?;
    let out: Result<Vec<U>> = da.iter().map(|&x| f(x)).collect();
    Tensor::from_data(a.shape(), U::into_data(out?))
}

fn require_same_dtype(a: &Tensor, b: &Tensor, op: &str) -> Result<()> {
    if a.dtype() != b.dtype() {
        return Err(TensorError::dtype(format!(
            "{op}: {} vs {}",
            a.dtype(),
            b.dtype()
        )));
    }
    Ok(())
}

macro_rules! dispatch_numeric {
    ($dt:expr, $op:expr, $go:ident) => {
        match $dt {
            DType::F32 => $go!(f32),
            DType::F64 => $go!(f64),
            DType::I32 => $go!(i32),
            DType::I64 => $go!(i64),
            DType::Bool => Err(TensorError::dtype(format!("{} does not support bool", $op))),
        }
    };
}

macro_rules! dispatch_float {
    ($dt:expr, $op:expr, $go:ident) => {
        match $dt {
            DType::F32 => $go!(f32),
            DType::F64 => $go!(f64),
            _ => Err(TensorError::dtype(format!(
                "{} requires a float dtype",
                $op
            ))),
        }
    };
}

macro_rules! binary_numeric_method {
    ($(#[$doc:meta])* $name:ident, $elem_fn:path) => {
        $(#[$doc])*
        pub fn $name(&self, other: &Tensor) -> Result<Tensor> {
            require_same_dtype(self, other, stringify!($name))?;
            macro_rules! go {
                ($t:ty) => {
                    zip2::<$t, $t>(self, other, |a, b| Ok($elem_fn(a, b)))
                };
            }
            dispatch_numeric!(self.dtype(), stringify!($name), go)
        }
    };
}

macro_rules! unary_float_method {
    ($(#[$doc:meta])* $name:ident, $elem_fn:ident) => {
        $(#[$doc])*
        pub fn $name(&self) -> Result<Tensor> {
            macro_rules! go {
                ($t:ty) => {
                    map1::<$t, $t>(self, |a| Ok(FloatElem::$elem_fn(a)))
                };
            }
            dispatch_float!(self.dtype(), stringify!($name), go)
        }
    };
}

macro_rules! compare_method {
    ($(#[$doc:meta])* $name:ident, $cmp:expr) => {
        $(#[$doc])*
        pub fn $name(&self, other: &Tensor) -> Result<Tensor> {
            require_same_dtype(self, other, stringify!($name))?;
            let cmp = $cmp;
            macro_rules! go {
                ($t:ty) => {
                    zip2::<$t, bool>(self, other, |a, b| {
                        Ok(cmp(a.partial_cmp(&b), a == b))
                    })
                };
            }
            dispatch_numeric!(self.dtype(), stringify!($name), go)
        }
    };
}

impl Tensor {
    binary_numeric_method!(
        /// Broadcasting elementwise addition.
        ///
        /// # Errors
        ///
        /// Fails on dtype mismatch, bool inputs, or unbroadcastable shapes.
        add, NumElem::add_e
    );
    binary_numeric_method!(
        /// Broadcasting elementwise subtraction.
        ///
        /// # Errors
        ///
        /// Fails on dtype mismatch, bool inputs, or unbroadcastable shapes.
        sub, NumElem::sub_e
    );
    binary_numeric_method!(
        /// Broadcasting elementwise multiplication.
        ///
        /// # Errors
        ///
        /// Fails on dtype mismatch, bool inputs, or unbroadcastable shapes.
        mul, NumElem::mul_e
    );

    /// Broadcasting elementwise division. Integer division by zero is an
    /// arithmetic fault; float division follows IEEE-754.
    ///
    /// # Errors
    ///
    /// Fails on dtype mismatch, bool inputs, unbroadcastable shapes, or
    /// integer division by zero.
    pub fn div(&self, other: &Tensor) -> Result<Tensor> {
        require_same_dtype(self, other, "div")?;
        macro_rules! go {
            ($t:ty) => {
                zip2::<$t, $t>(self, other, |a, b| NumElem::div_e(a, b))
            };
        }
        dispatch_numeric!(self.dtype(), "div", go)
    }

    /// Broadcasting elementwise power (`self ^ other`), floats only.
    ///
    /// # Errors
    ///
    /// Fails for non-float dtypes or unbroadcastable shapes.
    pub fn pow(&self, other: &Tensor) -> Result<Tensor> {
        require_same_dtype(self, other, "pow")?;
        macro_rules! go {
            ($t:ty) => {
                zip2::<$t, $t>(self, other, |a, b| Ok(FloatElem::pow_e(a, b)))
            };
        }
        dispatch_float!(self.dtype(), "pow", go)
    }

    /// Broadcasting elementwise minimum.
    ///
    /// # Errors
    ///
    /// Fails on dtype mismatch, bool inputs, or unbroadcastable shapes.
    pub fn minimum(&self, other: &Tensor) -> Result<Tensor> {
        require_same_dtype(self, other, "minimum")?;
        macro_rules! go {
            ($t:ty) => {
                zip2::<$t, $t>(self, other, |a, b| Ok(if a < b { a } else { b }))
            };
        }
        dispatch_numeric!(self.dtype(), "minimum", go)
    }

    /// Broadcasting elementwise maximum.
    ///
    /// # Errors
    ///
    /// Fails on dtype mismatch, bool inputs, or unbroadcastable shapes.
    pub fn maximum(&self, other: &Tensor) -> Result<Tensor> {
        require_same_dtype(self, other, "maximum")?;
        macro_rules! go {
            ($t:ty) => {
                zip2::<$t, $t>(self, other, |a, b| Ok(if a > b { a } else { b }))
            };
        }
        dispatch_numeric!(self.dtype(), "maximum", go)
    }

    compare_method!(
        /// Broadcasting elementwise equality, producing a bool tensor.
        ///
        /// # Errors
        ///
        /// Fails on dtype mismatch, bool inputs, or unbroadcastable shapes.
        equal,
        |_ord: Option<std::cmp::Ordering>, eq: bool| eq
    );
    compare_method!(
        /// Broadcasting elementwise inequality, producing a bool tensor.
        ///
        /// # Errors
        ///
        /// Fails on dtype mismatch, bool inputs, or unbroadcastable shapes.
        not_equal,
        |_ord: Option<std::cmp::Ordering>, eq: bool| !eq
    );
    compare_method!(
        /// Broadcasting elementwise `<`, producing a bool tensor.
        ///
        /// # Errors
        ///
        /// Fails on dtype mismatch, bool inputs, or unbroadcastable shapes.
        less,
        |ord: Option<std::cmp::Ordering>, _eq: bool| ord == Some(std::cmp::Ordering::Less)
    );
    compare_method!(
        /// Broadcasting elementwise `<=`, producing a bool tensor.
        ///
        /// # Errors
        ///
        /// Fails on dtype mismatch, bool inputs, or unbroadcastable shapes.
        less_equal,
        |ord: Option<std::cmp::Ordering>, _eq: bool| matches!(
            ord,
            Some(std::cmp::Ordering::Less) | Some(std::cmp::Ordering::Equal)
        )
    );
    compare_method!(
        /// Broadcasting elementwise `>`, producing a bool tensor.
        ///
        /// # Errors
        ///
        /// Fails on dtype mismatch, bool inputs, or unbroadcastable shapes.
        greater,
        |ord: Option<std::cmp::Ordering>, _eq: bool| ord == Some(std::cmp::Ordering::Greater)
    );
    compare_method!(
        /// Broadcasting elementwise `>=`, producing a bool tensor.
        ///
        /// # Errors
        ///
        /// Fails on dtype mismatch, bool inputs, or unbroadcastable shapes.
        greater_equal,
        |ord: Option<std::cmp::Ordering>, _eq: bool| matches!(
            ord,
            Some(std::cmp::Ordering::Greater) | Some(std::cmp::Ordering::Equal)
        )
    );

    /// Broadcasting logical AND over bool tensors.
    ///
    /// # Errors
    ///
    /// Fails for non-bool inputs or unbroadcastable shapes.
    pub fn logical_and(&self, other: &Tensor) -> Result<Tensor> {
        if self.dtype() != DType::Bool || other.dtype() != DType::Bool {
            return Err(TensorError::dtype("logical_and requires bool"));
        }
        zip2::<bool, bool>(self, other, |a, b| Ok(a && b))
    }

    /// Broadcasting logical OR over bool tensors.
    ///
    /// # Errors
    ///
    /// Fails for non-bool inputs or unbroadcastable shapes.
    pub fn logical_or(&self, other: &Tensor) -> Result<Tensor> {
        if self.dtype() != DType::Bool || other.dtype() != DType::Bool {
            return Err(TensorError::dtype("logical_or requires bool"));
        }
        zip2::<bool, bool>(self, other, |a, b| Ok(a || b))
    }

    /// Broadcasting logical XOR over bool tensors.
    ///
    /// # Errors
    ///
    /// Fails for non-bool inputs or unbroadcastable shapes.
    pub fn logical_xor(&self, other: &Tensor) -> Result<Tensor> {
        if self.dtype() != DType::Bool || other.dtype() != DType::Bool {
            return Err(TensorError::dtype("logical_xor requires bool"));
        }
        zip2::<bool, bool>(self, other, |a, b| Ok(a != b))
    }

    /// Elementwise logical NOT over a bool tensor.
    ///
    /// # Errors
    ///
    /// Fails for non-bool inputs.
    pub fn logical_not(&self) -> Result<Tensor> {
        if self.dtype() != DType::Bool {
            return Err(TensorError::dtype("logical_not requires bool"));
        }
        map1::<bool, bool>(self, |a| Ok(!a))
    }

    /// Elementwise negation.
    ///
    /// # Errors
    ///
    /// Fails for bool inputs.
    pub fn neg(&self) -> Result<Tensor> {
        macro_rules! go {
            ($t:ty) => {
                map1::<$t, $t>(self, |a| Ok(NumElem::neg_e(a)))
            };
        }
        dispatch_numeric!(self.dtype(), "neg", go)
    }

    /// Elementwise absolute value.
    ///
    /// # Errors
    ///
    /// Fails for bool inputs.
    pub fn abs(&self) -> Result<Tensor> {
        macro_rules! go {
            ($t:ty) => {
                map1::<$t, $t>(self, |a| Ok(NumElem::abs_e(a)))
            };
        }
        dispatch_numeric!(self.dtype(), "abs", go)
    }

    unary_float_method!(
        /// Elementwise square root (NaN for negative inputs).
        ///
        /// # Errors
        ///
        /// Fails for non-float dtypes.
        sqrt, sqrt_e
    );
    unary_float_method!(
        /// Elementwise sine.
        ///
        /// # Errors
        ///
        /// Fails for non-float dtypes.
        sin, sin_e
    );
    unary_float_method!(
        /// Elementwise cosine.
        ///
        /// # Errors
        ///
        /// Fails for non-float dtypes.
        cos, cos_e
    );
    unary_float_method!(
        /// Elementwise arcsine (NaN outside `[-1, 1]`).
        ///
        /// # Errors
        ///
        /// Fails for non-float dtypes.
        asin, asin_e
    );
    unary_float_method!(
        /// Elementwise arccosine (NaN outside `[-1, 1]`).
        ///
        /// # Errors
        ///
        /// Fails for non-float dtypes.
        acos, acos_e
    );
    unary_float_method!(
        /// Elementwise arctangent.
        ///
        /// # Errors
        ///
        /// Fails for non-float dtypes.
        atan, atan_e
    );
    unary_float_method!(
        /// Elementwise tangent.
        ///
        /// # Errors
        ///
        /// Fails for non-float dtypes.
        tan, tan_e
    );
    unary_float_method!(
        /// Elementwise hyperbolic tangent.
        ///
        /// # Errors
        ///
        /// Fails for non-float dtypes.
        tanh, tanh_e
    );
    unary_float_method!(
        /// Elementwise exponential.
        ///
        /// # Errors
        ///
        /// Fails for non-float dtypes.
        exp, exp_e
    );
    unary_float_method!(
        /// Elementwise natural logarithm (NaN/-Inf for non-positive inputs).
        ///
        /// # Errors
        ///
        /// Fails for non-float dtypes.
        ln, ln_e
    );
    unary_float_method!(
        /// Elementwise base-2 logarithm (NaN/-Inf for non-positive inputs).
        ///
        /// # Errors
        ///
        /// Fails for non-float dtypes.
        log2, log2_e
    );
    unary_float_method!(
        /// Elementwise floor.
        ///
        /// # Errors
        ///
        /// Fails for non-float dtypes.
        floor, floor_e
    );
    unary_float_method!(
        /// Elementwise ceiling.
        ///
        /// # Errors
        ///
        /// Fails for non-float dtypes.
        ceil, ceil_e
    );
    unary_float_method!(
        /// Elementwise rounding to nearest integer.
        ///
        /// # Errors
        ///
        /// Fails for non-float dtypes.
        round, round_e
    );

    /// Elementwise ReLU: `max(x, 0)`.
    ///
    /// # Errors
    ///
    /// Fails for non-float dtypes.
    pub fn relu(&self) -> Result<Tensor> {
        macro_rules! go {
            ($t:ty) => {
                map1::<$t, $t>(self, |a| Ok(if a > 0.0 { a } else { 0.0 }))
            };
        }
        dispatch_float!(self.dtype(), "relu", go)
    }

    /// Elementwise LeakyReLU with slope `alpha` on the negative side.
    ///
    /// # Errors
    ///
    /// Fails for non-float dtypes.
    pub fn leaky_relu(&self, alpha: f64) -> Result<Tensor> {
        macro_rules! go {
            ($t:ty) => {
                map1::<$t, $t>(self, |a| Ok(if a > 0.0 { a } else { a * (alpha as $t) }))
            };
        }
        dispatch_float!(self.dtype(), "leaky_relu", go)
    }

    /// Elementwise logistic sigmoid.
    ///
    /// # Errors
    ///
    /// Fails for non-float dtypes.
    pub fn sigmoid(&self) -> Result<Tensor> {
        macro_rules! go {
            ($t:ty) => {
                map1::<$t, $t>(self, |a| Ok(1.0 / (1.0 + FloatElem::exp_e(-a))))
            };
        }
        dispatch_float!(self.dtype(), "sigmoid", go)
    }

    /// Elementwise clip into `[min, max]`.
    ///
    /// # Errors
    ///
    /// Fails for bool inputs.
    pub fn clip(&self, min: f64, max: f64) -> Result<Tensor> {
        macro_rules! go {
            ($t:ty) => {{
                let lo = <$t as Element>::from_f64(min);
                let hi = <$t as Element>::from_f64(max);
                map1::<$t, $t>(self, |a| {
                    Ok(if a < lo {
                        lo
                    } else if a > hi {
                        hi
                    } else {
                        a
                    })
                })
            }};
        }
        dispatch_numeric!(self.dtype(), "clip", go)
    }

    /// Three-way broadcasting select: `cond ? a : b`.
    ///
    /// # Errors
    ///
    /// Fails if `cond` is not bool, `a` and `b` disagree on dtype, or the
    /// three shapes do not broadcast together.
    pub fn where_select(cond: &Tensor, a: &Tensor, b: &Tensor) -> Result<Tensor> {
        if cond.dtype() != DType::Bool {
            return Err(TensorError::dtype("where condition must be bool"));
        }
        require_same_dtype(a, b, "where")?;
        let shape_ab = broadcast_shapes(a.shape(), b.shape())?;
        let out_shape = broadcast_shapes(cond.shape(), &shape_ab)?;
        let n = numel(&out_shape);
        let cond_data = cond.as_bool().expect("checked bool");
        let mut walker = BroadcastWalker::new(&out_shape, &[cond.shape(), a.shape(), b.shape()])?;
        let mut out = Tensor::zeros(&out_shape, a.dtype());
        for i in 0..n {
            let src = if cond_data[walker.offset(0)] { a } else { b };
            let off = if cond_data[walker.offset(0)] {
                walker.offset(1)
            } else {
                walker.offset(2)
            };
            out.set_lin_f64(i, src.lin_f64(off));
            walker.advance();
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t32(shape: &[usize], data: Vec<f32>) -> Tensor {
        Tensor::from_f32(shape, data).unwrap()
    }

    #[test]
    fn add_same_shape() {
        let a = t32(&[2, 2], vec![1., 2., 3., 4.]);
        let b = t32(&[2, 2], vec![10., 20., 30., 40.]);
        let c = a.add(&b).unwrap();
        assert_eq!(c.as_f32().unwrap(), &[11., 22., 33., 44.]);
    }

    #[test]
    fn add_broadcast_row() {
        let a = t32(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = t32(&[3], vec![10., 20., 30.]);
        let c = a.add(&b).unwrap();
        assert_eq!(c.as_f32().unwrap(), &[11., 22., 33., 14., 25., 36.]);
    }

    #[test]
    fn add_broadcast_m0_pattern() {
        // Listing 1 M0: (1,2,1,48) + (1,1,48) → (1,2,1,48).
        let a = Tensor::ones(&[1, 2, 1, 48], DType::F32);
        let b = Tensor::full(&[1, 1, 48], DType::F32, 2.0);
        let c = a.add(&b).unwrap();
        assert_eq!(c.shape(), &[1, 2, 1, 48]);
        assert!(c.as_f32().unwrap().iter().all(|&x| x == 3.0));
    }

    #[test]
    fn dtype_mismatch_rejected() {
        let a = Tensor::ones(&[2], DType::F32);
        let b = Tensor::ones(&[2], DType::F64);
        assert!(a.add(&b).is_err());
    }

    #[test]
    fn bool_arithmetic_rejected() {
        let a = Tensor::ones(&[2], DType::Bool);
        assert!(a.add(&a).is_err());
        assert!(a.neg().is_err());
    }

    #[test]
    fn int_wrapping_semantics() {
        let a = Tensor::from_i32(&[1], vec![i32::MAX]).unwrap();
        let b = Tensor::from_i32(&[1], vec![1]).unwrap();
        let c = a.add(&b).unwrap();
        assert_eq!(c.as_i32().unwrap(), &[i32::MIN]);
    }

    #[test]
    fn int_div_by_zero_is_error() {
        let a = Tensor::from_i64(&[1], vec![5]).unwrap();
        let b = Tensor::from_i64(&[1], vec![0]).unwrap();
        assert!(a.div(&b).is_err());
    }

    #[test]
    fn float_div_by_zero_is_inf() {
        let a = t32(&[1], vec![5.0]);
        let b = t32(&[1], vec![0.0]);
        let c = a.div(&b).unwrap();
        assert!(c.as_f32().unwrap()[0].is_infinite());
    }

    #[test]
    fn sqrt_negative_is_nan() {
        let a = t32(&[2], vec![4.0, -1.0]);
        let c = a.sqrt().unwrap();
        assert_eq!(c.as_f32().unwrap()[0], 2.0);
        assert!(c.as_f32().unwrap()[1].is_nan());
    }

    #[test]
    fn asin_domain() {
        let a = t32(&[2], vec![0.5, 2.0]);
        let c = a.asin().unwrap();
        assert!(!c.as_f32().unwrap()[0].is_nan());
        assert!(c.as_f32().unwrap()[1].is_nan());
    }

    #[test]
    fn pow_overflow_is_inf() {
        let a = t32(&[1], vec![10.0]);
        let b = t32(&[1], vec![100.0]);
        let c = a.pow(&b).unwrap();
        assert!(c.as_f32().unwrap()[0].is_infinite());
    }

    #[test]
    fn pow_int_rejected() {
        let a = Tensor::ones(&[1], DType::I32);
        assert!(a.pow(&a).is_err());
    }

    #[test]
    fn comparisons_produce_bool() {
        let a = t32(&[3], vec![1., 2., 3.]);
        let b = t32(&[3], vec![2., 2., 2.]);
        assert_eq!(
            a.less(&b).unwrap().as_bool().unwrap(),
            &[true, false, false]
        );
        assert_eq!(
            a.equal(&b).unwrap().as_bool().unwrap(),
            &[false, true, false]
        );
        assert_eq!(
            a.greater_equal(&b).unwrap().as_bool().unwrap(),
            &[false, true, true]
        );
    }

    #[test]
    fn logic_ops() {
        let a = Tensor::from_bool(&[2], vec![true, false]).unwrap();
        let b = Tensor::from_bool(&[2], vec![true, true]).unwrap();
        assert_eq!(
            a.logical_and(&b).unwrap().as_bool().unwrap(),
            &[true, false]
        );
        assert_eq!(a.logical_or(&b).unwrap().as_bool().unwrap(), &[true, true]);
        assert_eq!(
            a.logical_xor(&b).unwrap().as_bool().unwrap(),
            &[false, true]
        );
        assert_eq!(a.logical_not().unwrap().as_bool().unwrap(), &[false, true]);
    }

    #[test]
    fn relu_and_leaky() {
        let a = t32(&[3], vec![-2.0, 0.0, 3.0]);
        assert_eq!(a.relu().unwrap().as_f32().unwrap(), &[0.0, 0.0, 3.0]);
        let l = a.leaky_relu(0.1).unwrap();
        let vals = l.as_f32().unwrap();
        assert!((vals[0] + 0.2).abs() < 1e-6);
        assert_eq!(vals[2], 3.0);
    }

    #[test]
    fn sigmoid_range() {
        let a = t32(&[3], vec![-100.0, 0.0, 100.0]);
        let s = a.sigmoid().unwrap();
        let v = s.as_f32().unwrap();
        assert!(v[0] < 1e-6);
        assert!((v[1] - 0.5).abs() < 1e-6);
        assert!(v[2] > 1.0 - 1e-6);
    }

    #[test]
    fn clip_ints() {
        let a = Tensor::from_i32(&[4], vec![-5, 0, 5, 50]).unwrap();
        let c = a.clip(0.0, 10.0).unwrap();
        assert_eq!(c.as_i32().unwrap(), &[0, 0, 5, 10]);
    }

    #[test]
    fn where_select_broadcasts() {
        // The paper's Where(C_{1x1}, T_{3x1}, F_2) example: result must be 3x2.
        let c = Tensor::from_bool(&[1, 1], vec![true]).unwrap();
        let t = Tensor::from_f32(&[3, 1], vec![1., 2., 3.]).unwrap();
        let f = Tensor::from_f32(&[2], vec![9., 9.]).unwrap();
        let out = Tensor::where_select(&c, &t, &f).unwrap();
        assert_eq!(out.shape(), &[3, 2]);
        assert_eq!(out.as_f32().unwrap(), &[1., 1., 2., 2., 3., 3.]);
    }

    #[test]
    fn where_requires_bool_condition() {
        let c = Tensor::ones(&[1], DType::I32);
        let t = Tensor::ones(&[1], DType::F32);
        assert!(Tensor::where_select(&c, &t, &t).is_err());
    }

    #[test]
    fn f32_precision_differs_from_f64() {
        // dtype-faithful kernels: f32 rounding is observable.
        let a32 = Tensor::from_f32(&[1], vec![16_777_216.0]).unwrap();
        let one32 = Tensor::from_f32(&[1], vec![1.0]).unwrap();
        let sum32 = a32.add(&one32).unwrap();
        assert_eq!(sum32.as_f32().unwrap()[0], 16_777_216.0); // lost the +1
        let a64 = Tensor::from_f64(&[1], vec![16_777_216.0]).unwrap();
        let one64 = Tensor::from_f64(&[1], vec![1.0]).unwrap();
        let sum64 = a64.add(&one64).unwrap();
        assert_eq!(sum64.as_f64().unwrap()[0], 16_777_217.0);
    }
}
