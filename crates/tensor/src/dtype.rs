//! Tensor element types.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Element type of a tensor.
///
/// The set matches what the paper's operator specifications use: two float
/// widths (differential testing cares about rounding differences), two int
/// widths (the int32/int64 mismatch bug class of §5.4), and booleans (for
/// `Where` conditions and comparison outputs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DType {
    /// 32-bit IEEE-754 float.
    F32,
    /// 64-bit IEEE-754 float.
    F64,
    /// 32-bit signed integer.
    I32,
    /// 64-bit signed integer.
    I64,
    /// Boolean.
    Bool,
}

impl DType {
    /// All supported dtypes, in a stable order.
    pub const ALL: [DType; 5] = [DType::F32, DType::F64, DType::I32, DType::I64, DType::Bool];

    /// Floating-point dtypes.
    pub const FLOATS: [DType; 2] = [DType::F32, DType::F64];

    /// Integer dtypes.
    pub const INTS: [DType; 2] = [DType::I32, DType::I64];

    /// Numeric (non-bool) dtypes.
    pub const NUMERIC: [DType; 4] = [DType::F32, DType::F64, DType::I32, DType::I64];

    /// True for `F32`/`F64`.
    pub fn is_float(self) -> bool {
        matches!(self, DType::F32 | DType::F64)
    }

    /// True for `I32`/`I64`.
    pub fn is_int(self) -> bool {
        matches!(self, DType::I32 | DType::I64)
    }

    /// True for anything except `Bool`.
    pub fn is_numeric(self) -> bool {
        self != DType::Bool
    }

    /// Size of one element in bytes.
    pub fn size_bytes(self) -> usize {
        match self {
            DType::F32 | DType::I32 => 4,
            DType::F64 | DType::I64 => 8,
            DType::Bool => 1,
        }
    }

    /// Short lowercase name (`"f32"`, `"bool"`, …) used in model dumps.
    pub fn name(self) -> &'static str {
        match self {
            DType::F32 => "f32",
            DType::F64 => "f64",
            DType::I32 => "i32",
            DType::I64 => "i64",
            DType::Bool => "bool",
        }
    }
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert!(DType::F32.is_float());
        assert!(DType::F64.is_float());
        assert!(!DType::I32.is_float());
        assert!(DType::I64.is_int());
        assert!(!DType::Bool.is_numeric());
        assert!(DType::F32.is_numeric());
    }

    #[test]
    fn sizes() {
        assert_eq!(DType::F32.size_bytes(), 4);
        assert_eq!(DType::I64.size_bytes(), 8);
        assert_eq!(DType::Bool.size_bytes(), 1);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = DType::ALL.iter().map(|d| d.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), DType::ALL.len());
    }
}
