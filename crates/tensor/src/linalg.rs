//! Matrix multiplication with NumPy/ONNX semantics.

use crate::dtype::DType;
use crate::elementwise::NumElem;
use crate::error::{Result, TensorError};
use crate::shape::{broadcast_shapes, broadcast_strides, numel, strides_of, unravel};
use crate::tensor::Tensor;

fn matmul_t<T: NumElem>(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    // Promote rank-1 operands per NumPy rules, remember to strip later.
    let a_vec = a.rank() == 1;
    let b_vec = b.rank() == 1;
    if a.rank() == 0 || b.rank() == 0 {
        return Err(TensorError::shape("matmul does not accept scalars"));
    }
    let a_shape: Vec<usize> = if a_vec {
        vec![1, a.shape()[0]]
    } else {
        a.shape().to_vec()
    };
    let b_shape: Vec<usize> = if b_vec {
        vec![b.shape()[0], 1]
    } else {
        b.shape().to_vec()
    };

    let (m, ka) = (a_shape[a_shape.len() - 2], a_shape[a_shape.len() - 1]);
    let (kb, n) = (b_shape[b_shape.len() - 2], b_shape[b_shape.len() - 1]);
    if ka != kb {
        return Err(TensorError::shape(format!(
            "matmul inner dims differ: {ka} vs {kb} (shapes {:?} x {:?})",
            a.shape(),
            b.shape()
        )));
    }

    let a_batch = &a_shape[..a_shape.len() - 2];
    let b_batch = &b_shape[..b_shape.len() - 2];
    let batch = broadcast_shapes(a_batch, b_batch)?;
    let a_bstrides = broadcast_strides(a_batch, &batch)?;
    let b_bstrides = broadcast_strides(b_batch, &batch)?;
    let a_full_strides = strides_of(&a_shape);
    let b_full_strides = strides_of(&b_shape);
    // Stride of one whole matrix in each input.
    let a_mat = m * ka;
    let b_mat = kb * n;
    let _ = (a_full_strides, b_full_strides);

    let da = T::slice(a).ok_or_else(|| TensorError::dtype("matmul lhs dtype"))?;
    let db = T::slice(b).ok_or_else(|| TensorError::dtype("matmul rhs dtype"))?;

    let batch_count = numel(&batch);
    let mut out: Vec<T> = Vec::with_capacity(batch_count * m * n);
    let zero = T::from_f64(0.0);
    for lin in 0..batch_count {
        let idx = unravel(lin, &batch);
        // Map the broadcast batch index into each operand's batch offset
        // (counted in matrices, then scaled by the matrix size).
        let a_off: usize = idx
            .iter()
            .zip(&a_bstrides)
            .map(|(i, s)| i * s)
            .sum::<usize>()
            * a_mat;
        let b_off: usize = idx
            .iter()
            .zip(&b_bstrides)
            .map(|(i, s)| i * s)
            .sum::<usize>()
            * b_mat;
        for i in 0..m {
            for j in 0..n {
                let mut acc = zero;
                for k in 0..ka {
                    let x = da[a_off + i * ka + k];
                    let y = db[b_off + k * n + j];
                    acc = T::add_e(acc, T::mul_e(x, y));
                }
                out.push(acc);
            }
        }
    }

    let mut out_shape: Vec<usize> = batch.clone();
    out_shape.push(m);
    out_shape.push(n);
    let mut t = Tensor::from_data(&out_shape, T::into_data(out))?;
    // Strip promoted dims.
    if a_vec {
        let mut s = t.shape().to_vec();
        s.remove(s.len() - 2);
        t = t.reshaped(&s)?;
    }
    if b_vec {
        let mut s = t.shape().to_vec();
        s.pop();
        t = t.reshaped(&s)?;
    }
    Ok(t)
}

impl Tensor {
    /// Matrix product with NumPy/ONNX semantics: rank-1 operands are
    /// promoted (and the promoted dim stripped from the result), leading
    /// batch dimensions broadcast.
    ///
    /// # Errors
    ///
    /// Fails on scalar operands, mismatched inner dimensions,
    /// non-broadcastable batch dimensions, bool inputs, or dtype mismatch.
    pub fn matmul(&self, other: &Tensor) -> Result<Tensor> {
        if self.dtype() != other.dtype() {
            return Err(TensorError::dtype(format!(
                "matmul dtypes {} vs {}",
                self.dtype(),
                other.dtype()
            )));
        }
        match self.dtype() {
            DType::F32 => matmul_t::<f32>(self, other),
            DType::F64 => matmul_t::<f64>(self, other),
            DType::I32 => matmul_t::<i32>(self, other),
            DType::I64 => matmul_t::<i64>(self, other),
            DType::Bool => Err(TensorError::dtype("matmul does not support bool")),
        }
    }

    /// 2-D transpose helper for gradients: swaps the last two axes.
    ///
    /// # Errors
    ///
    /// Fails for tensors of rank < 2.
    pub fn swap_last_two(&self) -> Result<Tensor> {
        if self.rank() < 2 {
            return Err(TensorError::shape("swap_last_two requires rank >= 2"));
        }
        let mut perm: Vec<usize> = (0..self.rank()).collect();
        let r = self.rank();
        perm.swap(r - 2, r - 1);
        self.transpose(&perm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_2x2() {
        let a = Tensor::from_f32(&[2, 3], vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let b = Tensor::from_f32(&[3, 2], vec![7., 8., 9., 10., 11., 12.]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.as_f32().unwrap(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_inner_mismatch() {
        let a = Tensor::ones(&[2, 3], DType::F32);
        let b = Tensor::ones(&[4, 2], DType::F32);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn matmul_vector_lhs() {
        // Single-rank broadcasting — the §5.4 conversion-bug pattern.
        let a = Tensor::from_f32(&[3], vec![1., 2., 3.]).unwrap();
        let b = Tensor::from_f32(&[3, 2], vec![1., 0., 0., 1., 1., 1.]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.shape(), &[2]);
        assert_eq!(c.as_f32().unwrap(), &[4., 5.]);
    }

    #[test]
    fn matmul_vector_rhs() {
        let a = Tensor::from_f32(&[2, 3], vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let b = Tensor::from_f32(&[3], vec![1., 1., 1.]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.shape(), &[2]);
        assert_eq!(c.as_f32().unwrap(), &[6., 15.]);
    }

    #[test]
    fn matmul_batched_broadcast() {
        // (2,1,2,2) x (1,3,2,2) → (2,3,2,2)
        let a = Tensor::ones(&[2, 1, 2, 2], DType::F64);
        let b = Tensor::ones(&[1, 3, 2, 2], DType::F64);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.shape(), &[2, 3, 2, 2]);
        assert!(c.as_f64().unwrap().iter().all(|&x| x == 2.0));
    }

    #[test]
    fn matmul_int() {
        let a = Tensor::from_i64(&[2, 2], vec![1, 2, 3, 4]).unwrap();
        let b = Tensor::from_i64(&[2, 2], vec![5, 6, 7, 8]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.as_i64().unwrap(), &[19, 22, 43, 50]);
    }

    #[test]
    fn matmul_scalar_rejected() {
        let a = Tensor::scalar(DType::F32, 2.0);
        let b = Tensor::ones(&[2, 2], DType::F32);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn matmul_1x1_rhs() {
        // MatMul with a 1x1 matrix RHS — the FuseMatMulScale bug trigger.
        let a = Tensor::from_f32(&[3, 1], vec![1., 2., 3.]).unwrap();
        let b = Tensor::from_f32(&[1, 1], vec![2.0]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.shape(), &[3, 1]);
        assert_eq!(c.as_f32().unwrap(), &[2., 4., 6.]);
    }
}
